#![warn(missing_docs)]
//! Physical memory, synthetic kernel image, and the TOCTTOU scan-window model.
//!
//! The paper's rich OS kernel (OpenEmbedded, lsk-4.4) occupies 11,916,240
//! bytes which SATIN divides into 19 areas along `System.map` segment
//! boundaries (largest 876,616 B, smallest 431,360 B, §VI-A2). We cannot ship
//! that kernel image, so [`layout::KernelLayout::paper`] synthesizes a
//! deterministic stand-in with the same segment structure and byte sizes, and
//! [`image`] fills it with seeded pseudo-random content so digests are stable
//! across runs.
//!
//! The crate's most load-bearing piece is [`scan::ScanWindow`]: a secure-world
//! scan reads bytes *sequentially over simulated time*, so a normal-world
//! write racing the scan is observed only for bytes the scanner had not yet
//! reached. This makes the paper's Equation 1 an emergent property of the
//! simulation rather than an assumed formula.

pub mod addr;
pub mod error;
pub mod image;
pub mod layout;
pub mod perms;
pub mod phys;
pub mod scan;

pub use addr::{MemRange, PhysAddr};
pub use error::MemError;
pub use layout::{KernelLayout, KernelSection, SectionKind};
pub use phys::{MemView, PhysMemory};
pub use scan::ScanWindow;

/// Total size of the paper's monitored kernel, in bytes (§IV-C).
pub const PAPER_KERNEL_SIZE: u64 = 11_916_240;

/// Number of introspection areas in the paper's prototype (§VI-A2).
pub const PAPER_AREA_COUNT: usize = 19;

/// Size of the largest paper area, bytes (§VI-A2).
pub const PAPER_LARGEST_AREA: u64 = 876_616;

/// Size of the smallest paper area, bytes (§VI-A2).
pub const PAPER_SMALLEST_AREA: u64 = 431_360;

/// The area index holding the syscall table in the paper's experiment
/// (§VI-B1: "one system call handler which resides in the area 14").
pub const PAPER_SYSCALL_AREA: usize = 14;
