//! Page access permissions and the write-what-where bypass.
//!
//! Paper §VII-A: synchronous introspection mechanisms (SPROBES, TZ-RKP) mark
//! the kernel's invariant pages non-writable so a write traps into the secure
//! world. But "after getting the root privilege, the attack can utilize a
//! write-what-where vulnerability \[26\] to change the Access Permissions (AP)
//! bits of the related page table entry from non-writable to writable. After
//! that, the attacker can freely modify the vector table without triggering
//! the corresponding synchronous introspection." We model exactly that: a
//! per-page AP bit, a checked-write path that faults, and the exploit
//! primitive that flips the bit.

use crate::addr::{MemRange, PhysAddr};

/// Page size of the simulated MMU.
pub const PAGE_SIZE: u64 = 4096;

/// Per-page writability for a physical range.
///
/// # Example
///
/// ```
/// use satin_mem::perms::PagePermissions;
/// use satin_mem::{MemRange, PhysAddr};
///
/// let r = MemRange::new(PhysAddr::new(0), 4096 * 4);
/// let mut perms = PagePermissions::all_writable(r);
/// perms.protect(MemRange::new(PhysAddr::new(0), 4096));
/// assert!(!perms.is_writable(PhysAddr::new(100)));
/// assert!(perms.is_writable(PhysAddr::new(4096)));
/// // The write-what-where exploit flips the AP bits back:
/// perms.exploit_write_what_where(PhysAddr::new(100));
/// assert!(perms.is_writable(PhysAddr::new(100)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagePermissions {
    covered: MemRange,
    writable: Vec<bool>,
    /// Count of AP-bit flips performed via the exploit primitive (a forensic
    /// trace the defender could look for — and a statistic for experiments).
    exploit_flips: u64,
}

impl PagePermissions {
    /// All pages of `covered` writable.
    ///
    /// # Panics
    ///
    /// Panics if `covered` is empty.
    pub fn all_writable(covered: MemRange) -> Self {
        assert!(!covered.is_empty(), "empty permission range");
        let pages = covered.len().div_ceil(PAGE_SIZE) as usize;
        PagePermissions {
            covered,
            writable: vec![true; pages],
            exploit_flips: 0,
        }
    }

    /// The covered range.
    pub fn covered(&self) -> MemRange {
        self.covered
    }

    /// Marks every page overlapping `range` read-only (what TZ-RKP/SPROBES
    /// do to the kernel's invariant pages).
    ///
    /// # Panics
    ///
    /// Panics if `range` is not inside the covered range.
    pub fn protect(&mut self, range: MemRange) {
        self.set(range, false);
    }

    /// Marks every page overlapping `range` writable.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not inside the covered range.
    pub fn unprotect(&mut self, range: MemRange) {
        self.set(range, true);
    }

    /// `true` if the page containing `addr` is writable.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the covered range.
    pub fn is_writable(&self, addr: PhysAddr) -> bool {
        self.writable[self.page_of(addr)]
    }

    /// `true` if every page overlapping `range` is writable.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not inside the covered range.
    pub fn is_range_writable(&self, range: MemRange) -> bool {
        if range.is_empty() {
            return true;
        }
        let first = self.page_of(range.start());
        let last = self.page_of(PhysAddr::new(range.end().value() - 1));
        (first..=last).all(|p| self.writable[p])
    }

    /// The write-what-where exploit: flips the AP bit of the page containing
    /// `addr` to writable, without any trap the synchronous introspection
    /// could observe (models the KNOX bypass the paper cites as \[26\]).
    ///
    /// Returns `true` if the page was previously protected.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the covered range.
    pub fn exploit_write_what_where(&mut self, addr: PhysAddr) -> bool {
        let page = self.page_of(addr);
        let was_protected = !self.writable[page];
        self.writable[page] = true;
        self.exploit_flips += 1;
        was_protected
    }

    /// Number of exploit flips performed.
    pub fn exploit_flips(&self) -> u64 {
        self.exploit_flips
    }

    fn page_of(&self, addr: PhysAddr) -> usize {
        assert!(
            self.covered.contains(addr),
            "address {addr} outside permission range {}",
            self.covered
        );
        (addr.offset_from(self.covered.start()) / PAGE_SIZE) as usize
    }

    fn set(&mut self, range: MemRange, value: bool) {
        assert!(
            self.covered.contains_range(&range),
            "range {range} outside permission range {}",
            self.covered
        );
        if range.is_empty() {
            return;
        }
        let first = self.page_of(range.start());
        let last = self.page_of(PhysAddr::new(range.end().value() - 1));
        for p in first..=last {
            self.writable[p] = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perms() -> PagePermissions {
        PagePermissions::all_writable(MemRange::new(PhysAddr::new(0x10000), PAGE_SIZE * 8))
    }

    #[test]
    fn protect_rounds_to_pages() {
        let mut p = perms();
        // Protecting a single byte protects its whole page.
        p.protect(MemRange::new(PhysAddr::new(0x10000 + 100), 1));
        assert!(!p.is_writable(PhysAddr::new(0x10000)));
        assert!(!p.is_writable(PhysAddr::new(0x10000 + PAGE_SIZE - 1)));
        assert!(p.is_writable(PhysAddr::new(0x10000 + PAGE_SIZE)));
    }

    #[test]
    fn protect_spanning_pages() {
        let mut p = perms();
        p.protect(MemRange::new(PhysAddr::new(0x10000 + PAGE_SIZE - 1), 2));
        assert!(!p.is_writable(PhysAddr::new(0x10000)));
        assert!(!p.is_writable(PhysAddr::new(0x10000 + PAGE_SIZE)));
        assert!(p.is_writable(PhysAddr::new(0x10000 + 2 * PAGE_SIZE)));
    }

    #[test]
    fn exploit_flips_ap_bits() {
        let mut p = perms();
        let target = PhysAddr::new(0x10000 + 2 * PAGE_SIZE + 7);
        p.protect(MemRange::new(
            PhysAddr::new(0x10000 + 2 * PAGE_SIZE),
            PAGE_SIZE,
        ));
        assert!(!p.is_writable(target));
        assert!(p.exploit_write_what_where(target));
        assert!(p.is_writable(target));
        assert_eq!(p.exploit_flips(), 1);
        // Flipping an already-writable page still counts but reports false.
        assert!(!p.exploit_write_what_where(target));
        assert_eq!(p.exploit_flips(), 2);
    }

    #[test]
    fn range_writable_check() {
        let mut p = perms();
        let prot = MemRange::new(PhysAddr::new(0x10000 + PAGE_SIZE), PAGE_SIZE);
        p.protect(prot);
        assert!(p.is_range_writable(MemRange::new(PhysAddr::new(0x10000), PAGE_SIZE)));
        assert!(!p.is_range_writable(MemRange::new(PhysAddr::new(0x10000), PAGE_SIZE + 1)));
        assert!(p.is_range_writable(MemRange::new(PhysAddr::new(0x10000), 0)));
    }

    #[test]
    #[should_panic(expected = "outside permission range")]
    fn out_of_range_panics() {
        perms().is_writable(PhysAddr::new(0));
    }

    #[test]
    fn unprotect_restores() {
        let mut p = perms();
        let r = MemRange::new(PhysAddr::new(0x10000), PAGE_SIZE * 2);
        p.protect(r);
        p.unprotect(r);
        assert!(p.is_range_writable(r));
    }
}
