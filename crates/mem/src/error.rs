//! Memory-model error types.

use crate::addr::{MemRange, PhysAddr};
use std::error::Error;
use std::fmt;

/// Errors raised by the memory models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// Access outside the backing store.
    OutOfBounds {
        /// The requested range.
        requested: MemRange,
        /// The valid range.
        valid: MemRange,
    },
    /// Write to a page whose access-permission bits forbid writing.
    WriteProtected {
        /// The faulting address.
        addr: PhysAddr,
    },
    /// A named section was not found in the layout.
    NoSuchSection {
        /// The requested section name.
        name: String,
    },
    /// A backing store was requested for an empty range.
    EmptyRange,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { requested, valid } => {
                write!(f, "access {requested} outside valid memory {valid}")
            }
            MemError::WriteProtected { addr } => {
                write!(f, "write to protected page at {addr}")
            }
            MemError::NoSuchSection { name } => write!(f, "no such kernel section: {name}"),
            MemError::EmptyRange => write!(f, "memory range must not be empty"),
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = MemError::OutOfBounds {
            requested: MemRange::new(PhysAddr::new(0x100), 8),
            valid: MemRange::new(PhysAddr::new(0), 0x10),
        };
        assert!(e.to_string().contains("outside"));
        assert!(MemError::WriteProtected {
            addr: PhysAddr::new(4)
        }
        .to_string()
        .contains("protected"));
        assert!(MemError::NoSuchSection { name: "x".into() }
            .to_string()
            .contains("x"));
    }
}
