//! Physical addresses and byte ranges.

use std::fmt;

/// A physical address in the simulated machine.
///
/// # Example
///
/// ```
/// use satin_mem::PhysAddr;
/// let a = PhysAddr::new(0x8000_0000);
/// assert_eq!((a + 16).value() - a.value(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Wraps a raw address.
    pub const fn new(addr: u64) -> Self {
        PhysAddr(addr)
    }

    /// The raw address value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Byte offset from `base`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `self < base`.
    pub fn offset_from(self, base: PhysAddr) -> u64 {
        debug_assert!(self.0 >= base.0, "address below base");
        self.0 - base.0
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl std::ops::Add<u64> for PhysAddr {
    type Output = PhysAddr;
    fn add(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0.checked_add(rhs).expect("address overflow"))
    }
}

impl std::ops::Sub<PhysAddr> for PhysAddr {
    type Output = u64;
    fn sub(self, rhs: PhysAddr) -> u64 {
        self.offset_from(rhs)
    }
}

/// A half-open byte range `[start, start + len)`.
///
/// # Example
///
/// ```
/// use satin_mem::{MemRange, PhysAddr};
/// let r = MemRange::new(PhysAddr::new(100), 10);
/// assert!(r.contains(PhysAddr::new(109)));
/// assert!(!r.contains(PhysAddr::new(110)));
/// assert!(r.overlaps(&MemRange::new(PhysAddr::new(105), 100)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRange {
    start: PhysAddr,
    len: u64,
}

impl MemRange {
    /// A range of `len` bytes starting at `start`.
    pub const fn new(start: PhysAddr, len: u64) -> Self {
        MemRange { start, len }
    }

    /// First address in the range.
    pub const fn start(&self) -> PhysAddr {
        self.start
    }

    /// One past the last address.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` overflows the address space. Bounds
    /// checks use the overflow-safe containment predicates below, so an
    /// adversarial range surfaces as `MemError::OutOfBounds` instead of
    /// reaching this panic.
    pub fn end(&self) -> PhysAddr {
        self.start + self.len
    }

    /// One past the last address, in arithmetic wide enough that a range
    /// reaching past the top of the address space cannot overflow.
    fn end_wide(&self) -> u128 {
        self.start.0 as u128 + self.len as u128
    }

    /// Length in bytes.
    pub const fn len(&self) -> u64 {
        self.len
    }

    /// `true` if the range is empty.
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if `addr` lies within the range.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr >= self.start && (addr.0 as u128) < self.end_wide()
    }

    /// `true` if `other` lies entirely within this range.
    ///
    /// Overflow-safe: a range reaching past the top of the address space
    /// is simply not contained, so bounds checks on adversarial ranges
    /// report an error instead of panicking on `start + len`.
    pub fn contains_range(&self, other: &MemRange) -> bool {
        other.is_empty() || (other.start >= self.start && other.end_wide() <= self.end_wide())
    }

    /// `true` if the two ranges share at least one byte (overflow-safe).
    pub fn overlaps(&self, other: &MemRange) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && (self.start.0 as u128) < other.end_wide()
            && (other.start.0 as u128) < self.end_wide()
    }

    /// The intersection of the two ranges, if non-empty (overflow-safe;
    /// clamped to the addressable space).
    pub fn intersection(&self, other: &MemRange) -> Option<MemRange> {
        let start = self.start.max(other.start);
        let end = self
            .end_wide()
            .min(other.end_wide())
            .min(u64::MAX as u128 + 1);
        ((start.0 as u128) < end).then(|| MemRange::new(start, (end - start.0 as u128) as u64))
    }
}

impl fmt::Display for MemRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `end_wide`, not `end`: error messages quote adversarial ranges,
        // and formatting an error must never panic.
        write!(f, "[{}, {:#x})", self.start, self.end_wide())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn addr_arithmetic() {
        let a = PhysAddr::new(0x1000);
        assert_eq!((a + 0x10).value(), 0x1010);
        assert_eq!((a + 0x10) - a, 0x10);
        assert_eq!(a.offset_from(PhysAddr::new(0x800)), 0x800);
        assert_eq!(a.to_string(), "0x1000");
    }

    #[test]
    fn range_basics() {
        let r = MemRange::new(PhysAddr::new(10), 5);
        assert_eq!(r.end(), PhysAddr::new(15));
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert!(r.contains(PhysAddr::new(10)));
        assert!(r.contains(PhysAddr::new(14)));
        assert!(!r.contains(PhysAddr::new(15)));
        assert_eq!(r.to_string(), "[0xa, 0xf)");
    }

    #[test]
    fn empty_range() {
        let e = MemRange::new(PhysAddr::new(10), 0);
        assert!(e.is_empty());
        assert!(!e.contains(PhysAddr::new(10)));
        assert!(!e.overlaps(&MemRange::new(PhysAddr::new(0), 100)));
        // An empty range is vacuously contained anywhere.
        assert!(MemRange::new(PhysAddr::new(0), 5).contains_range(&e));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = MemRange::new(PhysAddr::new(0), 10);
        let b = MemRange::new(PhysAddr::new(5), 10);
        let c = MemRange::new(PhysAddr::new(10), 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // half-open: touching is not overlapping
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, MemRange::new(PhysAddr::new(5), 5));
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn contains_range() {
        let outer = MemRange::new(PhysAddr::new(0), 100);
        assert!(outer.contains_range(&MemRange::new(PhysAddr::new(0), 100)));
        assert!(outer.contains_range(&MemRange::new(PhysAddr::new(50), 50)));
        assert!(!outer.contains_range(&MemRange::new(PhysAddr::new(50), 51)));
    }

    #[test]
    fn overflowing_ranges_never_panic() {
        // Regression: a range reaching past the top of the address space
        // used to panic with "address overflow" inside the containment
        // math instead of failing the bounds check.
        let wild = MemRange::new(PhysAddr::new(u64::MAX - 4), 100);
        let sane = MemRange::new(PhysAddr::new(0x1000), 16);
        assert!(!sane.contains_range(&wild));
        assert!(!wild.contains_range(&sane));
        assert!(!sane.overlaps(&wild));
        assert!(sane.intersection(&wild).is_none());
        assert!(wild.contains(PhysAddr::new(u64::MAX)));
        // Two wild ranges still compare without panicking.
        let wild2 = MemRange::new(PhysAddr::new(u64::MAX - 8), 100);
        assert!(wild.overlaps(&wild2));
        assert!(!wild2.contains_range(&wild), "wild ends later than wild2");
        assert!(wild.contains_range(&MemRange::new(PhysAddr::new(u64::MAX - 4), 90)));
        let i = wild.intersection(&wild2).unwrap();
        assert_eq!(i.start(), PhysAddr::new(u64::MAX - 4));
        // Clamped to the addressable space.
        assert_eq!(i.len(), 5);
        // Displaying a wild range (as error messages do) must not panic.
        assert!(wild.to_string().contains("0x1000000000000005f"));
    }

    proptest! {
        #[test]
        fn prop_overlap_symmetric(s1 in 0u64..1000, l1 in 0u64..100, s2 in 0u64..1000, l2 in 0u64..100) {
            let a = MemRange::new(PhysAddr::new(s1), l1);
            let b = MemRange::new(PhysAddr::new(s2), l2);
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        }

        #[test]
        fn prop_intersection_iff_overlap(s1 in 0u64..1000, l1 in 0u64..100, s2 in 0u64..1000, l2 in 0u64..100) {
            let a = MemRange::new(PhysAddr::new(s1), l1);
            let b = MemRange::new(PhysAddr::new(s2), l2);
            prop_assert_eq!(a.overlaps(&b), a.intersection(&b).is_some());
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains_range(&i));
                prop_assert!(b.contains_range(&i));
            }
        }
    }
}
