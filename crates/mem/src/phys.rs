//! The physical memory backing the normal-world kernel image.

use crate::addr::{MemRange, PhysAddr};
use crate::error::MemError;
use crate::image;
use crate::layout::KernelLayout;
use crate::perms::PagePermissions;
use satin_hash::{HashAlgorithm, HasherKind};

/// A record of one memory write, kept so in-flight scans can resolve what a
/// sequential scanner observed (see [`crate::ScanWindow`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRecord {
    /// First address written.
    pub addr: PhysAddr,
    /// The bytes that were replaced.
    pub old: Vec<u8>,
    /// The bytes written.
    pub new: Vec<u8>,
}

/// Byte-addressable physical memory holding the kernel image.
///
/// Reads are unrestricted (the secure world may read anything; the normal
/// world reading its own kernel is equally fine). Writes go through the
/// page-permission check unless performed with
/// [`PhysMemory::write_unchecked`], which models a write executed after the
/// attacker has flipped the AP bits.
///
/// # Example
///
/// ```
/// use satin_mem::{KernelLayout, PhysMemory};
/// let layout = KernelLayout::paper();
/// let mem = PhysMemory::with_image(&layout, 42);
/// let text = layout.section(".text").unwrap().range();
/// assert_eq!(mem.read(text).unwrap().len() as u64, text.len());
/// ```
#[derive(Debug, Clone)]
pub struct PhysMemory {
    base: PhysAddr,
    bytes: Vec<u8>,
    perms: PagePermissions,
}

impl PhysMemory {
    /// Allocates memory covering `range`, zero-filled, all pages writable.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty; [`PhysMemory::try_zeroed`] is the
    /// fallible form.
    pub fn zeroed(range: MemRange) -> Self {
        Self::try_zeroed(range).expect("non-empty memory range")
    }

    /// Allocates memory covering `range`, zero-filled, all pages writable.
    ///
    /// # Errors
    ///
    /// [`MemError::EmptyRange`] if `range` is empty.
    pub fn try_zeroed(range: MemRange) -> Result<Self, MemError> {
        if range.is_empty() {
            return Err(MemError::EmptyRange);
        }
        Ok(PhysMemory {
            base: range.start(),
            bytes: vec![0; range.len() as usize],
            perms: PagePermissions::all_writable(range),
        })
    }

    /// Allocates memory for `layout` and fills it with the deterministic
    /// synthetic image for `seed`.
    pub fn with_image(layout: &KernelLayout, seed: u64) -> Self {
        let mut mem = Self::zeroed(layout.range());
        image::fill(layout, seed, &mut mem.bytes);
        mem
    }

    /// The covered range.
    pub fn range(&self) -> MemRange {
        MemRange::new(self.base, self.bytes.len() as u64)
    }

    /// Page permissions (AP bits).
    pub fn perms(&self) -> &PagePermissions {
        &self.perms
    }

    /// Mutable page permissions — used by the synchronous-introspection setup
    /// (protecting invariant pages) and by the exploit that undoes it.
    pub fn perms_mut(&mut self) -> &mut PagePermissions {
        &mut self.perms
    }

    /// Reads `range`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if `range` is not inside memory.
    pub fn read(&self, range: MemRange) -> Result<&[u8], MemError> {
        self.check(range)?;
        let start = range.start().offset_from(self.base) as usize;
        Ok(&self.bytes[start..start + range.len() as usize])
    }

    /// Reads exactly 8 bytes at `addr` as a little-endian u64 (a pointer).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if the 8 bytes are not inside memory.
    pub fn read_u64(&self, addr: PhysAddr) -> Result<u64, MemError> {
        let bytes: [u8; 8] =
            self.read(MemRange::new(addr, 8))?
                .try_into()
                .map_err(|_| MemError::OutOfBounds {
                    requested: MemRange::new(addr, 8),
                    valid: self.range(),
                })?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Writes `new` at `addr`, honouring page permissions.
    ///
    /// Returns a [`WriteRecord`] with the replaced bytes.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if outside memory;
    /// [`MemError::WriteProtected`] if any touched page is read-only (this is
    /// the fault a synchronous introspection hook would trap on).
    pub fn write(&mut self, addr: PhysAddr, new: &[u8]) -> Result<WriteRecord, MemError> {
        let range = MemRange::new(addr, new.len() as u64);
        self.check(range)?;
        if !self.perms.is_range_writable(range) {
            return Err(MemError::WriteProtected { addr });
        }
        Ok(self.write_raw(addr, new))
    }

    /// Writes `new` at `addr` ignoring page permissions — the attacker's
    /// path after flipping AP bits, or firmware writes at boot.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if outside memory.
    pub fn write_unchecked(&mut self, addr: PhysAddr, new: &[u8]) -> Result<WriteRecord, MemError> {
        self.check(MemRange::new(addr, new.len() as u64))?;
        Ok(self.write_raw(addr, new))
    }

    fn write_raw(&mut self, addr: PhysAddr, new: &[u8]) -> WriteRecord {
        let start = addr.offset_from(self.base) as usize;
        let old = self.bytes[start..start + new.len()].to_vec();
        self.bytes[start..start + new.len()].copy_from_slice(new);
        WriteRecord {
            addr,
            old,
            new: new.to_vec(),
        }
    }

    fn check(&self, range: MemRange) -> Result<(), MemError> {
        if self.range().contains_range(&range) {
            Ok(())
        } else {
            Err(MemError::OutOfBounds {
                requested: range,
                valid: self.range(),
            })
        }
    }

    /// Borrows `range` as a [`MemView`]: one bounds check here, then every
    /// access through the view — including its slice-batched [`MemView::digest`]
    /// — is straight contiguous-slice work with no further checks.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if `range` is not inside memory.
    pub fn view(&self, range: MemRange) -> Result<MemView<'_>, MemError> {
        Ok(MemView {
            range,
            bytes: self.read(range)?,
        })
    }
}

/// A borrowed, bounds-checked-once window over [`PhysMemory`].
///
/// This is the secure path's unit of work: where the old flow re-checked
/// bounds (and, for digests, allocated a boxed hasher) per operation, a view
/// is validated once when the window opens and then hands out the backing
/// slice directly. `bytes()` returns the full-lifetime `&'a [u8]`, so a view
/// can be consumed while the borrow outlives it.
#[derive(Debug, Clone, Copy)]
pub struct MemView<'a> {
    range: MemRange,
    bytes: &'a [u8],
}

impl<'a> MemView<'a> {
    /// The physical range this view covers.
    pub fn range(&self) -> MemRange {
        self.range
    }

    /// The backing bytes, borrowed for the memory's full lifetime.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.range.len()
    }

    /// `true` if the view covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// One-shot digest of the viewed bytes: enum-dispatched, slice-batched,
    /// allocation-free.
    pub fn digest(&self, algorithm: HashAlgorithm) -> u64 {
        let mut h = HasherKind::new(algorithm);
        h.update(self.bytes);
        h.finish()
    }

    /// Copies the viewed bytes out (the scan window's snapshot).
    pub fn to_vec(&self) -> Vec<u8> {
        self.bytes.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::GETTID_NR;

    #[test]
    fn read_write_round_trip() {
        let mut mem = PhysMemory::zeroed(MemRange::new(PhysAddr::new(0x1000), 64));
        let rec = mem.write(PhysAddr::new(0x1008), &[1, 2, 3]).unwrap();
        assert_eq!(rec.old, vec![0, 0, 0]);
        assert_eq!(rec.new, vec![1, 2, 3]);
        assert_eq!(
            mem.read(MemRange::new(PhysAddr::new(0x1008), 3)).unwrap(),
            &[1, 2, 3]
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mem = PhysMemory::zeroed(MemRange::new(PhysAddr::new(0x1000), 16));
        assert!(mem.read(MemRange::new(PhysAddr::new(0x1010), 1)).is_err());
        assert!(mem.read(MemRange::new(PhysAddr::new(0xfff), 1)).is_err());
        assert!(mem.read(MemRange::new(PhysAddr::new(0x100f), 2)).is_err());
        // Exactly at the end is fine.
        assert!(mem.read(MemRange::new(PhysAddr::new(0x100f), 1)).is_ok());
    }

    #[test]
    fn adversarial_reads_return_bounds_error() {
        // Regression: reads whose range overflows the address space used
        // to panic ("address overflow") inside the bounds check instead
        // of returning OutOfBounds; the error must also format cleanly.
        let mut mem = PhysMemory::zeroed(MemRange::new(PhysAddr::new(0x1000), 16));
        for range in [
            MemRange::new(PhysAddr::new(u64::MAX - 4), 100),
            MemRange::new(PhysAddr::new(u64::MAX), 1),
            MemRange::new(PhysAddr::new(0x1000), u64::MAX),
        ] {
            let err = mem.read(range).unwrap_err();
            assert!(matches!(err, MemError::OutOfBounds { .. }), "{range}");
            assert!(err.to_string().contains("outside"), "{range}");
        }
        assert!(mem.read_u64(PhysAddr::new(u64::MAX - 3)).is_err());
        assert!(mem.write(PhysAddr::new(u64::MAX - 3), &[1; 8]).is_err());
        assert!(mem
            .write_unchecked(PhysAddr::new(u64::MAX - 3), &[1; 8])
            .is_err());
    }

    #[test]
    fn try_zeroed_rejects_empty_range() {
        let err = PhysMemory::try_zeroed(MemRange::new(PhysAddr::new(0x1000), 0)).unwrap_err();
        assert_eq!(err, MemError::EmptyRange);
        assert!(PhysMemory::try_zeroed(MemRange::new(PhysAddr::new(0x1000), 1)).is_ok());
    }

    #[test]
    fn write_protection_faults() {
        let mut mem = PhysMemory::zeroed(MemRange::new(PhysAddr::new(0), 8192));
        mem.perms_mut()
            .protect(MemRange::new(PhysAddr::new(0), 4096));
        let err = mem.write(PhysAddr::new(100), &[1]).unwrap_err();
        assert!(matches!(err, MemError::WriteProtected { .. }));
        // The unchecked path (post-exploit) succeeds.
        mem.write_unchecked(PhysAddr::new(100), &[1]).unwrap();
        assert_eq!(
            mem.read(MemRange::new(PhysAddr::new(100), 1)).unwrap(),
            &[1]
        );
    }

    #[test]
    fn image_backed_memory_matches_generator() {
        let layout = KernelLayout::paper();
        let mem = PhysMemory::with_image(&layout, 5);
        let expected = image::generate(&layout, 5);
        assert_eq!(mem.read(layout.range()).unwrap(), &expected[..]);
    }

    #[test]
    fn read_u64_syscall_entry() {
        let layout = KernelLayout::paper();
        let mem = PhysMemory::with_image(&layout, 5);
        let addr = layout.syscall_entry_addr(GETTID_NR);
        let ptr = mem.read_u64(addr).unwrap();
        let text = layout.section(".text").unwrap().range();
        assert!(text.contains(PhysAddr::new(ptr)));
    }

    #[test]
    fn view_borrows_and_digests_like_read() {
        use satin_hash::hash_bytes;
        let layout = KernelLayout::paper();
        let mem = PhysMemory::with_image(&layout, 9);
        let text = layout.section(".text").unwrap().range();
        let view = mem.view(text).unwrap();
        assert_eq!(view.range(), text);
        assert_eq!(view.len(), text.len());
        assert!(!view.is_empty());
        assert_eq!(view.bytes(), mem.read(text).unwrap());
        for alg in HashAlgorithm::ALL {
            assert_eq!(view.digest(alg), hash_bytes(alg, mem.read(text).unwrap()));
        }
        assert_eq!(view.to_vec(), mem.read(text).unwrap().to_vec());
        // Out-of-bounds views fail at creation, not at use.
        assert!(mem
            .view(MemRange::new(PhysAddr::new(u64::MAX - 4), 100))
            .is_err());
    }

    #[test]
    fn write_record_captures_old_bytes() {
        let layout = KernelLayout::paper();
        let mut mem = PhysMemory::with_image(&layout, 5);
        let addr = layout.syscall_entry_addr(GETTID_NR);
        let genuine = mem.read(MemRange::new(addr, 8)).unwrap().to_vec();
        let hijack = image::hijacked_entry_bytes(&layout, 11);
        let rec = mem.write_unchecked(addr, &hijack).unwrap();
        assert_eq!(rec.old, genuine);
        assert_eq!(rec.new, hijack.to_vec());
        // Restore and verify round trip.
        mem.write_unchecked(addr, &rec.old).unwrap();
        assert_eq!(mem.read(MemRange::new(addr, 8)).unwrap(), &genuine[..]);
    }
}
