//! Deterministic synthetic kernel content.
//!
//! Section content is generated from a per-section seed (derived from the
//! image seed and the section name) so that the same layout + seed always
//! yields the same bytes — and therefore the same authorized digests —
//! across runs, processes, and machines. Syscall-table sections get
//! plausible-looking 8-byte function pointers into the text section rather
//! than noise, so the sample rootkit's hijack looks like the real thing
//! (swap one pointer for another).

use crate::layout::{KernelLayout, SectionKind, SYSCALL_ENTRY_SIZE};

/// Fills a buffer with the synthetic image for `layout`.
///
/// The buffer length must equal `layout.total_size()`.
///
/// # Panics
///
/// Panics if `buf.len() != layout.total_size()`.
///
/// # Example
///
/// ```
/// use satin_mem::{KernelLayout, image};
/// let layout = KernelLayout::paper();
/// let a = image::generate(&layout, 42);
/// let b = image::generate(&layout, 42);
/// assert_eq!(a, b); // fully deterministic
/// assert_ne!(a, image::generate(&layout, 43));
/// ```
pub fn fill(layout: &KernelLayout, seed: u64, buf: &mut [u8]) {
    assert_eq!(
        buf.len() as u64,
        layout.total_size(),
        "buffer size mismatch"
    );
    let base = layout.base();
    for section in layout.sections() {
        let start = section.range().start().offset_from(base) as usize;
        let len = section.range().len() as usize;
        let chunk = &mut buf[start..start + len];
        let sseed = mix(seed, hash_name(section.name()));
        match section.kind() {
            SectionKind::Bss => chunk.fill(0),
            SectionKind::SyscallTable => fill_syscall_table(layout, sseed, chunk),
            _ => fill_noise(sseed, chunk),
        }
    }
}

/// Allocates and fills a fresh image buffer.
pub fn generate(layout: &KernelLayout, seed: u64) -> Vec<u8> {
    let mut buf = vec![0u8; layout.total_size() as usize];
    fill(layout, seed, &mut buf);
    buf
}

/// A plausible replacement pointer for a hijacked syscall entry: an address
/// inside the text section that differs from the genuine entry.
pub fn hijacked_entry_bytes(layout: &KernelLayout, seed: u64) -> [u8; 8] {
    let text = layout
        .sections()
        .iter()
        .filter(|s| s.kind() == SectionKind::Text)
        .max_by_key(|s| s.range().len())
        .expect("layout has a text section");
    let off = mix(seed, 0x6a61_636b) % text.range().len().max(1);
    let addr = text.range().start().value() + (off & !0x3); // 4-byte aligned
    addr.to_le_bytes()
}

fn fill_syscall_table(layout: &KernelLayout, seed: u64, chunk: &mut [u8]) {
    // Entries point into the text section at deterministic offsets.
    let text = layout
        .sections()
        .iter()
        .filter(|s| s.kind() == SectionKind::Text)
        .max_by_key(|s| s.range().len());
    let (text_base, text_len) = match text {
        Some(t) => (t.range().start().value(), t.range().len()),
        None => (layout.base().value(), layout.total_size()),
    };
    for (i, entry) in chunk
        .chunks_exact_mut(SYSCALL_ENTRY_SIZE as usize)
        .enumerate()
    {
        let off = mix(seed, i as u64) % text_len.max(1);
        let addr = text_base + (off & !0x3);
        entry.copy_from_slice(&addr.to_le_bytes());
    }
    // Tail bytes (if the section size is not a multiple of 8) are zero.
    let tail = chunk.len() - chunk.len() % SYSCALL_ENTRY_SIZE as usize;
    for b in &mut chunk[tail..] {
        *b = 0;
    }
}

fn fill_noise(seed: u64, chunk: &mut [u8]) {
    // SplitMix64 stream, 8 bytes at a time: fast and fully deterministic.
    let mut state = seed;
    for block in chunk.chunks_mut(8) {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let v = mix(state, 0);
        block.copy_from_slice(&v.to_le_bytes()[..block.len()]);
    }
}

fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::GETTID_NR;

    #[test]
    fn deterministic_per_seed() {
        let l = KernelLayout::paper();
        assert_eq!(generate(&l, 7), generate(&l, 7));
        assert_ne!(generate(&l, 7), generate(&l, 8));
    }

    #[test]
    fn bss_is_zero() {
        let l = KernelLayout::paper();
        let img = generate(&l, 1);
        let bss = l.section(".bss.part0").unwrap();
        let start = bss.range().start().offset_from(l.base()) as usize;
        let len = bss.range().len() as usize;
        assert!(img[start..start + len].iter().all(|b| *b == 0));
    }

    #[test]
    fn text_is_not_zero() {
        let l = KernelLayout::paper();
        let img = generate(&l, 1);
        let text = l.section(".text").unwrap();
        let start = text.range().start().offset_from(l.base()) as usize;
        assert!(img[start..start + 64].iter().any(|b| *b != 0));
    }

    #[test]
    fn syscall_entries_point_into_text() {
        let l = KernelLayout::paper();
        let img = generate(&l, 1);
        let text = l.section(".text").unwrap().range();
        let addr = l.syscall_entry_addr(GETTID_NR);
        let off = addr.offset_from(l.base()) as usize;
        let ptr = u64::from_le_bytes(img[off..off + 8].try_into().unwrap());
        assert!(
            text.contains(crate::PhysAddr::new(ptr)),
            "{ptr:#x} not in {text}"
        );
    }

    #[test]
    fn hijacked_entry_differs_from_genuine() {
        let l = KernelLayout::paper();
        let img = generate(&l, 1);
        let addr = l.syscall_entry_addr(GETTID_NR);
        let off = addr.offset_from(l.base()) as usize;
        let genuine: [u8; 8] = img[off..off + 8].try_into().unwrap();
        let hijacked = hijacked_entry_bytes(&l, 99);
        assert_ne!(genuine, hijacked);
        // Still a text address — stealthy to a naive pointer-range check.
        let text = l.section(".text").unwrap().range();
        let ptr = u64::from_le_bytes(hijacked);
        assert!(text.contains(crate::PhysAddr::new(ptr)));
    }

    #[test]
    fn different_sections_get_different_content() {
        let l = KernelLayout::paper();
        let img = generate(&l, 1);
        let a = l.section(".data.part0").unwrap();
        let b = l.section(".data.part1").unwrap();
        let ao = a.range().start().offset_from(l.base()) as usize;
        let bo = b.range().start().offset_from(l.base()) as usize;
        assert_ne!(&img[ao..ao + 256], &img[bo..bo + 256]);
    }
}
