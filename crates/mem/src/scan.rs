//! In-flight scan observation: what does a sequential scanner actually see
//! when memory changes under it?
//!
//! The whole race condition of the paper (Figure 3, Equation 1) comes down to
//! one question: when the secure world scans `[base, base+len)` at a per-byte
//! rate `r` starting at `t0`, and the rootkit restores a malicious byte at
//! time `w`, does the scanner observe the malicious value or the restored
//! one? The answer is per byte: byte `k` is read at `t0 + k·r`, so the
//! scanner sees the value memory held *at that instant*.
//!
//! [`ScanWindow`] implements this exactly: it snapshots the range at scan
//! start, and each write that lands during the scan is applied only to the
//! bytes the scanner has **not yet passed** (read instant at or after the
//! write instant). The result is the byte string the scanner observed, which
//! the integrity checker then hashes. Equation 1 is therefore *emergent*: the
//! attacker escapes exactly when every malicious byte was restored before its
//! read instant.

use crate::addr::{MemRange, PhysAddr};
use satin_sim::{SimDuration, SimTime};

/// An active sequential scan over a memory range.
///
/// # Example
///
/// ```
/// use satin_mem::{MemRange, PhysAddr, ScanWindow};
/// use satin_sim::SimTime;
///
/// let range = MemRange::new(PhysAddr::new(0), 4);
/// // Scan starts at t=0 and reads one byte every 10ns.
/// let mut w = ScanWindow::begin(range, SimTime::ZERO, 10e-9, vec![0xAA; 4]);
/// // At t=25ns (between reading byte 2 and byte 3) everything becomes 0x00:
/// w.note_write(SimTime::from_nanos(25), PhysAddr::new(0), &[0x00; 4]);
/// // Bytes 0..=2 were read at 0,10,20ns (before the write): still 0xAA.
/// // Byte 3 is read at 30ns (after the write): 0x00.
/// assert_eq!(w.observed(), &[0xAA, 0xAA, 0xAA, 0x00]);
/// ```
#[derive(Debug, Clone)]
pub struct ScanWindow {
    range: MemRange,
    start: SimTime,
    secs_per_byte: f64,
    observed: Vec<u8>,
    last_write: SimTime,
    overlapping_writes: u64,
}

impl ScanWindow {
    /// Starts a scan of `range` at `start`, reading one byte every
    /// `secs_per_byte` seconds, given the range's content at scan start.
    ///
    /// # Panics
    ///
    /// Panics if `snapshot.len() != range.len()`, the range is empty, or the
    /// rate is not finite and positive.
    pub fn begin(range: MemRange, start: SimTime, secs_per_byte: f64, snapshot: Vec<u8>) -> Self {
        assert!(!range.is_empty(), "empty scan range");
        assert_eq!(snapshot.len() as u64, range.len(), "snapshot size mismatch");
        assert!(
            secs_per_byte.is_finite() && secs_per_byte > 0.0,
            "invalid scan rate {secs_per_byte}"
        );
        ScanWindow {
            range,
            start,
            secs_per_byte,
            observed: snapshot,
            last_write: SimTime::ZERO,
            overlapping_writes: 0,
        }
    }

    /// The scanned range.
    pub fn range(&self) -> MemRange {
        self.range
    }

    /// When the scan started.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// The instant byte `offset` (relative to the range start) is read.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is beyond the range.
    pub fn read_instant(&self, offset: u64) -> SimTime {
        assert!(offset < self.range.len(), "offset beyond scan range");
        self.start + SimDuration::from_secs_f64(self.secs_per_byte * offset as f64)
    }

    /// The instant the scan finishes (after reading the last byte).
    pub fn end(&self) -> SimTime {
        self.start + SimDuration::from_secs_f64(self.secs_per_byte * self.range.len() as f64)
    }

    /// Duration of the whole scan.
    pub fn duration(&self) -> SimDuration {
        self.end().since(self.start)
    }

    /// Records a write of `bytes` at `addr` occurring at `time`. Only the
    /// intersection with the scanned range matters; bytes whose read instant
    /// is **at or after** `time` observe the new value.
    ///
    /// Writes must be reported in nondecreasing time order (the event loop
    /// naturally does this).
    ///
    /// # Panics
    ///
    /// Panics if writes arrive out of time order.
    pub fn note_write(&mut self, time: SimTime, addr: PhysAddr, bytes: &[u8]) {
        assert!(
            time >= self.last_write,
            "writes must be reported in time order"
        );
        self.last_write = time;
        let write_range = MemRange::new(addr, bytes.len() as u64);
        let Some(hit) = self.range.intersection(&write_range) else {
            return;
        };
        self.overlapping_writes += 1;
        for i in 0..hit.len() {
            let a = hit.start() + i;
            let scan_off = a.offset_from(self.range.start());
            if self.read_instant(scan_off) >= time {
                let src_off = a.offset_from(write_range.start()) as usize;
                self.observed[scan_off as usize] = bytes[src_off];
            }
        }
    }

    /// Number of writes that landed inside the scanned range while the
    /// window was open — regardless of whether the racing write beat the
    /// per-byte read instant. Nonzero means the scan is *torn*: it raced a
    /// concurrent mutator and its observation is not an atomic snapshot.
    pub fn overlapping_writes(&self) -> u64 {
        self.overlapping_writes
    }

    /// `true` if at least one concurrent write intersected the window.
    pub fn is_torn(&self) -> bool {
        self.overlapping_writes > 0
    }

    /// The byte string the scanner observed.
    pub fn observed(&self) -> &[u8] {
        &self.observed
    }

    /// Digest of the observed bytes.
    pub fn observed_digest(&self, algorithm: satin_hash::HashAlgorithm) -> u64 {
        satin_hash::hash_bytes(algorithm, &self.observed)
    }

    /// Consumes the window, returning the observed bytes.
    pub fn into_observed(self) -> Vec<u8> {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn window(len: u64, rate_ns: u64) -> ScanWindow {
        ScanWindow::begin(
            MemRange::new(PhysAddr::new(1000), len),
            SimTime::from_micros(1),
            rate_ns as f64 * 1e-9,
            vec![0u8; len as usize],
        )
    }

    #[test]
    fn no_writes_observes_snapshot() {
        let w = ScanWindow::begin(
            MemRange::new(PhysAddr::new(0), 3),
            SimTime::ZERO,
            1e-9,
            vec![7, 8, 9],
        );
        assert_eq!(w.observed(), &[7, 8, 9]);
        assert!(!w.is_torn());
    }

    #[test]
    fn overlapping_writes_mark_the_window_torn() {
        let mut w = window(10, 100);
        // A write wholly outside the range does not tear the window.
        w.note_write(SimTime::from_micros(1), PhysAddr::new(0), &[1; 4]);
        assert_eq!(w.overlapping_writes(), 0);
        // One intersecting the range does, even if every racing byte was
        // already read (last read instant is 1900ns here).
        w.note_write(SimTime::from_nanos(1950), PhysAddr::new(1000), &[2; 4]);
        assert_eq!(w.overlapping_writes(), 1);
        assert!(w.is_torn());
    }

    #[test]
    fn write_before_read_is_seen() {
        let mut w = window(10, 100);
        // Byte 9 is read at 1µs + 900ns; write at 1µs + 500ns to byte 9.
        w.note_write(SimTime::from_nanos(1_500), PhysAddr::new(1009), &[0xFF]);
        assert_eq!(w.observed()[9], 0xFF);
    }

    #[test]
    fn write_after_read_is_missed() {
        let mut w = window(10, 100);
        // Byte 0 read at exactly 1µs; write at 1µs + 1ns: missed.
        w.note_write(SimTime::from_nanos(1_001), PhysAddr::new(1000), &[0xFF]);
        assert_eq!(w.observed()[0], 0x00);
    }

    #[test]
    fn write_at_exact_read_instant_is_seen() {
        let mut w = window(10, 100);
        // Byte 3 read at 1µs + 300ns; write at exactly that instant → seen.
        w.note_write(SimTime::from_nanos(1_300), PhysAddr::new(1003), &[0xEE]);
        assert_eq!(w.observed()[3], 0xEE);
    }

    #[test]
    fn partial_overlap() {
        let mut w = window(10, 100);
        // Write spans [998, 1002): only offsets 0 and 1 are in the range.
        w.note_write(
            SimTime::from_nanos(1_000),
            PhysAddr::new(998),
            &[1, 2, 3, 4],
        );
        assert_eq!(&w.observed()[..3], &[3, 4, 0]);
    }

    #[test]
    fn later_write_overrides_earlier_for_unread_bytes() {
        let mut w = window(4, 1_000_000); // 1ms per byte: everything unread
        w.note_write(SimTime::from_micros(2), PhysAddr::new(1002), &[0xAA]);
        w.note_write(SimTime::from_micros(3), PhysAddr::new(1002), &[0xBB]);
        assert_eq!(w.observed()[2], 0xBB);
    }

    #[test]
    fn attack_then_recover_race() {
        // The paper's race in miniature: hijack before the scan, restore
        // mid-scan. Bytes read before the restore show the hijack.
        let w = ScanWindow::begin(
            MemRange::new(PhysAddr::new(0), 100),
            SimTime::ZERO,
            10e-9, // 10ns per byte → offset k read at 10k ns
            vec![0x41; 100],
        );
        // Rootkit hijacked offset 50 before the scan started (snapshot shows it).
        let mut snapshot_with_hijack = vec![0x41; 100];
        snapshot_with_hijack[50] = 0x66;
        let mut w2 = ScanWindow::begin(w.range(), w.start(), 10e-9, snapshot_with_hijack);
        // Restore lands at 400ns — before byte 50's read instant (500ns):
        w2.note_write(SimTime::from_nanos(400), PhysAddr::new(50), &[0x41]);
        assert_eq!(
            w2.observed()[50],
            0x41,
            "attacker wins: restore beat the scan"
        );
        // Restore lands at 600ns — after byte 50 was read: hijack observed.
        let mut snapshot_with_hijack = vec![0x41; 100];
        snapshot_with_hijack[50] = 0x66;
        let mut w3 = ScanWindow::begin(w.range(), w.start(), 10e-9, snapshot_with_hijack);
        w3.note_write(SimTime::from_nanos(600), PhysAddr::new(50), &[0x41]);
        assert_eq!(
            w3.observed()[50],
            0x66,
            "defender wins: scan beat the restore"
        );
        let _ = w;
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_writes_rejected() {
        let mut w = window(4, 100);
        w.note_write(SimTime::from_micros(5), PhysAddr::new(1000), &[1]);
        w.note_write(SimTime::from_micros(4), PhysAddr::new(1001), &[1]);
    }

    #[test]
    fn end_and_duration() {
        let w = window(1000, 10);
        assert_eq!(w.duration().as_nanos(), 10_000);
        assert_eq!(w.end(), SimTime::from_micros(11));
        assert_eq!(w.read_instant(0), SimTime::from_micros(1));
    }

    proptest! {
        /// Invariant 6 (DESIGN.md): observed bytes equal memory-at-read-instant
        /// for every byte, for arbitrary write sequences. We verify against a
        /// brute-force per-byte replay.
        #[test]
        fn prop_observed_matches_bruteforce(
            len in 1u64..64,
            rate in 1u64..50,
            writes in proptest::collection::vec(
                (0u64..5_000, 0u64..70, any::<u8>()),
                0..20,
            ),
        ) {
            let range = MemRange::new(PhysAddr::new(100), len);
            let snapshot = vec![0u8; len as usize];
            let mut w = ScanWindow::begin(range, SimTime::ZERO, rate as f64 * 1e-9, snapshot.clone());
            let mut sorted = writes.clone();
            sorted.sort_by_key(|(t, _, _)| *t);
            for (t, addr_off, val) in &sorted {
                w.note_write(SimTime::from_nanos(*t), PhysAddr::new(100 + addr_off), &[*val]);
            }
            // Brute force: for each byte, find the last write at or before its
            // read instant.
            for k in 0..len {
                let read_t = k * rate; // ns
                let mut expect = 0u8;
                for (t, addr_off, val) in &sorted {
                    if *addr_off == k && *t <= read_t {
                        expect = *val;
                    }
                }
                prop_assert_eq!(w.observed()[k as usize], expect, "byte {}", k);
            }
        }
    }
}
