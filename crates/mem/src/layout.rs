//! The synthetic kernel layout: a `System.map` stand-in.
//!
//! The paper's prototype introspects an OpenEmbedded lsk-4.4 kernel of
//! 11,916,240 bytes, divided into 19 areas along `System.map` segment
//! boundaries so that "each section of the normal world OS's System.map only
//! belongs to one area" (§VI-A2). That kernel image is not redistributable,
//! so [`KernelLayout::paper`] builds a deterministic stand-in with the same
//! *segment structure*: 19 contiguous segments whose sizes match the paper's
//! published bounds (largest 876,616 B, smallest 431,360 B, total
//! 11,916,240 B), with the syscall table placed in segment 14 — where the
//! paper's GETTID-hijack experiment puts its target.

use crate::addr::{MemRange, PhysAddr};
use crate::error::MemError;

/// Size of one syscall table entry (a 64-bit function pointer; the paper's
/// sample attack "modifies one 8-bytes address of the system call table").
pub const SYSCALL_ENTRY_SIZE: u64 = 8;

/// AArch64 syscall number of `gettid` — the entry the paper's sample
/// kernel-level attack hijacks (§IV-A2).
pub const GETTID_NR: u64 = 178;

/// What a section holds; determines the synthetic content generator and
/// whether the rich OS is expected to write to it at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SectionKind {
    /// Executable kernel text (invariant after boot).
    Text,
    /// Read-only data (invariant after boot).
    RoData,
    /// The exception vector table (invariant; KProber-I's hijack target).
    VectorTable,
    /// The system call table (invariant; the sample rootkit's target).
    SyscallTable,
    /// Mutable kernel data (still monitored: the paper's experiment treats
    /// the whole mapped kernel as the introspection target).
    Data,
    /// Zero-initialized data.
    Bss,
}

/// One named section of the kernel image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSection {
    name: String,
    kind: SectionKind,
    range: MemRange,
    segment: usize,
}

impl KernelSection {
    /// Section name as it would appear in `System.map`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What the section holds.
    pub fn kind(&self) -> SectionKind {
        self.kind
    }

    /// The section's byte range.
    pub fn range(&self) -> MemRange {
        self.range
    }

    /// The `System.map` segment (introspection area) this section belongs to.
    pub fn segment(&self) -> usize {
        self.segment
    }
}

/// The full kernel layout: contiguous named sections grouped into segments.
///
/// # Example
///
/// ```
/// use satin_mem::KernelLayout;
/// let l = KernelLayout::paper();
/// assert_eq!(l.total_size(), satin_mem::PAPER_KERNEL_SIZE);
/// assert_eq!(l.num_segments(), satin_mem::PAPER_AREA_COUNT);
/// let sys = l.section("sys_call_table").unwrap();
/// assert_eq!(sys.segment(), satin_mem::PAPER_SYSCALL_AREA);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelLayout {
    base: PhysAddr,
    sections: Vec<KernelSection>,
    num_segments: usize,
}

impl KernelLayout {
    /// Default load address of the synthetic kernel image.
    pub const DEFAULT_BASE: PhysAddr = PhysAddr::new(0x8008_0000);

    /// Builds a layout from per-segment section lists:
    /// `segments[i]` is the ordered list of `(name, kind, size)` for segment
    /// `i`. Sections are laid out contiguously from `base`.
    ///
    /// # Panics
    ///
    /// Panics if any segment is empty, any section has zero size, or two
    /// sections share a name.
    pub fn from_segments(base: PhysAddr, segments: &[Vec<(&str, SectionKind, u64)>]) -> Self {
        assert!(!segments.is_empty(), "layout needs at least one segment");
        let mut sections = Vec::new();
        let mut cursor = base;
        // Membership test only, never iterated: lint:allow(unordered-iter)
        let mut seen = std::collections::HashSet::new();
        for (seg_idx, seg) in segments.iter().enumerate() {
            assert!(!seg.is_empty(), "segment {seg_idx} has no sections");
            for (name, kind, size) in seg {
                assert!(*size > 0, "section {name} has zero size");
                assert!(seen.insert(name.to_string()), "duplicate section {name}");
                sections.push(KernelSection {
                    name: name.to_string(),
                    kind: *kind,
                    range: MemRange::new(cursor, *size),
                    segment: seg_idx,
                });
                cursor = cursor + *size;
            }
        }
        KernelLayout {
            base,
            sections,
            num_segments: segments.len(),
        }
    }

    /// The 19-segment layout matching the paper's published numbers.
    pub fn paper() -> Self {
        use SectionKind::*;
        // Segment sizes: 19 values summing to 11,916,240 with the paper's
        // max (876,616) and min (431,360).
        let segments: Vec<Vec<(&str, SectionKind, u64)>> = vec![
            vec![
                (".head.text", Text, 63_488),
                ("vectors", VectorTable, 2_048),
                (".text", Text, 811_080),
            ], // 876,616 (paper's largest)
            vec![(".text.fixup", Text, 431_360)], // paper's smallest
            vec![(".rodata", RoData, 520_000)],
            vec![
                ("__ksymtab", RoData, 280_000),
                ("__ksymtab_gpl", RoData, 280_000),
            ], // 560,000
            vec![("__param", RoData, 100_000), (".init.text", Text, 500_000)], // 600,000
            vec![(".init.data", Data, 640_000)],
            vec![
                (".exit.text", Text, 80_000),
                (".altinstructions", RoData, 600_000),
            ], // 680,000
            vec![(".data..percpu", Data, 720_000)],
            vec![(".data..read_mostly", Data, 760_000)],
            vec![(".data.part0", Data, 800_000)],
            vec![(".data.part1", Data, 840_000)],
            vec![(".data.part2", Data, 500_000)],
            vec![(".data.part3", Data, 520_000)],
            vec![(".data.part4", Data, 540_000)],
            vec![
                (".data.part5", Data, 556_400),
                ("sys_call_table", SyscallTable, 3_600),
            ], // 560,000 — segment 14, the paper's attack target area
            vec![(".data.part6", Data, 580_000)],
            vec![(".bss.part0", Bss, 600_000)],
            vec![(".bss.part1", Bss, 620_000)],
            vec![(".bss.part2", Bss, 568_264)],
        ];
        Self::from_segments(Self::DEFAULT_BASE, &segments)
    }

    /// Base (load) address.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Total image size in bytes.
    pub fn total_size(&self) -> u64 {
        self.sections.iter().map(|s| s.range.len()).sum()
    }

    /// The whole image as one range.
    pub fn range(&self) -> MemRange {
        MemRange::new(self.base, self.total_size())
    }

    /// Number of `System.map` segments (introspection areas).
    pub fn num_segments(&self) -> usize {
        self.num_segments
    }

    /// All sections, in address order.
    pub fn sections(&self) -> &[KernelSection] {
        &self.sections
    }

    /// Looks up a section by name.
    ///
    /// # Errors
    ///
    /// [`MemError::NoSuchSection`] if no section has that name.
    pub fn section(&self, name: &str) -> Result<&KernelSection, MemError> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| MemError::NoSuchSection { name: name.into() })
    }

    /// The contiguous byte range of segment `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_segments()`.
    pub fn segment_range(&self, idx: usize) -> MemRange {
        assert!(idx < self.num_segments, "segment {idx} out of range");
        let mut iter = self.sections.iter().filter(|s| s.segment == idx);
        let first = iter.next().expect("segment has sections by construction");
        let last = self
            .sections
            .iter()
            .rfind(|s| s.segment == idx)
            .expect("nonempty");
        MemRange::new(first.range.start(), last.range.end() - first.range.start())
    }

    /// All segment ranges, in order.
    pub fn segment_ranges(&self) -> Vec<MemRange> {
        (0..self.num_segments)
            .map(|i| self.segment_range(i))
            .collect()
    }

    /// The segment containing `addr`, if any.
    pub fn segment_of(&self, addr: PhysAddr) -> Option<usize> {
        self.sections
            .iter()
            .find(|s| s.range.contains(addr))
            .map(|s| s.segment)
    }

    /// The syscall-table section.
    ///
    /// # Panics
    ///
    /// Panics if the layout has no syscall table (custom layouts may not).
    pub fn syscall_table(&self) -> &KernelSection {
        self.sections
            .iter()
            .find(|s| s.kind == SectionKind::SyscallTable)
            .expect("layout has no syscall table section")
    }

    /// Address of syscall table entry `nr`.
    ///
    /// # Panics
    ///
    /// Panics if `nr` is beyond the table.
    pub fn syscall_entry_addr(&self, nr: u64) -> PhysAddr {
        let table = self.syscall_table();
        let off = nr * SYSCALL_ENTRY_SIZE;
        assert!(
            off + SYSCALL_ENTRY_SIZE <= table.range().len(),
            "syscall {nr} beyond table"
        );
        table.range().start() + off
    }

    /// The exception vector table section, if present.
    pub fn vector_table(&self) -> Option<&KernelSection> {
        self.sections
            .iter()
            .find(|s| s.kind == SectionKind::VectorTable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PAPER_AREA_COUNT, PAPER_KERNEL_SIZE, PAPER_LARGEST_AREA, PAPER_SMALLEST_AREA};

    #[test]
    fn paper_layout_matches_published_numbers() {
        let l = KernelLayout::paper();
        assert_eq!(l.total_size(), PAPER_KERNEL_SIZE);
        assert_eq!(l.num_segments(), PAPER_AREA_COUNT);
        let sizes: Vec<u64> = l.segment_ranges().iter().map(|r| r.len()).collect();
        assert_eq!(sizes.iter().copied().max().unwrap(), PAPER_LARGEST_AREA);
        assert_eq!(sizes.iter().copied().min().unwrap(), PAPER_SMALLEST_AREA);
        assert_eq!(sizes.iter().sum::<u64>(), PAPER_KERNEL_SIZE);
    }

    #[test]
    fn sections_contiguous_and_cover_image() {
        let l = KernelLayout::paper();
        let mut cursor = l.base();
        for s in l.sections() {
            assert_eq!(s.range().start(), cursor, "gap before {}", s.name());
            cursor = s.range().end();
        }
        assert_eq!(cursor, l.range().end());
    }

    #[test]
    fn segments_are_contiguous_runs() {
        let l = KernelLayout::paper();
        let mut last_seg = 0;
        for s in l.sections() {
            assert!(s.segment() >= last_seg, "segment indices must not regress");
            assert!(s.segment() <= last_seg + 1, "segment indices must not skip");
            last_seg = s.segment();
        }
        assert_eq!(last_seg, l.num_segments() - 1);
    }

    #[test]
    fn syscall_table_in_area_14() {
        let l = KernelLayout::paper();
        let t = l.syscall_table();
        assert_eq!(t.segment(), crate::PAPER_SYSCALL_AREA);
        assert_eq!(t.range().len() % SYSCALL_ENTRY_SIZE, 0);
        let gettid = l.syscall_entry_addr(GETTID_NR);
        assert!(t.range().contains(gettid));
        assert_eq!(l.segment_of(gettid), Some(crate::PAPER_SYSCALL_AREA));
    }

    #[test]
    fn vector_table_present_and_sized() {
        let l = KernelLayout::paper();
        let v = l.vector_table().unwrap();
        assert_eq!(v.range().len(), 2048); // AArch64 vector table is 0x800
        assert_eq!(v.segment(), 0);
    }

    #[test]
    fn section_lookup() {
        let l = KernelLayout::paper();
        assert!(l.section(".text").is_ok());
        assert!(matches!(
            l.section("nope"),
            Err(MemError::NoSuchSection { .. })
        ));
    }

    #[test]
    fn segment_of_boundaries() {
        let l = KernelLayout::paper();
        assert_eq!(l.segment_of(l.base()), Some(0));
        let end = l.range().end();
        assert_eq!(l.segment_of(end), None);
        let last = l.segment_range(PAPER_AREA_COUNT - 1);
        assert_eq!(l.segment_of(last.start()), Some(PAPER_AREA_COUNT - 1));
    }

    #[test]
    #[should_panic(expected = "duplicate section")]
    fn duplicate_names_rejected() {
        KernelLayout::from_segments(
            PhysAddr::new(0),
            &[vec![
                ("a", SectionKind::Text, 10),
                ("a", SectionKind::Data, 10),
            ]],
        );
    }

    #[test]
    #[should_panic(expected = "zero size")]
    fn zero_size_rejected() {
        KernelLayout::from_segments(PhysAddr::new(0), &[vec![("a", SectionKind::Text, 0)]]);
    }

    #[test]
    fn custom_layout_segment_ranges() {
        let l = KernelLayout::from_segments(
            PhysAddr::new(100),
            &[
                vec![("a", SectionKind::Text, 10), ("b", SectionKind::Data, 20)],
                vec![("c", SectionKind::Bss, 30)],
            ],
        );
        assert_eq!(l.segment_range(0), MemRange::new(PhysAddr::new(100), 30));
        assert_eq!(l.segment_range(1), MemRange::new(PhysAddr::new(130), 30));
        assert!(l.vector_table().is_none());
    }
}
