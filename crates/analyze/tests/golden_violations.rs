//! Golden "violation" fixtures: two deterministic mark streams with known
//! causal defects, snapshot-tested against `tests/golden/*.snap`.
//!
//! The streams are hand-built (not recorded from a campaign — campaigns are
//! clean by construction), so the snapshots pin both halves of the
//! detector's contract: that these defects ARE flagged, and that the
//! rendered report is byte-stable across refactors.
//!
//! Re-bless after an intentional format change with
//! `SATIN_BLESS=1 cargo test -p satin-analyze --test golden_violations`.

use satin_analyze::{AnalyzeProbe, RaceReport};
use satin_sim::{Mark, MarkTag, SimObserver, SimTime};
use std::path::PathBuf;

fn feed(probe: &mut AnalyzeProbe, t_ns: u64, mark: Mark) {
    probe.on_mark(SimTime::from_nanos(t_ns), &mark);
}

/// A detection emitted with no publish anywhere in its session's causal
/// past: the normal world would learn of the alarm before the round's
/// results exist.
fn detection_before_publish() -> RaceReport {
    let (mut probe, handle) = AnalyzeProbe::shared(2);
    feed(&mut probe, 100, Mark::new(MarkTag::SecureFire, 0));
    feed(
        &mut probe,
        110,
        Mark::with_args(MarkTag::ScanBegin, 0, 0x1000, 4096),
    );
    feed(&mut probe, 9_000, Mark::new(MarkTag::ScanEnd, 0));
    // Publish never happens; the detection below is acausal.
    feed(
        &mut probe,
        9_500,
        Mark::with_args(MarkTag::Detection, 0, 9_500, 1),
    );
    handle.report()
}

/// A second scan window opened on a core whose previous window never
/// closed: one secure world running two scans at once.
fn overlapping_windows() -> RaceReport {
    let (mut probe, handle) = AnalyzeProbe::shared(2);
    feed(&mut probe, 100, Mark::new(MarkTag::SecureFire, 0));
    feed(
        &mut probe,
        110,
        Mark::with_args(MarkTag::ScanBegin, 0, 0x2000, 8192),
    );
    feed(&mut probe, 100, Mark::new(MarkTag::SecureFire, 1));
    // Core 1 behaves; core 0 re-opens before closing.
    feed(
        &mut probe,
        150,
        Mark::with_args(MarkTag::ScanBegin, 1, 0x8000, 512),
    );
    feed(&mut probe, 700, Mark::new(MarkTag::ScanEnd, 1));
    feed(
        &mut probe,
        900,
        Mark::with_args(MarkTag::ScanBegin, 0, 0x4000, 8192),
    );
    handle.report()
}

fn check(name: &str, report: &RaceReport) {
    let rendered = report.render_violations();
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "golden", name]
        .iter()
        .collect();
    if std::env::var_os("SATIN_BLESS").is_some() {
        std::fs::write(&path, &rendered).expect("writing blessed snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {}: {e}", path.display()));
    assert_eq!(
        rendered,
        expected,
        "\n-- rendered --\n{rendered}\n-- snapshot {} --\n{expected}",
        path.display()
    );
}

#[test]
fn detection_before_publish_is_detected_and_stable() {
    let report = detection_before_publish();
    assert_eq!(report.violations.len(), 1, "{}", report.render_violations());
    check("detection_before_publish.snap", &report);
}

#[test]
fn overlapping_windows_are_detected_and_stable() {
    let report = overlapping_windows();
    assert_eq!(report.violations.len(), 1, "{}", report.render_violations());
    check("overlapping_windows.snap", &report);
}
