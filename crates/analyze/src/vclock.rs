//! Fixed-width vector clocks for the happens-before race detector.
//!
//! Each clock has one slot per simulated core plus (by the detector's
//! convention) one extra slot for cross-core communication channels. A
//! clock `a` happens-before `b` iff `a ≤ b` pointwise and `a ≠ b`;
//! incomparable clocks are concurrent. The merge operation is pointwise
//! max — a bounded join-semilattice, which is what makes merges
//! commutative, associative, and idempotent (the property tests pin all
//! three, plus monotonicity).

/// A fixed-width vector clock.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    slots: Vec<u64>,
}

impl VectorClock {
    /// The zero clock with `width` slots.
    pub fn new(width: usize) -> Self {
        VectorClock {
            slots: vec![0; width],
        }
    }

    /// Number of slots.
    pub fn width(&self) -> usize {
        self.slots.len()
    }

    /// The value of slot `i` (0 for out-of-range slots, so clocks of
    /// different widths compare sensibly).
    pub fn get(&self, i: usize) -> u64 {
        self.slots.get(i).copied().unwrap_or(0)
    }

    /// Advances slot `i` by one — the local step of the process that owns
    /// the slot.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn tick(&mut self, i: usize) {
        self.slots[i] += 1;
    }

    /// Raises slot `i` to at least `v` (used for channel slots driven by a
    /// global monotone sequence).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn raise(&mut self, i: usize, v: u64) {
        if self.slots[i] < v {
            self.slots[i] = v;
        }
    }

    /// Pointwise-max join of `other` into `self`.
    pub fn merge(&mut self, other: &VectorClock) {
        if other.slots.len() > self.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (s, o) in self.slots.iter_mut().zip(&other.slots) {
            if *o > *s {
                *s = *o;
            }
        }
    }

    /// The join of `self` and `other`, leaving both untouched.
    pub fn merged(&self, other: &VectorClock) -> VectorClock {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// `true` iff `self ≤ other` pointwise — `self` is in `other`'s causal
    /// past (or equal to it).
    pub fn leq(&self, other: &VectorClock) -> bool {
        let width = self.slots.len().max(other.slots.len());
        (0..width).all(|i| self.get(i) <= other.get(i))
    }

    /// `true` iff `self` happens-before `other` (`≤` and not equal).
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.leq(other) && self != other
    }

    /// `true` iff neither clock is in the other's causal past.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(slots: &[u64]) -> VectorClock {
        let mut c = VectorClock::new(slots.len());
        for (i, &v) in slots.iter().enumerate() {
            c.raise(i, v);
        }
        c
    }

    #[test]
    fn tick_and_order() {
        let mut a = VectorClock::new(3);
        let b = a.clone();
        a.tick(1);
        assert!(b.happens_before(&a));
        assert!(!a.happens_before(&b));
        assert!(b.leq(&a));
    }

    #[test]
    fn concurrent_clocks_are_incomparable() {
        let a = vc(&[1, 0]);
        let b = vc(&[0, 1]);
        assert!(a.concurrent_with(&b));
        assert!(b.concurrent_with(&a));
        let j = a.merged(&b);
        assert!(a.leq(&j));
        assert!(b.leq(&j));
    }

    #[test]
    fn merge_handles_width_mismatch() {
        let a = vc(&[1, 2]);
        let b = vc(&[0, 0, 5]);
        let j = a.merged(&b);
        assert_eq!((j.get(0), j.get(1), j.get(2)), (1, 2, 5));
        assert!(a.leq(&j) && b.leq(&j));
    }

    mod merge_laws {
        use super::*;
        use proptest::prelude::*;

        fn clock(slots: &[u64]) -> VectorClock {
            let mut c = VectorClock::new(slots.len());
            for (i, &v) in slots.iter().enumerate() {
                c.raise(i, v);
            }
            c
        }

        fn slots() -> collection::VecStrategy<std::ops::Range<u64>> {
            collection::vec(0u64..64, 1..8)
        }

        proptest! {
            #[test]
            fn merge_is_commutative(a in slots(), b in slots()) {
                let (a, b) = (clock(&a), clock(&b));
                prop_assert_eq!(a.merged(&b), b.merged(&a));
            }

            #[test]
            fn merge_is_associative(a in slots(), b in slots(), c in slots()) {
                let (a, b, c) = (clock(&a), clock(&b), clock(&c));
                prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
            }

            #[test]
            fn merge_is_idempotent(a in slots(), b in slots()) {
                let (a, b) = (clock(&a), clock(&b));
                let j = a.merged(&b);
                prop_assert_eq!(j.merged(&b), j.clone());
                prop_assert_eq!(j.merged(&a), j);
            }

            #[test]
            fn merge_is_monotone(a in slots(), b in slots()) {
                let (a, b) = (clock(&a), clock(&b));
                let j = a.merged(&b);
                prop_assert!(a.leq(&j));
                prop_assert!(b.leq(&j));
                // And it is the LEAST upper bound: every slot of the join
                // equals one of the inputs' slots.
                for i in 0..j.width() {
                    prop_assert!(j.get(i) == a.get(i) || j.get(i) == b.get(i));
                }
            }

            #[test]
            fn leq_is_a_partial_order(a in slots(), b in slots()) {
                let (a, b) = (clock(&a), clock(&b));
                prop_assert!(a.leq(&a));
                if a.leq(&b) && b.leq(&a) {
                    // Antisymmetry up to trailing-zero padding.
                    let w = a.width().max(b.width());
                    for i in 0..w {
                        prop_assert_eq!(a.get(i), b.get(i));
                    }
                }
            }
        }
    }
}
