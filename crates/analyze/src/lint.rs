//! The determinism lint behind the `satin-lint` binary.
//!
//! The reproduction's central promise is that every run is a pure function
//! of its seed, and the golden-trace snapshots only stay meaningful if the
//! code never smuggles in ambient nondeterminism. This module scans
//! `crates/*/src` line-by-line for the four ways that has almost happened:
//!
//! - **`wall-clock`** — `Instant::now` / `SystemTime`: real time must never
//!   reach simulation logic; all time is [`satin_sim`'s] virtual clock.
//! - **`unordered-iter`** — `HashMap` / `HashSet`: iteration order is
//!   randomized per-process, so any result derived from it breaks seed
//!   reproducibility. Use `BTreeMap`/`BTreeSet` or annotate membership-only
//!   uses.
//! - **`thread-spawn`** — `thread::spawn` outside the campaign runner: the
//!   runner is the single sanctioned fan-out point; stray threads make
//!   aggregation order timing-dependent.
//! - **`unwrap`** — `.unwrap()` in library code: panics in the sim layers
//!   abort whole campaigns; library code returns errors or uses `expect`
//!   with an invariant message. Binaries and test code are exempt.
//!
//! A finding is suppressed by `// lint:allow(<rule>)` on the same line or
//! the line directly above. `#[cfg(test)]` regions (tracked by brace
//! depth), test-only files (`tests.rs` / `*_tests.rs`, included via
//! `#[cfg(test)] mod`), comments, doc comments, and string-literal contents
//! are never linted. The vendored `proptest`/`criterion` stand-ins are
//! excluded wholesale: they exist to avoid network dependencies and
//! deliberately wrap wall-clock timing.
//!
//! The walk order and output are fully deterministic (sorted paths, line
//! order), so `ci.sh` can diff lint output across runs.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The lint rules, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintRule {
    /// `Instant::now` / `SystemTime` — real time in simulation code.
    WallClock,
    /// `HashMap` / `HashSet` — iteration order is nondeterministic.
    UnorderedIter,
    /// `thread::spawn` outside the campaign runner.
    ThreadSpawn,
    /// `.unwrap()` in library (non-binary, non-test) code.
    Unwrap,
}

impl LintRule {
    /// Every rule, in report order.
    pub const ALL: [LintRule; 4] = [
        LintRule::WallClock,
        LintRule::UnorderedIter,
        LintRule::ThreadSpawn,
        LintRule::Unwrap,
    ];

    /// The rule's name as used in reports and `lint:allow(...)` escapes.
    pub fn as_str(self) -> &'static str {
        match self {
            LintRule::WallClock => "wall-clock",
            LintRule::UnorderedIter => "unordered-iter",
            LintRule::ThreadSpawn => "thread-spawn",
            LintRule::Unwrap => "unwrap",
        }
    }

    /// What the rule guards against, for `--explain`-style output.
    pub fn rationale(self) -> &'static str {
        match self {
            LintRule::WallClock => {
                "real time must never reach simulation logic; use the virtual clock"
            }
            LintRule::UnorderedIter => {
                "HashMap/HashSet iteration order breaks seed reproducibility; \
                 use BTreeMap/BTreeSet"
            }
            LintRule::ThreadSpawn => {
                "the campaign runner is the only sanctioned thread fan-out point"
            }
            LintRule::Unwrap => {
                "library code must not panic on recoverable states; \
                 return an error or expect() with an invariant message"
            }
        }
    }

    fn patterns(self) -> &'static [&'static str] {
        match self {
            LintRule::WallClock => &["Instant::now", "SystemTime"],
            LintRule::UnorderedIter => &["HashMap", "HashSet"],
            LintRule::ThreadSpawn => &["thread::spawn"],
            LintRule::Unwrap => &[".unwrap()"],
        }
    }
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint hit: file, 1-based line, rule, and the offending line text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Path as reported (relative to the linted root).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: LintRule,
    /// The source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// Vendored dependency stand-ins, excluded from the walk entirely.
const STUB_CRATES: [&str; 2] = ["criterion", "proptest"];

/// Files allowed to spawn threads: the campaign runner's fan-out point and
/// the observability drain (a pure *reader* of the live channel — it runs
/// no simulation, so its scheduling cannot reach any result).
const THREAD_SPAWN_ALLOWLIST: [&str; 2] =
    ["crates/bench/src/runner.rs", "crates/obs/src/progress.rs"];

/// Splits a source line into its code and comment halves, blanking the
/// *contents* of string and char literals in the code half so that a banned
/// pattern quoted inside a string (or a `//` inside a URL literal) can
/// neither trigger nor mask a finding. Good enough for lint purposes; raw
/// and multi-line strings are not tracked across lines, but a line that
/// *begins* mid-string still blanks from its first quote on.
fn split_code_comment(line: &str) -> (String, &str) {
    let bytes = line.as_bytes();
    let mut code: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\\' if in_str => {
                code.extend_from_slice(b"  "); // escape + escaped byte
                i += 2;
                continue;
            }
            b'"' => {
                in_str = !in_str;
                code.push(b'"');
            }
            b'\'' if !in_str => {
                // Char literal like 'x', '"', or '\\'; lifetimes ('a) have
                // no closing quote nearby and fall through unblanked.
                if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    code.extend_from_slice(b"' '");
                    i += 3;
                    continue;
                } else if i + 3 < bytes.len() && bytes[i + 1] == b'\\' && bytes[i + 3] == b'\'' {
                    code.extend_from_slice(b"'  '");
                    i += 4;
                    continue;
                }
                code.push(b'\'');
            }
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let code = String::from_utf8_lossy(&code).into_owned();
                return (code, &line[i..]);
            }
            _ => {
                code.push(if in_str { b' ' } else { b });
            }
        }
        i += 1;
    }
    (String::from_utf8_lossy(&code).into_owned(), "")
}

fn allows(comment: &str, rule: LintRule) -> bool {
    comment
        .find("lint:allow(")
        .map(|at| {
            let rest = &comment[at + "lint:allow(".len()..];
            rest.split(')')
                .next()
                .map(|list| list.split(',').any(|r| r.trim() == rule.as_str()))
                .unwrap_or(false)
        })
        .unwrap_or(false)
}

fn brace_delta(code: &str) -> i64 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Lints one file's source text. `path` is used for reporting and for the
/// path-based exemptions (binaries skip the `unwrap` rule; the runner may
/// spawn threads).
pub fn lint_source(path: &str, source: &str) -> Vec<LintFinding> {
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("");
    if stem == "tests" || stem.ends_with("_tests") {
        return Vec::new(); // test-only file, included via #[cfg(test)] mod
    }
    let is_bin = path.contains("/bin/") || path.ends_with("/main.rs");
    let spawn_allowed = THREAD_SPAWN_ALLOWLIST.iter().any(|p| path.ends_with(p));

    let mut findings = Vec::new();
    let mut prev_comment = String::new();
    // #[cfg(test)] region tracking: armed until the region's first `{`,
    // then brace-counted until depth returns to zero.
    let mut test_armed = false;
    let mut test_depth: i64 = 0;
    let mut in_test = false;

    for (idx, raw) in source.lines().enumerate() {
        let (code, comment) = split_code_comment(raw);
        let trimmed = raw.trim();
        let is_doc = trimmed.starts_with("///") || trimmed.starts_with("//!");

        if code.contains("#[cfg(test)]") {
            test_armed = true;
        }
        if test_armed && !in_test {
            let d = brace_delta(&code);
            if d > 0 || code.contains('{') {
                in_test = true;
                test_armed = false;
                test_depth = d;
                if test_depth <= 0 {
                    in_test = false; // single-line item, e.g. `use` glob
                }
            }
        } else if in_test {
            test_depth += brace_delta(&code);
            if test_depth <= 0 {
                in_test = false;
            }
        }

        if !in_test && !is_doc && !code.trim().is_empty() {
            for rule in LintRule::ALL {
                if rule == LintRule::Unwrap && is_bin {
                    continue;
                }
                if rule == LintRule::ThreadSpawn && spawn_allowed {
                    continue;
                }
                if rule.patterns().iter().any(|p| code.contains(p))
                    && !allows(comment, rule)
                    && !allows(&prev_comment, rule)
                {
                    findings.push(LintFinding {
                        path: path.to_string(),
                        line: idx + 1,
                        rule,
                        excerpt: raw.trim().to_string(),
                    });
                }
            }
        }

        prev_comment = comment.to_string();
    }
    findings
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lints an explicit file list (paths reported as given, in sorted order).
pub fn lint_paths(root: &Path, files: &[PathBuf]) -> io::Result<Vec<LintFinding>> {
    let mut files: Vec<PathBuf> = files.to_vec();
    files.sort();
    let mut findings = Vec::new();
    for f in &files {
        let source = fs::read_to_string(f)?;
        let label = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_source(&label, &source));
    }
    Ok(findings)
}

/// Walks `root/crates/*/src` (skipping the vendored stand-ins) and lints
/// every `.rs` file, in deterministic sorted order.
pub fn lint_tree(root: &Path) -> io::Result<Vec<LintFinding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut files = Vec::new();
    for c in crate_dirs {
        let name = c.file_name().map(|n| n.to_string_lossy().into_owned());
        if name.as_deref().is_some_and(|n| STUB_CRATES.contains(&n)) {
            continue;
        }
        let src = c.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    lint_paths(root, &files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(src: &str) -> Vec<LintRule> {
        lint_source("crates/x/src/lib.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn flags_each_rule() {
        assert_eq!(
            rules("let t = std::time::Instant::now();"),
            vec![LintRule::WallClock]
        );
        assert_eq!(
            rules("use std::collections::HashMap;"),
            vec![LintRule::UnorderedIter]
        );
        assert_eq!(
            rules("std::thread::spawn(|| {});"),
            vec![LintRule::ThreadSpawn]
        );
        assert_eq!(rules("let v = x.unwrap();"), vec![LintRule::Unwrap]);
    }

    #[test]
    fn same_line_allow_suppresses() {
        assert!(rules("let s = HashSet::new(); // lint:allow(unordered-iter)").is_empty());
    }

    #[test]
    fn previous_line_allow_suppresses() {
        let src = "// membership only, never iterated: lint:allow(unordered-iter)\n\
                   let s = std::collections::HashSet::new();";
        assert!(rules(src).is_empty());
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        assert_eq!(
            rules("let v = x.unwrap(); // lint:allow(wall-clock)"),
            vec![LintRule::Unwrap]
        );
    }

    #[test]
    fn comments_and_doc_comments_are_not_linted() {
        assert!(rules("// a HashMap would be wrong here").is_empty());
        assert!(rules("/// Uses Instant::now? No: x.unwrap() discussion.").is_empty());
        assert!(rules("//! SystemTime is banned.").is_empty());
    }

    #[test]
    fn string_literals_hide_comment_markers_but_code_still_lints() {
        // The `//` inside the string must not hide the unwrap after it.
        assert_eq!(
            rules(r#"let u = parse("scheme://host").unwrap();"#),
            vec![LintRule::Unwrap]
        );
    }

    #[test]
    fn cfg_test_region_is_skipped() {
        let src = "\
pub fn lib() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = Some(1).unwrap();
        let h = std::collections::HashMap::<u32, u32>::new();
    }
}
let after = Some(1).unwrap();";
        assert_eq!(rules(src), vec![LintRule::Unwrap]); // only `after`
    }

    #[test]
    fn binaries_are_exempt_from_unwrap_only() {
        let f = lint_source(
            "crates/x/src/bin/tool.rs",
            "let v = x.unwrap();\nlet t = Instant::now();",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, LintRule::WallClock);
    }

    #[test]
    fn runner_may_spawn_threads() {
        assert!(rules_at("crates/bench/src/runner.rs", "thread::spawn(body);").is_empty());
        assert_eq!(
            rules_at("crates/bench/src/other.rs", "thread::spawn(body);"),
            vec![LintRule::ThreadSpawn]
        );
    }

    fn rules_at(path: &str, src: &str) -> Vec<LintRule> {
        lint_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn finding_display_is_stable() {
        let f = lint_source("crates/x/src/lib.rs", "let t = Instant::now();");
        assert_eq!(
            f[0].to_string(),
            "crates/x/src/lib.rs:1: [wall-clock] let t = Instant::now();"
        );
    }
}
