#![warn(missing_docs)]
//! Static and trace analysis for the SATIN reproduction.
//!
//! The simulation layers (`satin-sim` → `satin-system` → `satin-core`) are
//! deterministic by construction, but determinism alone doesn't prove the
//! *ordering* claims the paper rests on: that a detection is published
//! before anyone reads it, that secure scans never overlap on a core, that
//! TZ-Evader's recovery only fires after its prober actually observed a
//! world switch. This crate checks those claims after (and outside of)
//! every run, three ways:
//!
//! - [`hb`] — a vector-clock **happens-before race detector**. An
//!   [`AnalyzeProbe`] rides the engine's [`satin_sim::SimObserver`] seat,
//!   assigns each core a [`VectorClock`], derives causal edges from the
//!   cross-core mark stream (timer fire → prober observation → recovery,
//!   scan publish → detection), and flags three violation classes with the
//!   offending event pairs, sim timestamps, and core IDs.
//! - [`invariant`] — an **Eq.1/Eq.2 audit** that re-derives the paper's
//!   closed-form race equations from the recorded mark log and asserts the
//!   simulated outcome matches: every fair-race window the closed form says
//!   the introspection wins must carry a detection, every scan window must
//!   fit the §V-B safe-area bound, and a `ScanWindow` micro-simulation must
//!   place the escape boundary on the closed form to the byte.
//! - [`lint`] — the `satin-lint` binary, a **determinism lint** over
//!   `crates/*/src` that bans wall-clock reads, unordered-iteration
//!   containers in sim-facing code, stray thread spawns, and `unwrap()` in
//!   library code, with `// lint:allow(<rule>)` escapes. `ci.sh` runs it in
//!   deny mode.
//!
//! All three are pure observers: they never mutate simulation state, never
//! consume randomness, and the golden-trace snapshots pin that attaching
//! them changes nothing.

pub mod hb;
pub mod invariant;
pub mod lint;
pub mod vclock;

pub use hb::{
    attach, AnalyzeHandle, AnalyzeProbe, MarkRecord, RaceReport, Violation, ViolationKind,
};
pub use invariant::{audit, InvariantReport};
pub use lint::{lint_paths, lint_tree, LintFinding, LintRule};
pub use vclock::VectorClock;
