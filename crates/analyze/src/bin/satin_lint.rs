//! `satin-lint` — the determinism lint gate.
//!
//! Scans `crates/*/src` for banned nondeterminism (wall-clock reads,
//! unordered-iteration containers, stray thread spawns, `unwrap()` in
//! library code) and exits nonzero on any finding. See
//! [`satin_analyze::lint`] for the rules and the `// lint:allow(<rule>)`
//! escape.
//!
//! ```text
//! satin-lint [--root DIR] [--explain] [FILE...]
//! ```
//!
//! With no `FILE` arguments the whole tree under `--root` (default: the
//! current directory, or its nearest ancestor containing `crates/`) is
//! linted. `ci.sh` runs it in this mode as a deny-by-default gate.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use satin_analyze::lint::{lint_paths, lint_tree, LintRule};

fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}

fn explain() {
    println!("satin-lint rules:");
    for rule in LintRule::ALL {
        println!("  {:<15} {}", rule.as_str(), rule.rationale());
    }
    println!("suppress with `// lint:allow(<rule>)` on the same or previous line");
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("satin-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--explain" => {
                explain();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: satin-lint [--root DIR] [--explain] [FILE...]");
                return ExitCode::SUCCESS;
            }
            _ => files.push(PathBuf::from(a)),
        }
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = root
        .or_else(|| find_root(&cwd))
        .unwrap_or_else(|| cwd.clone());

    let result = if files.is_empty() {
        lint_tree(&root)
    } else {
        lint_paths(&root, &files)
    };
    let findings = match result {
        Ok(f) => f,
        Err(e) => {
            eprintln!("satin-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("satin-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("satin-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
