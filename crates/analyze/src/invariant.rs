//! Re-derives the paper's closed-form race equations from a recorded run and
//! checks the simulated outcome against them.
//!
//! **Equation 1** (§IV-C): the attacker escapes a scan iff
//! `Ts_switch + s·Ts_1byte > Tns_sched + Tns_threshold + Tns_recover`, where
//! `s` is the number of bytes scanned before the malicious byte. For every
//! *fair-race* window in the mark log — the hijack was live when the round's
//! timer fired and no prober observation tipped the evader off beforehand —
//! the closed form must agree with what the simulation did: if Eq.1 says the
//! introspection wins, the session must carry a `detection` mark. The count
//! of disagreements is [`InvariantReport::eq1_residual`].
//!
//! **Equation 2** (§IV-C/§V-B): the protected prefix
//! `S = (Tns_sched + Tns_threshold + Tns_recover − Ts_switch) / Ts_1byte`
//! bounds the safe area size. Two checks: every completed scan window in the
//! log must fit the bound ([`InvariantReport::eq2_window_residual`] counts
//! oversized windows), and a [`ScanWindow`] micro-simulation binary-searched
//! over byte offsets must place the escape boundary exactly where the closed
//! form does ([`InvariantReport::eq2_boundary_residual`] is the distance in
//! bytes between the two).
//!
//! On a SATIN campaign run all three residuals are exactly zero — `ci.sh`
//! gates on this over seeds 7, 42, and 1009.

use crate::hb::MarkRecord;
use satin_attack::race::RaceParams;
use satin_mem::{MemRange, PhysAddr, ScanWindow, PAPER_KERNEL_SIZE};
use satin_sim::{MarkTag, SimDuration, SimTime};

/// The outcome of auditing one run's mark log against Eq.1 and Eq.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantReport {
    /// Eq.2's protected prefix for the audited parameters, bytes.
    pub protected_prefix_bytes: u64,
    /// Completed scan windows in the log.
    pub audited_windows: u64,
    /// Windows that covered the hijacked address in a fair race.
    pub fair_race_windows: u64,
    /// Windows that covered the hijacked address after the evader was
    /// already tipped off (early warning from a closely preceding round).
    pub early_warning_windows: u64,
    /// Fair-race windows where Eq.1 predicts a catch but no detection mark
    /// exists — must be 0.
    pub eq1_residual: u64,
    /// Scan windows longer than Eq.2's safe-area bound — must be 0 on SATIN
    /// runs (every one of the 19 areas fits the bound).
    pub eq2_window_residual: u64,
    /// Distance in bytes between the micro-simulated escape boundary and
    /// Eq.2's closed form — must be 0.
    pub eq2_boundary_residual: u64,
}

impl InvariantReport {
    /// `true` when every residual is exactly zero.
    pub fn is_clean(&self) -> bool {
        self.eq1_residual == 0 && self.eq2_window_residual == 0 && self.eq2_boundary_residual == 0
    }
}

impl std::fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "invariants: prefix={}B windows={} fair-race={} early-warning={}",
            self.protected_prefix_bytes,
            self.audited_windows,
            self.fair_race_windows,
            self.early_warning_windows
        )?;
        writeln!(
            f,
            "residuals: eq1={} eq2-window={} eq2-boundary={}B -> {}",
            self.eq1_residual,
            self.eq2_window_residual,
            self.eq2_boundary_residual,
            if self.is_clean() { "CLEAN" } else { "VIOLATED" }
        )
    }
}

/// One reassembled introspection session (fire → window → publish).
#[derive(Debug, Clone)]
struct Session {
    fired: SimTime,
    window: Option<(u64, u64)>, // (base, len)
    detected: bool,
}

/// The evader's head start: a prober observation closer than this before a
/// fire means the recovery was already racing when the round began (mirrors
/// the detection campaign's fair-race classification).
const HEAD_START: SimDuration = SimDuration::from_millis(10);

/// Audits a recorded mark log against Eq.1 and Eq.2 under `params`.
pub fn audit(marks: &[MarkRecord], params: &RaceParams) -> InvariantReport {
    let num_cores = marks.iter().map(|m| m.mark.core + 1).max().unwrap_or(1);

    // Reassemble per-core sessions and the global attack chronology.
    let mut open: Vec<Option<Session>> = vec![None; num_cores];
    let mut sessions: Vec<Session> = Vec::new();
    let mut lifecycle: Vec<(SimTime, bool)> = Vec::new(); // (at, installed)
    let mut hijack_addrs: Vec<u64> = Vec::new();
    let mut observes: Vec<SimTime> = Vec::new();
    for m in marks {
        let core = m.mark.core;
        match m.mark.tag {
            MarkTag::SecureFire => {
                if let Some(s) = open[core].take() {
                    sessions.push(s);
                }
                open[core] = Some(Session {
                    fired: m.at,
                    window: None,
                    detected: false,
                });
            }
            MarkTag::ScanBegin => {
                if let Some(s) = open[core].as_mut() {
                    s.window = Some((m.mark.a, m.mark.b));
                }
            }
            MarkTag::Detection => {
                if let Some(s) = open[core].as_mut() {
                    s.detected = true;
                }
            }
            MarkTag::AttackInstall => {
                lifecycle.push((m.at, true));
                if !hijack_addrs.contains(&m.mark.a) {
                    hijack_addrs.push(m.mark.a);
                }
            }
            MarkTag::AttackRestore => lifecycle.push((m.at, false)),
            MarkTag::AttackObserve => observes.push(m.at),
            MarkTag::ScanEnd | MarkTag::Publish | MarkTag::RecoveryBegin => {}
        }
    }
    for s in open.into_iter().flatten() {
        sessions.push(s);
    }

    let active_at = |t: SimTime| -> bool {
        let mut active = false;
        for &(at, installed) in &lifecycle {
            if at <= t {
                active = installed;
            } else {
                break;
            }
        }
        active
    };
    let tipped_off = |fired: SimTime| -> bool {
        observes
            .iter()
            .any(|&d| d < fired && fired.saturating_since(d) < HEAD_START)
    };

    let bound = params.max_safe_area_bytes();
    let mut audited_windows = 0u64;
    let mut fair = 0u64;
    let mut early = 0u64;
    let mut eq1_residual = 0u64;
    let mut eq2_window_residual = 0u64;
    for s in &sessions {
        let Some((base, len)) = s.window else {
            continue;
        };
        audited_windows += 1;
        if len > bound {
            eq2_window_residual += 1;
        }
        let Some(&addr) = hijack_addrs.iter().find(|&&a| a >= base && a < base + len) else {
            continue; // window does not cover the hijack: nothing to race
        };
        if active_at(s.fired) && !tipped_off(s.fired) {
            fair += 1;
            // Eq.1 with s = bytes scanned before the hijacked entry. If the
            // closed form says the introspection wins the race, the session
            // must have detected.
            let offset = addr - base;
            if !params.attacker_escapes(offset) && !s.detected {
                eq1_residual += 1;
            }
        } else {
            early += 1;
        }
    }

    InvariantReport {
        protected_prefix_bytes: params.protected_prefix_bytes(),
        audited_windows,
        fair_race_windows: fair,
        early_warning_windows: early,
        eq1_residual,
        eq2_window_residual,
        eq2_boundary_residual: eq2_boundary_residual(params),
    }
}

/// Micro-simulates the §IV-C race through the [`ScanWindow`] TOCTTOU
/// machinery at one byte offset: does the attacker's restore land before the
/// scanner reads offset `s`?
fn escapes_in_micro_sim(params: &RaceParams, s: u64) -> bool {
    let t_fire = SimTime::from_millis(10);
    let switch = SimDuration::from_secs_f64(params.ts_switch);
    let mut snapshot = vec![0u8; PAPER_KERNEL_SIZE as usize];
    snapshot[s as usize] = 0xEE; // the malicious byte
    let mut window = ScanWindow::begin(
        MemRange::new(PhysAddr::new(0), PAPER_KERNEL_SIZE),
        t_fire + switch,
        params.ts_1byte,
        snapshot,
    );
    let restore_at = t_fire + SimDuration::from_secs_f64(params.evasion_latency());
    window.note_write(restore_at, PhysAddr::new(s), &[0x00]);
    window.observed()[s as usize] == 0x00
}

/// Binary-searches the micro-simulated escape boundary and returns its
/// distance in bytes from Eq.2's closed form (0 = exact agreement).
pub fn eq2_boundary_residual(params: &RaceParams) -> u64 {
    let closed_form = params.protected_prefix_bytes();
    if closed_form >= PAPER_KERNEL_SIZE {
        return 0; // no boundary inside the kernel to compare against
    }
    // The escape predicate is monotone in s: find the first escaping offset.
    let (mut lo, mut hi) = (0u64, PAPER_KERNEL_SIZE - 1);
    if !escapes_in_micro_sim(params, hi) {
        // Attacker never escapes even at the last byte; the closed form must
        // agree that the whole kernel is protected.
        return closed_form.saturating_sub(PAPER_KERNEL_SIZE);
    }
    if escapes_in_micro_sim(params, lo) {
        return closed_form + 1; // escapes at byte 0: boundary is 0
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if escapes_in_micro_sim(params, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    // `hi` is the first escaping offset; Eq.2 says that is closed_form + 1.
    hi.abs_diff(closed_form + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_sim::Mark;

    fn rec(t_ns: u64, mark: Mark) -> MarkRecord {
        MarkRecord {
            at: SimTime::from_nanos(t_ns),
            mark,
        }
    }

    /// One fire→scan→publish(→detection) session over a window covering the
    /// hijacked address.
    fn session_marks(core: usize, t_ns: u64, detected: bool) -> Vec<MarkRecord> {
        let mut v = vec![
            rec(t_ns, Mark::new(MarkTag::SecureFire, core)),
            rec(
                t_ns + 10,
                Mark::with_args(MarkTag::ScanBegin, core, 0x1000, 0x8000),
            ),
            rec(t_ns + 1_000, Mark::new(MarkTag::ScanEnd, core)),
            rec(
                t_ns + 1_100,
                Mark::with_args(MarkTag::Publish, core, t_ns + 1_100, 0),
            ),
        ];
        if detected {
            v.push(rec(
                t_ns + 1_100,
                Mark::with_args(MarkTag::Detection, core, t_ns + 1_100, 1),
            ));
        }
        v
    }

    #[test]
    fn fair_race_with_detection_is_clean() {
        let mut marks = vec![rec(
            0,
            Mark::with_args(MarkTag::AttackInstall, 1, 0x2000, 0),
        )];
        marks.extend(session_marks(0, 1_000_000, true));
        let r = audit(&marks, &RaceParams::paper_worst_case());
        assert_eq!(r.audited_windows, 1);
        assert_eq!(r.fair_race_windows, 1);
        assert_eq!(r.eq1_residual, 0);
        assert_eq!(r.eq2_window_residual, 0);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn missed_detection_in_fair_race_is_a_residual() {
        let mut marks = vec![rec(
            0,
            Mark::with_args(MarkTag::AttackInstall, 1, 0x2000, 0),
        )];
        marks.extend(session_marks(0, 1_000_000, false));
        let r = audit(&marks, &RaceParams::paper_worst_case());
        assert_eq!(r.eq1_residual, 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn tipped_off_session_is_early_warning_not_residual() {
        let mut marks = vec![
            rec(0, Mark::with_args(MarkTag::AttackInstall, 1, 0x2000, 0)),
            // An observation 2 ms before the fire: the evader has a head
            // start, so a miss is legitimate.
            rec(
                998_000_000,
                Mark::with_args(MarkTag::AttackObserve, 1, 0, 0),
            ),
        ];
        marks.extend(session_marks(0, 1_000_000_000, false));
        let r = audit(&marks, &RaceParams::paper_worst_case());
        assert_eq!(r.fair_race_windows, 0);
        assert_eq!(r.early_warning_windows, 1);
        assert_eq!(r.eq1_residual, 0);
    }

    #[test]
    fn inactive_hijack_is_not_a_fair_race() {
        let mut marks = vec![
            rec(0, Mark::with_args(MarkTag::AttackInstall, 1, 0x2000, 0)),
            rec(
                500_000,
                Mark::with_args(MarkTag::AttackRestore, 1, 0x2000, 0),
            ),
        ];
        marks.extend(session_marks(0, 1_000_000, false));
        let r = audit(&marks, &RaceParams::paper_worst_case());
        assert_eq!(r.fair_race_windows, 0);
        assert_eq!(r.eq1_residual, 0);
    }

    #[test]
    fn oversized_window_is_an_eq2_residual() {
        let p = RaceParams::paper_worst_case();
        let marks = vec![
            rec(0, Mark::new(MarkTag::SecureFire, 0)),
            rec(
                10,
                Mark::with_args(MarkTag::ScanBegin, 0, 0, p.max_safe_area_bytes() + 1),
            ),
            rec(1_000, Mark::new(MarkTag::ScanEnd, 0)),
            rec(1_100, Mark::with_args(MarkTag::Publish, 0, 1_100, 0)),
        ];
        let r = audit(&marks, &p);
        assert_eq!(r.eq2_window_residual, 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn micro_sim_boundary_matches_closed_form_exactly() {
        // The Eq.2 boundary re-derived through the TOCTTOU machinery lands
        // on the closed form to the byte (Invariant 7 of DESIGN.md).
        assert_eq!(eq2_boundary_residual(&RaceParams::paper_worst_case()), 0);
    }

    #[test]
    fn empty_log_is_clean() {
        let r = audit(&[], &RaceParams::paper_worst_case());
        assert_eq!(r.audited_windows, 0);
        assert!(r.is_clean());
    }
}
