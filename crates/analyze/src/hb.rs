//! The happens-before race detector over the machine's semantic mark stream.
//!
//! [`AnalyzeProbe`] installs as the engine's [`SimObserver`]: every dispatched
//! event advances the owning core's [`VectorClock`] slot (program order), and
//! every [`Mark`] both advances the clock and, for cross-core communication
//! marks, merges the sender's clock into the receiver's:
//!
//! - `secure.fire` on core *c* snapshots *c*'s clock; a later
//!   `attack.observe` of *c* joins that snapshot into the observer's clock
//!   (the prober learned of the freeze through the stale time report);
//! - every `attack.observe` joins the observer's clock into a shared
//!   observation channel (slot `num_cores` of every clock); `recovery.begin`
//!   joins the channel back in (the rootkit reacted to the hide signal).
//!
//! Three invariants of the SATIN two-world race are checked on this causal
//! order, each reported as a [`Violation`] naming the offending event pair
//! with sim timestamps and core ids:
//!
//! 1. **Detection-before-publication** ([`ViolationKind::DetectionBeforePublish`]):
//!    a `detection` mark whose introspection session has no `publish` in its
//!    causal past — the normal world would be told of an alarm before the
//!    round's results exist.
//! 2. **Overlapping scan windows** ([`ViolationKind::OverlappingScanWindows`]):
//!    a `scan.begin` on a core whose previous window never closed — one
//!    secure world cannot run two scans at once.
//! 3. **Acausal recovery** ([`ViolationKind::AcausalRecovery`]): an
//!    `attack.restore` landing inside an open scan window with *no*
//!    `attack.observe` anywhere in its causal past — the rootkit cleaned up
//!    during an introspection it could not have known about. (Deliberately
//!    conservative: a restore caused by an *earlier* round's observation may
//!    legitimately land inside a closely-following window, so only a restore
//!    with no observation at all in its past is flagged.)

use crate::vclock::VectorClock;
use satin_sim::{Mark, MarkTag, SimObserver, SimTime};
use satin_system::SysEvent;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A mark together with the instant it was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkRecord {
    /// Emission instant.
    pub at: SimTime,
    /// The mark.
    pub mark: Mark,
}

/// The class of a detected happens-before violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A detection published before the round's results were.
    DetectionBeforePublish,
    /// Two scan windows open at once on one core.
    OverlappingScanWindows,
    /// A restore inside a scan window with no observation in its causal past.
    AcausalRecovery,
}

impl ViolationKind {
    /// Stable lowercase name.
    pub const fn as_str(self) -> &'static str {
        match self {
            ViolationKind::DetectionBeforePublish => "detection-before-publish",
            ViolationKind::OverlappingScanWindows => "overlapping-scan-windows",
            ViolationKind::AcausalRecovery => "acausal-recovery",
        }
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.as_str())
    }
}

/// One detected violation: the offending event, and when available the other
/// half of the offending pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What was violated.
    pub kind: ViolationKind,
    /// The core the offending event ran on.
    pub core: usize,
    /// The offending event's instant.
    pub at: SimTime,
    /// The paired event's core, if the violation names a pair.
    pub related_core: Option<usize>,
    /// The paired event's instant, if the violation names a pair.
    pub related_at: Option<SimTime>,
    /// Human-readable elaboration.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} core={} t={}ns",
            self.kind,
            self.core,
            self.at.as_nanos()
        )?;
        if let (Some(c), Some(t)) = (self.related_core, self.related_at) {
            write!(f, " paired-with core={c} t={}ns", t.as_nanos())?;
        }
        write!(f, " ({})", self.detail)
    }
}

/// Where a core is within its current introspection session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionPhase {
    Idle,
    Fired,
    Scanning,
    Scanned,
    Published,
}

#[derive(Debug, Clone)]
struct OpenWindow {
    begin: SimTime,
    base: u64,
    len: u64,
}

#[derive(Debug)]
struct Detector {
    num_cores: usize,
    /// Per-core clocks; slot `num_cores` is the shared observation channel.
    clocks: Vec<VectorClock>,
    /// Clock snapshot at each core's most recent `secure.fire`.
    fire_clocks: Vec<Option<VectorClock>>,
    fire_times: Vec<Option<SimTime>>,
    /// Join of every observer's clock at its `attack.observe` marks.
    observe_channel: VectorClock,
    observe_seq: u64,
    /// Clock snapshot at each core's most recent `publish`.
    publish_clocks: Vec<Option<VectorClock>>,
    publish_times: Vec<Option<SimTime>>,
    sessions: Vec<SessionPhase>,
    open_windows: Vec<Option<OpenWindow>>,
    events: u64,
    marks: Vec<MarkRecord>,
    violations: Vec<Violation>,
}

impl Detector {
    fn new(num_cores: usize) -> Self {
        let width = num_cores + 1;
        Detector {
            num_cores,
            clocks: vec![VectorClock::new(width); num_cores],
            fire_clocks: vec![None; num_cores],
            fire_times: vec![None; num_cores],
            observe_channel: VectorClock::new(width),
            observe_seq: 0,
            publish_clocks: vec![None; num_cores],
            publish_times: vec![None; num_cores],
            sessions: vec![SessionPhase::Idle; num_cores],
            open_windows: vec![None; num_cores],
            events: 0,
            marks: Vec::new(),
            violations: Vec::new(),
        }
    }

    fn on_event(&mut self, event: &SysEvent) {
        self.events += 1;
        if let Some(core) = event_core(event) {
            if core < self.num_cores {
                self.clocks[core].tick(core);
            }
        }
    }

    fn on_mark(&mut self, at: SimTime, mark: &Mark) {
        self.marks.push(MarkRecord { at, mark: *mark });
        let core = mark.core;
        if core >= self.num_cores {
            return; // malformed core id: nothing to attribute the clock to
        }
        self.clocks[core].tick(core);
        match mark.tag {
            MarkTag::SecureFire => {
                self.fire_clocks[core] = Some(self.clocks[core].clone());
                self.fire_times[core] = Some(at);
                self.sessions[core] = SessionPhase::Fired;
            }
            MarkTag::ScanBegin => {
                if let Some(open) = &self.open_windows[core] {
                    self.violations.push(Violation {
                        kind: ViolationKind::OverlappingScanWindows,
                        core,
                        at,
                        related_core: Some(core),
                        related_at: Some(open.begin),
                        detail: format!(
                            "scan.begin base={:#x} len={} while the window opened at \
                             t={}ns (base={:#x} len={}) is still open",
                            mark.a,
                            mark.b,
                            open.begin.as_nanos(),
                            open.base,
                            open.len
                        ),
                    });
                }
                self.open_windows[core] = Some(OpenWindow {
                    begin: at,
                    base: mark.a,
                    len: mark.b,
                });
                self.sessions[core] = SessionPhase::Scanning;
            }
            MarkTag::ScanEnd => {
                self.open_windows[core] = None;
                self.sessions[core] = SessionPhase::Scanned;
            }
            MarkTag::Publish => {
                self.publish_clocks[core] = Some(self.clocks[core].clone());
                self.publish_times[core] = Some(at);
                self.sessions[core] = SessionPhase::Published;
            }
            MarkTag::Detection => {
                let published = self.sessions[core] == SessionPhase::Published
                    && self.publish_clocks[core]
                        .as_ref()
                        .is_some_and(|p| p.leq(&self.clocks[core]));
                if !published {
                    self.violations.push(Violation {
                        kind: ViolationKind::DetectionBeforePublish,
                        core,
                        at,
                        related_core: self.fire_times[core].map(|_| core),
                        related_at: self.fire_times[core],
                        detail: format!(
                            "detection (alarms={}) with no publish in the session's \
                             causal past (phase {:?})",
                            mark.b, self.sessions[core]
                        ),
                    });
                }
            }
            MarkTag::AttackObserve => {
                // The observer learned of the watched core's freeze: the
                // watched core's fire happens-before this observation.
                let watched = mark.a as usize;
                if watched < self.num_cores {
                    if let Some(fire) = self.fire_clocks[watched].clone() {
                        self.clocks[core].merge(&fire);
                    }
                }
                self.observe_seq += 1;
                let seq = self.observe_seq;
                self.clocks[core].raise(self.num_cores, seq);
                let snapshot = self.clocks[core].clone();
                self.observe_channel.merge(&snapshot);
            }
            MarkTag::AttackInstall => {}
            MarkTag::RecoveryBegin => {
                // The rootkit reacted to the hide signal: every observation
                // so far happens-before this recovery.
                let channel = self.observe_channel.clone();
                self.clocks[core].merge(&channel);
            }
            MarkTag::AttackRestore => {
                let observed = self.clocks[core].get(self.num_cores) > 0;
                if !observed {
                    let inside: Vec<(usize, &OpenWindow)> = self
                        .open_windows
                        .iter()
                        .enumerate()
                        .filter_map(|(c, w)| w.as_ref().map(|w| (c, w)))
                        .collect();
                    if let Some((wcore, w)) = inside.first() {
                        self.violations.push(Violation {
                            kind: ViolationKind::AcausalRecovery,
                            core,
                            at,
                            related_core: Some(*wcore),
                            related_at: Some(w.begin),
                            detail: format!(
                                "attack.restore addr={:#x} inside the scan window open \
                                 since t={}ns with no attack.observe in its causal past",
                                mark.a,
                                w.begin.as_nanos()
                            ),
                        });
                    }
                }
            }
        }
    }

    fn report(&self) -> RaceReport {
        let mut mark_counts = BTreeMap::new();
        for m in &self.marks {
            *mark_counts
                .entry(m.mark.tag.as_str().to_string())
                .or_insert(0u64) += 1;
        }
        RaceReport {
            num_cores: self.num_cores,
            events: self.events,
            mark_counts,
            marks: self.marks.clone(),
            violations: self.violations.clone(),
        }
    }
}

/// The core a [`SysEvent`] is attributed to (`TaskWake` carries none).
fn event_core(event: &SysEvent) -> Option<usize> {
    match event {
        SysEvent::TickBoundary { core }
        | SysEvent::Dispatch { core }
        | SysEvent::TaskDone { core, .. }
        | SysEvent::SecureTimerFire { core, .. }
        | SysEvent::SecureDone { core } => Some(core.index()),
        SysEvent::TaskWake { .. } => None,
    }
}

/// Everything the detector saw, cloned out of the shared state: plain data,
/// safe to move across threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Cores the probe was built for.
    pub num_cores: usize,
    /// Engine events dispatched while the probe was installed.
    pub events: u64,
    /// Marks seen, keyed by tag name (name order, deterministic).
    pub mark_counts: BTreeMap<String, u64>,
    /// The full mark log in emission order (input to the invariant audit).
    pub marks: Vec<MarkRecord>,
    /// Detected violations, in detection order.
    pub violations: Vec<Violation>,
}

impl RaceReport {
    /// `true` when no happens-before violation was detected.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic one-line-per-violation rendering (the golden-fixture
    /// snapshots pin this format).
    pub fn render_violations(&self) -> String {
        if self.violations.is_empty() {
            return "no violations\n".to_string();
        }
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

/// The [`SimObserver`] half: install with
/// [`satin_system::System::set_sim_observer`].
#[derive(Debug)]
pub struct AnalyzeProbe {
    state: Rc<RefCell<Detector>>,
}

/// The caller-side handle onto the probe's findings.
#[derive(Debug, Clone)]
pub struct AnalyzeHandle {
    state: Rc<RefCell<Detector>>,
}

impl AnalyzeProbe {
    /// A probe for a `num_cores`-core machine plus the handle reading it.
    pub fn shared(num_cores: usize) -> (AnalyzeProbe, AnalyzeHandle) {
        let state = Rc::new(RefCell::new(Detector::new(num_cores)));
        (
            AnalyzeProbe {
                state: Rc::clone(&state),
            },
            AnalyzeHandle { state },
        )
    }
}

impl AnalyzeHandle {
    /// A snapshot of everything the detector has seen so far.
    pub fn report(&self) -> RaceReport {
        self.state.borrow().report()
    }

    /// Violations detected so far (without cloning the mark log).
    pub fn violation_count(&self) -> usize {
        self.state.borrow().violations.len()
    }
}

impl SimObserver<SysEvent> for AnalyzeProbe {
    fn on_dispatched(&mut self, _time: SimTime, _seq: u64, event: &SysEvent, _depth: usize) {
        self.state.borrow_mut().on_event(event);
    }

    fn on_mark(&mut self, at: SimTime, mark: &Mark) {
        self.state.borrow_mut().on_mark(at, mark);
    }
}

/// Builds a probe sized to `sys`, installs it as the machine's sim observer,
/// and returns the reading handle.
pub fn attach(sys: &mut satin_system::System) -> AnalyzeHandle {
    let (probe, handle) = AnalyzeProbe::shared(sys.num_cores());
    sys.set_sim_observer(Box::new(probe));
    handle
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(probe: &mut AnalyzeProbe, t_ns: u64, mark: Mark) {
        probe.on_mark(SimTime::from_nanos(t_ns), &mark);
    }

    fn session(probe: &mut AnalyzeProbe, core: usize, t_ns: u64, detect: bool) {
        feed(probe, t_ns, Mark::new(MarkTag::SecureFire, core));
        feed(
            probe,
            t_ns + 10,
            Mark::with_args(MarkTag::ScanBegin, core, 0x8000_0000, 4096),
        );
        feed(probe, t_ns + 1_000, Mark::new(MarkTag::ScanEnd, core));
        feed(
            probe,
            t_ns + 1_100,
            Mark::with_args(MarkTag::Publish, core, t_ns + 1_100, 0),
        );
        if detect {
            feed(
                probe,
                t_ns + 1_100,
                Mark::with_args(MarkTag::Detection, core, t_ns + 1_100, 1),
            );
        }
    }

    #[test]
    fn clean_session_has_no_violations() {
        let (mut probe, handle) = AnalyzeProbe::shared(2);
        session(&mut probe, 0, 1_000, true);
        session(&mut probe, 1, 10_000, false);
        let r = handle.report();
        assert!(r.is_clean(), "{}", r.render_violations());
        assert_eq!(r.mark_counts["secure.fire"], 2);
        assert_eq!(r.mark_counts["detection"], 1);
        assert_eq!(r.render_violations(), "no violations\n");
    }

    #[test]
    fn detection_without_publish_is_flagged() {
        let (mut probe, handle) = AnalyzeProbe::shared(2);
        feed(&mut probe, 100, Mark::new(MarkTag::SecureFire, 0));
        feed(
            &mut probe,
            110,
            Mark::with_args(MarkTag::ScanBegin, 0, 0, 64),
        );
        feed(&mut probe, 200, Mark::new(MarkTag::ScanEnd, 0));
        // Publish never arrives; the detection is acausal.
        feed(
            &mut probe,
            250,
            Mark::with_args(MarkTag::Detection, 0, 250, 1),
        );
        let r = handle.report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].kind, ViolationKind::DetectionBeforePublish);
        assert_eq!(r.violations[0].core, 0);
        assert_eq!(r.violations[0].at, SimTime::from_nanos(250));
    }

    #[test]
    fn overlapping_windows_are_flagged() {
        let (mut probe, handle) = AnalyzeProbe::shared(1);
        feed(&mut probe, 100, Mark::new(MarkTag::SecureFire, 0));
        feed(
            &mut probe,
            110,
            Mark::with_args(MarkTag::ScanBegin, 0, 0, 64),
        );
        // Second begin before the first window closed.
        feed(
            &mut probe,
            150,
            Mark::with_args(MarkTag::ScanBegin, 0, 64, 64),
        );
        let r = handle.report();
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!(v.kind, ViolationKind::OverlappingScanWindows);
        assert_eq!(v.related_at, Some(SimTime::from_nanos(110)));
    }

    #[test]
    fn acausal_restore_is_flagged_but_observed_restore_is_not() {
        // Acausal: restore inside an open window, no observe anywhere.
        let (mut probe, handle) = AnalyzeProbe::shared(2);
        feed(&mut probe, 100, Mark::new(MarkTag::SecureFire, 0));
        feed(
            &mut probe,
            110,
            Mark::with_args(MarkTag::ScanBegin, 0, 0, 1 << 20),
        );
        feed(
            &mut probe,
            500,
            Mark::with_args(MarkTag::AttackRestore, 1, 0xBAD, 0),
        );
        let r = handle.report();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].kind, ViolationKind::AcausalRecovery);

        // Causal: the same restore after an observation of the frozen core.
        let (mut probe, handle) = AnalyzeProbe::shared(2);
        feed(&mut probe, 100, Mark::new(MarkTag::SecureFire, 0));
        feed(
            &mut probe,
            110,
            Mark::with_args(MarkTag::ScanBegin, 0, 0, 1 << 20),
        );
        feed(
            &mut probe,
            300,
            Mark::with_args(MarkTag::AttackObserve, 1, 0, 0),
        );
        feed(&mut probe, 320, Mark::new(MarkTag::RecoveryBegin, 1));
        feed(
            &mut probe,
            500,
            Mark::with_args(MarkTag::AttackRestore, 1, 0xBAD, 0),
        );
        assert!(handle.report().is_clean());
    }

    #[test]
    fn recovery_on_helper_core_inherits_observation_through_channel() {
        // Observer on core 1, recovery claimed on core 2: the observation
        // channel must carry the edge across cores.
        let (mut probe, handle) = AnalyzeProbe::shared(3);
        feed(&mut probe, 100, Mark::new(MarkTag::SecureFire, 0));
        feed(
            &mut probe,
            110,
            Mark::with_args(MarkTag::ScanBegin, 0, 0, 1 << 20),
        );
        feed(
            &mut probe,
            300,
            Mark::with_args(MarkTag::AttackObserve, 1, 0, 0),
        );
        feed(&mut probe, 350, Mark::new(MarkTag::RecoveryBegin, 2));
        feed(
            &mut probe,
            900,
            Mark::with_args(MarkTag::AttackRestore, 2, 0xBAD, 0),
        );
        assert!(handle.report().is_clean());
    }

    #[test]
    fn event_core_attribution() {
        use satin_hw::CoreId;
        use satin_kernel::TaskId;
        assert_eq!(
            event_core(&SysEvent::Dispatch {
                core: CoreId::new(3)
            }),
            Some(3)
        );
        assert_eq!(
            event_core(&SysEvent::TaskWake {
                task: TaskId::new(0)
            }),
            None
        );
    }
}
