//! Host-domain timing: the harness profiling itself with a real clock.
//!
//! Everything in this module measures the *harness* — how long this machine
//! took to assemble, simulate, analyze, and export — never the simulation.
//! Sim-time lives in `satin_sim::SimTime` and the telemetry timelines; the
//! two must never mix (the two-clocks rule, DESIGN.md §14), which is why
//! this module's types carry `host`/`wall` in their field names and why the
//! only `Instant::now` calls in the workspace's non-stub library code are
//! the two explicitly allowed ones below.
//!
//! All output from these types goes to **stderr** in the `repro` binary:
//! stdout carries campaign results that `ci.sh` byte-compares across
//! `--jobs` counts, and host timings are different on every run.

use satin_telemetry::DurationHistogram;
use std::fmt::Write as _;
use std::time::Instant;

/// A monotonic host clock anchored at an epoch, cheap to copy into workers.
///
/// This is the sanctioned doorway to wall-clock time for observability
/// code: everything downstream works with `u64` nanoseconds since the
/// epoch, so the `Instant` never leaks into data structures.
#[derive(Debug, Clone, Copy)]
pub struct HostClock {
    epoch: Instant,
}

impl HostClock {
    /// Starts a clock at "now".
    pub fn start() -> Self {
        HostClock {
            // Harness self-profiling, never simulation input.
            epoch: Instant::now(), // lint:allow(wall-clock)
        }
    }

    /// Nanoseconds elapsed since the epoch (saturating at `u64::MAX`).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Formats host nanoseconds for humans: `850ns`, `3.2µs`, `14.7ms`, `2.31s`.
pub fn fmt_host_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Wall-clock phase timer for the `repro` pipeline
/// (assemble → simulate → analyze → export).
///
/// Phases are sequential: starting one ends the previous. The timer never
/// observes sim-time; it exists so a slow run can be blamed on the right
/// stage of the harness.
#[derive(Debug)]
pub struct PhaseTimer {
    clock: HostClock,
    done: Vec<(&'static str, u64)>,
    current: Option<(&'static str, u64)>,
}

impl PhaseTimer {
    /// Starts the timer (no phase active yet).
    pub fn start() -> Self {
        PhaseTimer {
            clock: HostClock::start(),
            done: Vec::new(),
            current: None,
        }
    }

    /// Ends the current phase (if any) and begins `name`.
    pub fn phase(&mut self, name: &'static str) {
        let now = self.clock.now_ns();
        self.close_current(now);
        self.current = Some((name, now));
    }

    /// Ends the current phase without starting a new one.
    pub fn stop(&mut self) {
        let now = self.clock.now_ns();
        self.close_current(now);
    }

    fn close_current(&mut self, now: u64) {
        if let Some((name, began)) = self.current.take() {
            self.done.push((name, now.saturating_sub(began)));
        }
    }

    /// Completed `(phase name, host ns)` pairs, in execution order.
    pub fn phases(&self) -> &[(&'static str, u64)] {
        &self.done
    }

    /// Total host nanoseconds across completed phases.
    pub fn total_ns(&self) -> u64 {
        self.done.iter().map(|(_, ns)| ns).sum()
    }

    /// One-line summary, e.g.
    /// `host-phases: assemble 1.2ms · simulate 2.31s · export 14.7ms (total 2.33s)`.
    pub fn render(&self) -> String {
        let mut out = String::from("host-phases:");
        if self.done.is_empty() {
            out.push_str(" (none)");
            return out;
        }
        for (i, (name, ns)) in self.done.iter().enumerate() {
            if i > 0 {
                out.push_str(" ·");
            }
            let _ = write!(out, " {name} {}", fmt_host_ns(*ns));
        }
        let _ = write!(out, " (total {})", fmt_host_ns(self.total_ns()));
        out
    }
}

/// One worker thread's share of a campaign, in host terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerUse {
    /// Cells this worker completed.
    pub cells: usize,
    /// Host nanoseconds the worker spent inside cells.
    pub busy_ns: u64,
}

/// Host-side summary of a campaign run: wall time, per-worker utilization,
/// and the cell-latency distribution (reusing the telemetry layer's
/// order-independent [`DurationHistogram`], here fed host nanoseconds).
///
/// Built by the live drain thread from [`crate::LiveEvent`]s; because the
/// live channel is lossy by design, `live_dropped` reports how many events
/// never made it — the *canonical* stream is unaffected either way.
#[derive(Debug, Clone, Default)]
pub struct HostReport {
    /// Wall-clock span of the campaign, first live event to last.
    pub wall_ns: u64,
    /// Cells observed finishing (ok + salvaged).
    pub cells: usize,
    /// Cells salvaged as failed.
    pub failed: usize,
    /// Retry events observed.
    pub retries: usize,
    /// Per-worker usage, indexed by worker id.
    pub workers: Vec<WorkerUse>,
    /// Host-time latency distribution across cells.
    pub cell_latency: DurationHistogram,
    /// Live events dropped by the bounded channel (progress-only loss).
    pub live_dropped: u64,
}

impl HostReport {
    /// Worker `w`'s busy fraction of the campaign wall time (0.0 when the
    /// wall span is empty).
    pub fn utilization(&self, w: usize) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.workers
            .get(w)
            .map_or(0.0, |u| u.busy_ns as f64 / self.wall_ns as f64)
    }

    /// Multi-line human summary for stderr.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "host-profile: {} cells in {} ({} failed, {} retries, {} live events dropped)",
            self.cells,
            fmt_host_ns(self.wall_ns),
            self.failed,
            self.retries,
            self.live_dropped
        );
        for (w, u) in self.workers.iter().enumerate() {
            let _ = writeln!(
                out,
                "  worker {w}: {} cells, busy {} ({:.0}% of wall)",
                u.cells,
                fmt_host_ns(u.busy_ns),
                self.utilization(w) * 100.0
            );
        }
        if !self.cell_latency.is_empty() {
            let _ = writeln!(out, "  cell latency (host): {}", self.cell_latency);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = HostClock::start();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn phases_accumulate_in_order() {
        let mut t = PhaseTimer::start();
        t.phase("assemble");
        t.phase("simulate");
        t.stop();
        t.stop(); // idempotent
        let names: Vec<_> = t.phases().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["assemble", "simulate"]);
        assert_eq!(t.total_ns(), t.phases().iter().map(|(_, ns)| ns).sum());
        let line = t.render();
        assert!(line.starts_with("host-phases: assemble "));
        assert!(line.contains("· simulate "));
        assert!(line.contains("(total "));
    }

    #[test]
    fn empty_timer_renders() {
        assert_eq!(PhaseTimer::start().render(), "host-phases: (none)");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_host_ns(850), "850ns");
        assert_eq!(fmt_host_ns(3_200), "3.2µs");
        assert_eq!(fmt_host_ns(14_700_000), "14.7ms");
        assert_eq!(fmt_host_ns(2_310_000_000), "2.31s");
    }

    #[test]
    fn utilization_and_render() {
        let mut r = HostReport {
            wall_ns: 1_000,
            cells: 3,
            failed: 1,
            retries: 2,
            workers: vec![
                WorkerUse {
                    cells: 2,
                    busy_ns: 500,
                },
                WorkerUse {
                    cells: 1,
                    busy_ns: 250,
                },
            ],
            ..HostReport::default()
        };
        r.cell_latency.record_nanos(100);
        assert!((r.utilization(0) - 0.5).abs() < 1e-12);
        assert!((r.utilization(1) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilization(9), 0.0);
        let text = r.render();
        assert!(text.contains("host-profile: 3 cells"));
        assert!(text.contains("worker 0: 2 cells"));
        assert!(text.contains("cell latency (host):"));
        assert_eq!(HostReport::default().utilization(0), 0.0);
    }
}
