#![warn(missing_docs)]
//! Campaign observability for the SATIN reproduction.
//!
//! The campaign runner used to be a black box between "start" and a final
//! report; this crate opens it up without compromising the workspace's
//! central promise — that every result is a pure function of its seed.
//! It does so by keeping two strictly separated domains:
//!
//! - the **sim domain**: the canonical [`ObsEvent`] stream — campaign and
//!   cell lifecycle (started, attempt, fault-armed, retried, salvaged,
//!   finished, worker hand-off). Every field is a pure function of
//!   `(cell, seed, attempt)`, so the merged stream written by
//!   `repro --events-out` is **byte-identical for any `--jobs` count** and
//!   golden snapshots can pin it;
//! - the **host domain**: wall-clock observations of the harness itself —
//!   which OS worker ran a cell, how long it took in real time, how busy
//!   each worker was. These ride on a lossy bounded channel as
//!   [`LiveEvent`] wrappers for the live `--progress` renderer and the
//!   [`HostReport`] utilization summary, and are *never* serialized into
//!   the canonical stream.
//!
//! The two-clocks rule (DESIGN.md §14): a sim-time field and a host-time
//! field never share a struct. [`ObsEvent`] is all sim-domain;
//! [`LiveEvent`], [`PhaseTimer`] and [`HostReport`] are all host-domain.
//!
//! The crate also carries the **bench trajectory** tooling: a dependency-free
//! [`json`] parser, a [`trajectory`] module that reads every committed
//! `BENCH_*.json` snapshot, renders per-group deltas between consecutive
//! snapshots, and gates CI on a >20% seeds/sec-model regression.

pub mod event;
pub mod host;
pub mod json;
pub mod progress;
pub mod stream;
pub mod trajectory;

pub use event::{ObsEvent, EVENT_SCHEMA_VERSION};
pub use host::{HostReport, PhaseTimer};
pub use progress::ProgressRenderer;
pub use stream::{CampaignObs, CellEvents, EventStream, LiveEvent, LiveSink};
pub use trajectory::{GateVerdict, Trajectory, TrajectoryPoint};
