//! The canonical campaign event vocabulary and its JSONL wire format.
//!
//! Every [`ObsEvent`] carries **sim-domain content only**: cell indices,
//! seeds, attempt counts, and static labels — all pure functions of the
//! campaign's inputs. No wall-clock timestamps, no OS worker ids, no host
//! metadata. That restriction (the two-clocks rule, DESIGN.md §14) is what
//! makes the merged stream byte-identical for any `--jobs` count: the
//! stream describes *what the campaign did*, never *how fast this machine
//! happened to run it*. Host-side observations live in
//! [`crate::stream::LiveEvent`] and [`crate::host`], and are never
//! serialized here.
//!
//! The wire format is one JSON object per line with a fixed key order:
//!
//! ```text
//! {"v":1,"seq":12,"event":"cell.retried","cell":1,"seed":42,"attempt":1,"error":"..."}
//! ```
//!
//! `v` is [`EVENT_SCHEMA_VERSION`]; `seq` is assigned at serialization time
//! over the fully merged stream (gapless, strictly increasing from 0) so a
//! consumer can detect truncation. Keys appear in schema order — `v`,
//! `seq`, `event`, then the event-specific fields in declaration order —
//! so the output is stable enough for golden snapshots and byte `cmp`.

use satin_telemetry::json_escape;
use std::fmt::Write as _;

/// Version stamped into every event line as `"v"`. Bump when a field is
/// renamed, removed, or reordered; adding a new event kind is backward
/// compatible and does not require a bump.
pub const EVENT_SCHEMA_VERSION: u32 = 1;

/// One campaign lifecycle event, sim-domain only.
///
/// Variants mirror the runner's life of a campaign cell: the campaign
/// starts, each cell is handed to a worker, attempted (possibly several
/// times under a fault plan, with faults armed per attempt), and either
/// finishes or is salvaged as a `Failed` row after retries are exhausted;
/// finally the campaign closes with aggregate counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsEvent {
    /// The campaign began: a human label and how many cells it will run.
    CampaignStarted {
        /// Campaign label, e.g. `"faults/smoke"` or `"grid/builtins"`.
        label: String,
        /// Total number of cells the campaign will execute.
        cells: usize,
    },
    /// A cell was pulled off the shared work queue.
    ///
    /// Deliberately does **not** say *which* worker took it — that is a
    /// scheduling accident, reported only on the live channel.
    WorkerAssigned {
        /// Cell index in campaign input order.
        cell: usize,
        /// The seed driving this cell.
        seed: u64,
    },
    /// A cell began executing.
    CellStarted {
        /// Cell index in campaign input order.
        cell: usize,
        /// The seed driving this cell.
        seed: u64,
        /// Cell identity label, e.g. `"juno-r1/s42"`.
        label: String,
    },
    /// One attempt at a cell began (1-based; retries increment it).
    CellAttempt {
        /// Cell index in campaign input order.
        cell: usize,
        /// The seed driving this cell.
        seed: u64,
        /// Attempt number, starting at 1.
        attempt: u32,
    },
    /// A fault from the active plan is armed for this attempt.
    FaultArmed {
        /// Cell index in campaign input order.
        cell: usize,
        /// The seed driving this cell.
        seed: u64,
        /// Canonical fault counter name, e.g. `"fault.dropped_pub"`.
        fault: String,
    },
    /// An attempt failed and the cell will be retried.
    CellRetried {
        /// Cell index in campaign input order.
        cell: usize,
        /// The seed driving this cell.
        seed: u64,
        /// The attempt number that failed.
        attempt: u32,
        /// The error that triggered the retry.
        error: String,
    },
    /// Retries were exhausted; the cell is salvaged as a `Failed` row.
    CellSalvaged {
        /// Cell index in campaign input order.
        cell: usize,
        /// The seed driving this cell.
        seed: u64,
        /// Total attempts consumed.
        attempts: u32,
        /// The final error.
        error: String,
    },
    /// The cell completed successfully.
    CellFinished {
        /// Cell index in campaign input order.
        cell: usize,
        /// The seed driving this cell.
        seed: u64,
        /// Total attempts consumed (1 if it succeeded first try).
        attempts: u32,
    },
    /// The campaign closed with aggregate counts.
    CampaignFinished {
        /// Total cells executed.
        cells: usize,
        /// Cells that completed successfully.
        ok: usize,
        /// Cells salvaged as failed.
        failed: usize,
        /// Total retry events across all cells.
        retries: usize,
    },
}

impl ObsEvent {
    /// The event's wire name (`"event"` field value).
    pub fn name(&self) -> &'static str {
        match self {
            ObsEvent::CampaignStarted { .. } => "campaign.started",
            ObsEvent::WorkerAssigned { .. } => "worker.assigned",
            ObsEvent::CellStarted { .. } => "cell.started",
            ObsEvent::CellAttempt { .. } => "cell.attempt",
            ObsEvent::FaultArmed { .. } => "cell.fault_armed",
            ObsEvent::CellRetried { .. } => "cell.retried",
            ObsEvent::CellSalvaged { .. } => "cell.salvaged",
            ObsEvent::CellFinished { .. } => "cell.finished",
            ObsEvent::CampaignFinished { .. } => "campaign.finished",
        }
    }

    /// The cell index this event concerns, if it is cell-scoped.
    pub fn cell(&self) -> Option<usize> {
        match self {
            ObsEvent::WorkerAssigned { cell, .. }
            | ObsEvent::CellStarted { cell, .. }
            | ObsEvent::CellAttempt { cell, .. }
            | ObsEvent::FaultArmed { cell, .. }
            | ObsEvent::CellRetried { cell, .. }
            | ObsEvent::CellSalvaged { cell, .. }
            | ObsEvent::CellFinished { cell, .. } => Some(*cell),
            ObsEvent::CampaignStarted { .. } | ObsEvent::CampaignFinished { .. } => None,
        }
    }

    /// Renders the event as one JSONL line (no trailing newline) with the
    /// given stream-global sequence number.
    ///
    /// Key order is fixed (`v`, `seq`, `event`, then event fields in
    /// declaration order) so identical streams serialize byte-identically.
    pub fn jsonl_line(&self, seq: u64) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            r#"{{"v":{EVENT_SCHEMA_VERSION},"seq":{seq},"event":"{}""#,
            self.name()
        );
        match self {
            ObsEvent::CampaignStarted { label, cells } => {
                let _ = write!(out, r#","label":"{}","cells":{cells}"#, json_escape(label));
            }
            ObsEvent::WorkerAssigned { cell, seed } => {
                let _ = write!(out, r#","cell":{cell},"seed":{seed}"#);
            }
            ObsEvent::CellStarted { cell, seed, label } => {
                let _ = write!(
                    out,
                    r#","cell":{cell},"seed":{seed},"label":"{}""#,
                    json_escape(label)
                );
            }
            ObsEvent::CellAttempt {
                cell,
                seed,
                attempt,
            } => {
                let _ = write!(out, r#","cell":{cell},"seed":{seed},"attempt":{attempt}"#);
            }
            ObsEvent::FaultArmed { cell, seed, fault } => {
                let _ = write!(
                    out,
                    r#","cell":{cell},"seed":{seed},"fault":"{}""#,
                    json_escape(fault)
                );
            }
            ObsEvent::CellRetried {
                cell,
                seed,
                attempt,
                error,
            } => {
                let _ = write!(
                    out,
                    r#","cell":{cell},"seed":{seed},"attempt":{attempt},"error":"{}""#,
                    json_escape(error)
                );
            }
            ObsEvent::CellSalvaged {
                cell,
                seed,
                attempts,
                error,
            } => {
                let _ = write!(
                    out,
                    r#","cell":{cell},"seed":{seed},"attempts":{attempts},"error":"{}""#,
                    json_escape(error)
                );
            }
            ObsEvent::CellFinished {
                cell,
                seed,
                attempts,
            } => {
                let _ = write!(out, r#","cell":{cell},"seed":{seed},"attempts":{attempts}"#);
            }
            ObsEvent::CampaignFinished {
                cells,
                ok,
                failed,
                retries,
            } => {
                let _ = write!(
                    out,
                    r#","cells":{cells},"ok":{ok},"failed":{failed},"retries":{retries}"#
                );
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape_and_key_order() {
        let e = ObsEvent::CampaignStarted {
            label: "faults/smoke".into(),
            cells: 3,
        };
        assert_eq!(
            e.jsonl_line(0),
            r#"{"v":1,"seq":0,"event":"campaign.started","label":"faults/smoke","cells":3}"#
        );
        let e = ObsEvent::CellRetried {
            cell: 1,
            seed: 42,
            attempt: 1,
            error: "worker abort".into(),
        };
        assert_eq!(
            e.jsonl_line(7),
            r#"{"v":1,"seq":7,"event":"cell.retried","cell":1,"seed":42,"attempt":1,"error":"worker abort"}"#
        );
    }

    #[test]
    fn labels_are_escaped() {
        let e = ObsEvent::CellStarted {
            cell: 0,
            seed: 7,
            label: "a\"b\n".into(),
        };
        assert!(e.jsonl_line(0).contains(r#""label":"a\"b\n""#));
    }

    #[test]
    fn names_are_stable() {
        let samples = [
            ObsEvent::CampaignStarted {
                label: String::new(),
                cells: 0,
            },
            ObsEvent::WorkerAssigned { cell: 0, seed: 0 },
            ObsEvent::CellStarted {
                cell: 0,
                seed: 0,
                label: String::new(),
            },
            ObsEvent::CellAttempt {
                cell: 0,
                seed: 0,
                attempt: 1,
            },
            ObsEvent::FaultArmed {
                cell: 0,
                seed: 0,
                fault: String::new(),
            },
            ObsEvent::CellRetried {
                cell: 0,
                seed: 0,
                attempt: 1,
                error: String::new(),
            },
            ObsEvent::CellSalvaged {
                cell: 0,
                seed: 0,
                attempts: 2,
                error: String::new(),
            },
            ObsEvent::CellFinished {
                cell: 0,
                seed: 0,
                attempts: 1,
            },
            ObsEvent::CampaignFinished {
                cells: 0,
                ok: 0,
                failed: 0,
                retries: 0,
            },
        ];
        let names: Vec<_> = samples.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec![
                "campaign.started",
                "worker.assigned",
                "cell.started",
                "cell.attempt",
                "cell.fault_armed",
                "cell.retried",
                "cell.salvaged",
                "cell.finished",
                "campaign.finished",
            ]
        );
    }

    #[test]
    fn cell_scoping() {
        assert_eq!(
            ObsEvent::CampaignFinished {
                cells: 1,
                ok: 1,
                failed: 0,
                retries: 0
            }
            .cell(),
            None
        );
        assert_eq!(
            ObsEvent::WorkerAssigned { cell: 3, seed: 9 }.cell(),
            Some(3)
        );
    }
}
