//! Canonical event assembly and the lossy live channel.
//!
//! Two paths carry every [`ObsEvent`] out of a campaign, with opposite
//! guarantees:
//!
//! 1. **Canonical** — each cell buffers its own events deterministically in
//!    a [`CellEvents`] log; the runner returns the logs *in input order*
//!    with the results, and [`EventStream`] concatenates
//!    `campaign.started` + cell logs + `campaign.finished` and assigns
//!    gapless sequence numbers at serialization. Nothing on this path
//!    depends on scheduling, so the JSONL is byte-identical for any
//!    `--jobs` count. Completeness guaranteed, liveness not (the log is
//!    only visible when the cell returns).
//! 2. **Live** — the same events, wrapped in a host-domain [`LiveEvent`]
//!    (worker id + host timestamp), are `try_send`-pushed onto a bounded
//!    channel for the progress renderer. Liveness guaranteed (a send never
//!    blocks a worker), completeness not: when the channel is full the
//!    event is counted as dropped and the renderer just misses one frame.
//!
//! The canonical stream must therefore never be reconstructed from the
//! live channel, and the live channel must never be awaited by a worker.

use crate::event::ObsEvent;
use crate::host::HostClock;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// A host-domain wrapper around one event for the live channel: *which*
/// worker saw it and *when* on the host clock. Never serialized into the
/// canonical stream (two-clocks rule, DESIGN.md §14).
#[derive(Debug, Clone)]
pub struct LiveEvent {
    /// Host nanoseconds since the campaign observer's epoch.
    pub host_ns: u64,
    /// The OS worker that emitted the event; `None` for campaign-scoped
    /// events emitted outside any worker.
    pub worker: Option<usize>,
    /// The sim-domain event itself.
    pub event: ObsEvent,
}

/// The sending half of the bounded live channel. Cloned into every worker;
/// a full channel drops the event (counted) rather than blocking.
#[derive(Debug, Clone)]
pub struct LiveSink {
    tx: mpsc::SyncSender<LiveEvent>,
    dropped: Arc<AtomicU64>,
}

impl LiveSink {
    /// A bounded live channel with room for `capacity` in-flight events.
    pub fn bounded(capacity: usize) -> (LiveSink, mpsc::Receiver<LiveEvent>) {
        let (tx, rx) = mpsc::sync_channel(capacity.max(1));
        (
            LiveSink {
                tx,
                dropped: Arc::new(AtomicU64::new(0)),
            },
            rx,
        )
    }

    /// Non-blocking send; a full or disconnected channel counts a drop.
    pub fn send(&self, ev: LiveEvent) {
        if self.tx.try_send(ev).is_err() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events dropped so far (progress-only loss; the canonical stream is
    /// unaffected).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Shared campaign observer handed (by reference) to every worker.
///
/// Holds the campaign label, the host clock epoch, and — optionally — the
/// live sink. All methods take `&self`; the per-cell mutable state lives in
/// the [`CellEvents`] values it mints.
#[derive(Debug)]
pub struct CampaignObs {
    label: String,
    clock: HostClock,
    live: Option<LiveSink>,
}

impl CampaignObs {
    /// An observer with no live channel: canonical stream only.
    pub fn new(label: &str) -> Self {
        CampaignObs {
            label: label.to_string(),
            clock: HostClock::start(),
            live: None,
        }
    }

    /// An observer that also feeds a bounded live channel; hand the
    /// receiver to [`crate::ProgressRenderer`].
    pub fn with_live(label: &str, capacity: usize) -> (Self, mpsc::Receiver<LiveEvent>) {
        let (sink, rx) = LiveSink::bounded(capacity);
        (
            CampaignObs {
                label: label.to_string(),
                clock: HostClock::start(),
                live: Some(sink),
            },
            rx,
        )
    }

    /// The campaign label events are tagged with.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Pushes a campaign-scoped event onto the live channel (no-op without
    /// one). The canonical copy is the caller's to place in its stream.
    pub fn live_send(&self, worker: Option<usize>, event: &ObsEvent) {
        if let Some(sink) = &self.live {
            sink.send(LiveEvent {
                host_ns: self.clock.now_ns(),
                worker,
                event: event.clone(),
            });
        }
    }

    /// Live events dropped so far (0 without a live channel).
    pub fn live_dropped(&self) -> u64 {
        self.live.as_ref().map_or(0, LiveSink::dropped)
    }

    /// Begins a cell log on worker `worker`, emitting `worker.assigned`.
    pub fn begin_cell(&self, worker: usize, cell: usize, seed: u64) -> CellEvents {
        let mut log = CellEvents {
            cell,
            seed,
            worker,
            events: Vec::new(),
            live: self.live.clone(),
            clock: self.clock,
        };
        log.emit(ObsEvent::WorkerAssigned { cell, seed });
        log
    }
}

/// One cell's deterministic event log, built inside the worker that ran it.
///
/// Everything pushed here is a pure function of `(cell, seed, attempt)`;
/// the worker id and clock are used **only** to decorate the live copies.
#[derive(Debug)]
pub struct CellEvents {
    cell: usize,
    seed: u64,
    worker: usize,
    events: Vec<ObsEvent>,
    live: Option<LiveSink>,
    clock: HostClock,
}

impl CellEvents {
    /// The cell index this log belongs to.
    pub fn cell(&self) -> usize {
        self.cell
    }

    /// The seed driving this cell.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Appends `event` to the canonical log and mirrors it onto the live
    /// channel.
    pub fn emit(&mut self, event: ObsEvent) {
        if let Some(sink) = &self.live {
            sink.send(LiveEvent {
                host_ns: self.clock.now_ns(),
                worker: Some(self.worker),
                event: event.clone(),
            });
        }
        self.events.push(event);
    }

    /// Consumes the log, yielding the canonical events in emission order.
    pub fn into_events(self) -> Vec<ObsEvent> {
        self.events
    }
}

/// The merged canonical stream of one or more campaigns.
///
/// Events are appended in canonical order (campaign start, cell logs in
/// input order, campaign finish — possibly repeated for multi-campaign
/// runs); sequence numbers exist only at serialization time, assigned
/// `0..n` over the whole stream so they are gapless and strictly
/// increasing by construction.
#[derive(Debug, Default)]
pub struct EventStream {
    events: Vec<ObsEvent>,
}

impl EventStream {
    /// An empty stream.
    pub fn new() -> Self {
        EventStream::default()
    }

    /// Appends one event.
    pub fn push(&mut self, event: ObsEvent) {
        self.events.push(event);
    }

    /// Appends a batch of cell logs **in the order given** — callers must
    /// pass them in campaign input order to keep the stream jobs-invariant.
    pub fn extend_cells(&mut self, logs: Vec<Vec<ObsEvent>>) {
        for log in logs {
            self.events.extend(log);
        }
    }

    /// The events, in stream order.
    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the stream as JSONL (one event per line, trailing
    /// newline), assigning gapless sequence numbers `0..n`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for (seq, e) in self.events.iter().enumerate() {
            let _ = writeln!(out, "{}", e.jsonl_line(seq as u64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use proptest::prelude::*;

    /// Uniform draw over every event kind, with quote/newline-bearing
    /// labels to stress the escaper.
    struct ArbEvent;

    impl Strategy for ArbEvent {
        type Value = ObsEvent;
        fn sample(&self, rng: &mut TestRng) -> ObsEvent {
            let cell = rng.below(100) as usize;
            let seed = rng.next_u64();
            let attempt = rng.below(9) as u32 + 1;
            let label = format!("s{}\"\n{}", seed % 10, cell);
            match rng.below(9) {
                0 => ObsEvent::CampaignStarted { label, cells: cell },
                1 => ObsEvent::WorkerAssigned { cell, seed },
                2 => ObsEvent::CellStarted { cell, seed, label },
                3 => ObsEvent::CellAttempt {
                    cell,
                    seed,
                    attempt,
                },
                4 => ObsEvent::FaultArmed {
                    cell,
                    seed,
                    fault: "fault.abort".into(),
                },
                5 => ObsEvent::CellRetried {
                    cell,
                    seed,
                    attempt,
                    error: label,
                },
                6 => ObsEvent::CellSalvaged {
                    cell,
                    seed,
                    attempts: attempt,
                    error: label,
                },
                7 => ObsEvent::CellFinished {
                    cell,
                    seed,
                    attempts: attempt,
                },
                _ => ObsEvent::CampaignFinished {
                    cells: cell,
                    ok: cell / 2,
                    failed: cell - cell / 2,
                    retries: attempt as usize,
                },
            }
        }
    }

    proptest! {
        /// Serialized sequence numbers are gapless and strictly increasing
        /// from 0 for ANY event mix — the truncation-detection guarantee
        /// `--events-out` consumers rely on.
        #[test]
        fn prop_seq_gapless_strictly_increasing(
            events in collection::vec(ArbEvent, 0..64)
        ) {
            let mut s = EventStream::new();
            for e in events {
                s.push(e);
            }
            let jsonl = s.to_jsonl();
            let mut expected = 0u64;
            let mut prev: Option<u64> = None;
            for line in jsonl.lines() {
                let doc = Json::parse(line).expect("every line is a JSON object");
                let seq = doc.get("seq").and_then(Json::as_u64).expect("seq field");
                prop_assert_eq!(seq, expected, "gapless from zero");
                if let Some(p) = prev {
                    prop_assert!(seq > p, "strictly increasing");
                }
                prop_assert_eq!(
                    doc.get("v").and_then(Json::as_u64),
                    Some(u64::from(crate::EVENT_SCHEMA_VERSION))
                );
                prev = Some(seq);
                expected += 1;
            }
            prop_assert_eq!(expected as usize, s.len());
        }
    }

    #[test]
    fn canonical_log_ignores_live_channel_loss() {
        let (obs, rx) = CampaignObs::with_live("t", 1);
        let mut log = obs.begin_cell(0, 0, 7);
        for a in 1..=5 {
            log.emit(ObsEvent::CellAttempt {
                cell: 0,
                seed: 7,
                attempt: a,
            });
        }
        // Capacity-1 channel with no reader: everything past the first
        // event was dropped live, but the canonical log is complete.
        assert!(obs.live_dropped() >= 4);
        assert_eq!(log.into_events().len(), 6); // assigned + 5 attempts
        drop(rx);
        // After the receiver is gone, sends count as drops, not panics.
        obs.live_send(
            None,
            &ObsEvent::CampaignFinished {
                cells: 1,
                ok: 1,
                failed: 0,
                retries: 0,
            },
        );
    }

    #[test]
    fn live_events_carry_worker_and_host_time() {
        let (obs, rx) = CampaignObs::with_live("t", 16);
        let mut log = obs.begin_cell(3, 1, 42);
        log.emit(ObsEvent::CellFinished {
            cell: 1,
            seed: 42,
            attempts: 1,
        });
        drop(log);
        drop(obs);
        let got: Vec<LiveEvent> = rx.iter().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].worker, Some(3));
        assert_eq!(got[0].event.name(), "worker.assigned");
        assert_eq!(got[1].event.name(), "cell.finished");
        assert!(got[1].host_ns >= got[0].host_ns);
    }

    #[test]
    fn stream_seq_is_gapless_from_zero() {
        let mut s = EventStream::new();
        s.push(ObsEvent::CampaignStarted {
            label: "t".into(),
            cells: 2,
        });
        s.extend_cells(vec![
            vec![ObsEvent::WorkerAssigned { cell: 0, seed: 7 }],
            vec![ObsEvent::WorkerAssigned { cell: 1, seed: 9 }],
        ]);
        s.push(ObsEvent::CampaignFinished {
            cells: 2,
            ok: 2,
            failed: 0,
            retries: 0,
        });
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        let jsonl = s.to_jsonl();
        for (i, line) in jsonl.lines().enumerate() {
            assert!(line.contains(&format!("\"seq\":{i},")));
        }
        assert!(jsonl.ends_with('\n'));
    }

    #[test]
    fn observer_without_live_channel_is_silent() {
        let obs = CampaignObs::new("plain");
        assert_eq!(obs.label(), "plain");
        assert_eq!(obs.live_dropped(), 0);
        let mut log = obs.begin_cell(0, 0, 1);
        log.emit(ObsEvent::CellFinished {
            cell: 0,
            seed: 1,
            attempts: 1,
        });
        assert_eq!(log.cell(), 0);
        assert_eq!(log.seed(), 1);
        assert_eq!(log.into_events().len(), 2);
    }
}
