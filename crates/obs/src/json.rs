//! A dependency-free JSON reader for the trajectory tool.
//!
//! The workspace hand-rolls all JSON *writers* (telemetry exporters,
//! `--metrics-json`, `BENCH_*.json`); the trajectory gate is the first
//! thing that must *read* JSON back, and pulling in serde is off the table
//! (no new dependencies). This is a small recursive-descent parser, enough
//! for the machine-written documents we consume: objects, arrays, strings
//! with the common escapes, numbers, booleans, null.
//!
//! Objects preserve key order as `Vec<(String, Json)>` — deliberately not a
//! hash map (the satin-lint `unordered-iter` rule bans those for a reason:
//! everything downstream of this parser ends up in deterministic reports).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has one number type; we keep `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object member lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and exactly one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the document where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.msg)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not handled; the writers
                            // in this workspace never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_snapshot_shape() {
        let doc = r#"{
            "id": "BENCH_0006", "schema": 1, "quick": false,
            "entries": [
                {"group": "queue", "name": "wheel_churn", "ns_per_unit": 79.28}
            ],
            "seeds_per_sec": {"speedup": 17.73}
        }"#;
        let v = Json::parse(doc).expect("parse");
        assert_eq!(v.get("id").and_then(Json::as_str), Some("BENCH_0006"));
        assert_eq!(v.get("schema").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("quick").and_then(Json::as_bool), Some(false));
        let entries = v.get("entries").and_then(Json::as_array).expect("entries");
        assert_eq!(
            entries[0].get("ns_per_unit").and_then(Json::as_f64),
            Some(79.28)
        );
        assert_eq!(
            v.get("seeds_per_sec")
                .and_then(|s| s.get("speedup"))
                .and_then(Json::as_f64),
            Some(17.73)
        );
    }

    #[test]
    fn scalars_and_escapes() {
        assert_eq!(Json::parse("null"), Ok(Json::Null));
        assert_eq!(Json::parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(Json::parse("-12.5e2"), Ok(Json::Num(-1250.0)));
        assert_eq!(Json::parse(r#""a\"b\nA""#), Ok(Json::Str("a\"b\nA".into())));
        assert_eq!(Json::parse(r#""héllo""#), Ok(Json::Str("héllo".into())));
    }

    #[test]
    fn object_preserves_key_order() {
        let v = Json::parse(r#"{"z":1,"a":2,"z":3}"#).expect("parse");
        match v {
            Json::Obj(members) => {
                let keys: Vec<_> = members.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["z", "a", "z"]);
                // get() returns the first match.
                assert_eq!(
                    Json::Obj(members.clone()).get("z").and_then(Json::as_u64),
                    Some(1)
                );
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            "tru",
            "1 2",
            r#""unterminated"#,
            "{,}",
            "[1,]",
        ] {
            let e = Json::parse(bad).expect_err(bad);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn u64_edges() {
        assert_eq!(Json::parse("3.5").ok().and_then(|v| v.as_u64()), None);
        assert_eq!(Json::parse("-1").ok().and_then(|v| v.as_u64()), None);
        assert_eq!(Json::parse("42").ok().and_then(|v| v.as_u64()), Some(42));
    }
}
