//! The bench trajectory: every committed `BENCH_*.json`, in order, with a
//! delta table and a regression gate.
//!
//! `crates/bench/src/perf.rs` writes one snapshot per optimization PR
//! (`BENCH_0006`, `BENCH_0007`, ...). Alone, each snapshot is a point; the
//! trajectory is the line through them, and the gate is what stops the next
//! PR from quietly giving back the seeds/sec win recorded by the last one.
//!
//! Two gating rules, applied to the latest snapshot against its
//! predecessor:
//!
//! - the **speedup ratio** (`seeds_per_sec.speedup`, current vs baseline
//!   cost model *on the same machine*) may not regress by more than the
//!   tolerance — being a ratio, it transfers across machines;
//! - the absolute **current_model seeds/sec** is additionally gated, but
//!   only when both snapshots carry the same host fingerprint (the rustc
//!   version string recorded since schema 2) — comparing absolute
//!   nanoseconds measured on different machines proves nothing.

use crate::json::Json;
use std::fmt::Write as _;

/// One benchmark row within a snapshot: `group/name`, its unit, and the
/// measured cost.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Stable row key, `"group/name"`.
    pub key: String,
    /// Work unit (`"op"`, `"byte"`, `"seed"`).
    pub unit: String,
    /// Median cost per unit, nanoseconds.
    pub ns_per_unit: f64,
}

/// One parsed `BENCH_*.json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// Snapshot id (`"BENCH_0006"`).
    pub id: String,
    /// Snapshot schema version.
    pub schema: u64,
    /// `true` if recorded in quick mode (not gate-worthy).
    pub quick: bool,
    /// Host fingerprint — the rustc version string — recorded since
    /// schema 2; `None` for older snapshots.
    pub host: Option<String>,
    /// Total bench wall-clock on the recording host, ns (schema ≥ 2).
    pub wall_ns: Option<u64>,
    /// Per-benchmark rows, in snapshot order.
    pub rows: Vec<BenchRow>,
    /// Modeled baseline campaign throughput, seeds/sec.
    pub baseline_model: f64,
    /// Modeled current campaign throughput, seeds/sec.
    pub current_model: f64,
    /// `current_model / baseline_model`, machine-normalized.
    pub speedup: f64,
}

impl TrajectoryPoint {
    /// Parses one snapshot document. `source` names the file for error
    /// messages.
    pub fn from_json_text(source: &str, text: &str) -> Result<TrajectoryPoint, String> {
        let doc = Json::parse(text).map_err(|e| format!("{source}: {e}"))?;
        let need = |field: &str| format!("{source}: missing or mistyped `{field}`");
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| need("id"))?
            .to_string();
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| need("schema"))?;
        let quick = doc
            .get("quick")
            .and_then(Json::as_bool)
            .ok_or_else(|| need("quick"))?;
        let host = doc
            .get("host")
            .and_then(|h| h.get("rustc"))
            .and_then(Json::as_str)
            .map(str::to_string);
        let wall_ns = doc
            .get("host")
            .and_then(|h| h.get("wall_ns"))
            .and_then(Json::as_u64);
        let mut rows = Vec::new();
        for e in doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| need("entries"))?
        {
            let group = e
                .get("group")
                .and_then(Json::as_str)
                .ok_or_else(|| need("entries[].group"))?;
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| need("entries[].name"))?;
            rows.push(BenchRow {
                key: format!("{group}/{name}"),
                unit: e
                    .get("unit")
                    .and_then(Json::as_str)
                    .unwrap_or("unit")
                    .to_string(),
                ns_per_unit: e
                    .get("ns_per_unit")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| need("entries[].ns_per_unit"))?,
            });
        }
        let sps = doc
            .get("seeds_per_sec")
            .ok_or_else(|| need("seeds_per_sec"))?;
        let sps_field = |field: &str| {
            sps.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{source}: missing or mistyped `seeds_per_sec.{field}`"))
        };
        Ok(TrajectoryPoint {
            id,
            schema,
            quick,
            host,
            wall_ns,
            rows,
            baseline_model: sps_field("baseline_model")?,
            current_model: sps_field("current_model")?,
            speedup: sps_field("speedup")?,
        })
    }

    fn row(&self, key: &str) -> Option<&BenchRow> {
        self.rows.iter().find(|r| r.key == key)
    }
}

/// The gate's decision about the latest snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum GateVerdict {
    /// Fewer than two comparable snapshots: nothing to regress against.
    SinglePoint,
    /// Within tolerance; the detail names the comparison made.
    Pass {
        /// Human summary of the comparison.
        detail: String,
    },
    /// Regression beyond tolerance; the detail names the offending metric.
    Fail {
        /// Human summary of the regression.
        detail: String,
    },
}

impl GateVerdict {
    /// `true` for [`GateVerdict::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self, GateVerdict::Fail { .. })
    }
}

/// An ordered sequence of snapshots.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    /// Snapshots, sorted by id.
    pub points: Vec<TrajectoryPoint>,
}

impl Trajectory {
    /// Parses `(source name, document text)` pairs and sorts by snapshot
    /// id (ids are zero-padded, so lexicographic order is history order).
    pub fn from_texts(files: &[(String, String)]) -> Result<Trajectory, String> {
        let mut points = Vec::with_capacity(files.len());
        for (source, text) in files {
            points.push(TrajectoryPoint::from_json_text(source, text)?);
        }
        points.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(Trajectory { points })
    }

    /// The latest and previous snapshots, when there are at least two.
    fn latest_pair(&self) -> Option<(&TrajectoryPoint, &TrajectoryPoint)> {
        match self.points.as_slice() {
            [.., prev, cur] => Some((prev, cur)),
            _ => None,
        }
    }

    /// Renders the trajectory: a speedup history line, then a per-row delta
    /// table of the latest snapshot against its predecessor.
    pub fn delta_table(&self) -> String {
        let mut out = String::new();
        match self.points.as_slice() {
            [] => {
                let _ = writeln!(out, "bench trajectory: no snapshots found");
                return out;
            }
            [only] => {
                let _ = writeln!(
                    out,
                    "bench trajectory: 1 snapshot ({}) — speedup {:.2}x, nothing to compare yet",
                    only.id, only.speedup
                );
                return out;
            }
            _ => {}
        }
        let _ = write!(out, "bench trajectory: {} snapshots —", self.points.len());
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i == 0 { ' ' } else { '→' };
            let _ = write!(out, "{sep}{} {:.2}x ", p.id, p.speedup);
        }
        out.push('\n');
        if let Some((prev, cur)) = self.latest_pair() {
            let _ = writeln!(
                out,
                "{:<34} {:>14} {:>14} {:>9}",
                "metric", prev.id, cur.id, "delta"
            );
            for row in &cur.rows {
                let label = format!("{} ns/{}", row.key, row.unit);
                match prev.row(&row.key) {
                    Some(p) => {
                        let _ = writeln!(
                            out,
                            "{:<34} {:>14.4} {:>14.4} {:>9}",
                            label,
                            p.ns_per_unit,
                            row.ns_per_unit,
                            pct_delta(p.ns_per_unit, row.ns_per_unit)
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "{:<34} {:>14} {:>14.4} {:>9}",
                            label, "-", row.ns_per_unit, "new"
                        );
                    }
                }
            }
            for (label, pv, cv) in [
                (
                    "seeds/sec baseline_model",
                    prev.baseline_model,
                    cur.baseline_model,
                ),
                (
                    "seeds/sec current_model",
                    prev.current_model,
                    cur.current_model,
                ),
                ("speedup (current/baseline)", prev.speedup, cur.speedup),
            ] {
                let _ = writeln!(
                    out,
                    "{label:<34} {pv:>14.2} {cv:>14.2} {:>9}",
                    pct_delta(pv, cv)
                );
            }
            let hosts_comparable = match (&prev.host, &cur.host) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            };
            if !hosts_comparable {
                let _ = writeln!(
                    out,
                    "note: host fingerprints differ or are unrecorded — absolute \
                     seeds/sec not gated, speedup ratio only"
                );
            }
        }
        out
    }

    /// Gates the latest snapshot against its predecessor: fail on a
    /// speedup-ratio drop beyond `max_regress` (e.g. `0.20` for 20%), and —
    /// when host fingerprints match — on an absolute `current_model`
    /// seeds/sec drop beyond the same tolerance.
    pub fn gate(&self, max_regress: f64) -> GateVerdict {
        let Some((prev, cur)) = self.latest_pair() else {
            return GateVerdict::SinglePoint;
        };
        let drop_frac = |was: f64, now: f64| {
            if was > 0.0 {
                (was - now) / was
            } else {
                0.0
            }
        };
        let speedup_drop = drop_frac(prev.speedup, cur.speedup);
        if speedup_drop > max_regress {
            return GateVerdict::Fail {
                detail: format!(
                    "speedup regressed {:.1}% ({:.2}x in {} → {:.2}x in {}), tolerance {:.0}%",
                    speedup_drop * 100.0,
                    prev.speedup,
                    prev.id,
                    cur.speedup,
                    cur.id,
                    max_regress * 100.0
                ),
            };
        }
        let hosts_match = matches!((&prev.host, &cur.host), (Some(a), Some(b)) if a == b);
        if hosts_match {
            let model_drop = drop_frac(prev.current_model, cur.current_model);
            if model_drop > max_regress {
                return GateVerdict::Fail {
                    detail: format!(
                        "current_model seeds/sec regressed {:.1}% on the same host \
                         ({:.2} in {} → {:.2} in {}), tolerance {:.0}%",
                        model_drop * 100.0,
                        prev.current_model,
                        prev.id,
                        cur.current_model,
                        cur.id,
                        max_regress * 100.0
                    ),
                };
            }
        }
        GateVerdict::Pass {
            detail: format!(
                "speedup {:.2}x in {} vs {:.2}x in {} (Δ {:+.1}%, tolerance {:.0}%{})",
                cur.speedup,
                cur.id,
                prev.speedup,
                prev.id,
                -speedup_drop * 100.0,
                max_regress * 100.0,
                if hosts_match {
                    ", same host: absolute seeds/sec also gated"
                } else {
                    ", hosts differ: ratio only"
                }
            ),
        }
    }
}

/// `+x.x%` / `-x.x%` change from `was` to `now` (`"?"` if `was` is 0).
fn pct_delta(was: f64, now: f64) -> String {
    if was == 0.0 {
        return "?".to_string();
    }
    format!("{:+.1}%", (now - was) / was * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(id: &str, speedup: f64, current: f64, host: Option<&str>) -> (String, String) {
        let host_json = host
            .map(|h| format!(r#""host": {{"rustc": "{h}", "wall_ns": 5, "entries": 1}},"#))
            .unwrap_or_default();
        (
            format!("{id}.json"),
            format!(
                r#"{{
                  "id": "{id}", "schema": {}, "quick": false, "seed": 42,
                  {host_json}
                  "entries": [
                    {{"group": "queue", "name": "wheel_churn", "ns_per_unit": 79.28,
                      "per_sec": 1.0, "unit": "op", "samples": 15}}
                  ],
                  "seeds_per_sec": {{
                    "baseline_model": {:.2}, "current_model": {current:.2},
                    "speedup": {speedup:.2}, "campaign_quick": 0.1
                  }}
                }}"#,
                if host.is_some() { 2 } else { 1 },
                current / speedup,
            ),
        )
    }

    #[test]
    fn parses_committed_snapshot_fields() {
        let (name, text) = snapshot("BENCH_0006", 17.73, 2743.51, None);
        let p = TrajectoryPoint::from_json_text(&name, &text).expect("parse");
        assert_eq!(p.id, "BENCH_0006");
        assert_eq!(p.schema, 1);
        assert_eq!(p.host, None);
        assert_eq!(p.rows[0].key, "queue/wheel_churn");
        assert!((p.speedup - 17.73).abs() < 1e-9);
    }

    #[test]
    fn schema2_host_fields() {
        let (name, text) = snapshot("BENCH_0007", 17.0, 2700.0, Some("rustc 1.95.0"));
        let p = TrajectoryPoint::from_json_text(&name, &text).expect("parse");
        assert_eq!(p.schema, 2);
        assert_eq!(p.host.as_deref(), Some("rustc 1.95.0"));
        assert_eq!(p.wall_ns, Some(5));
    }

    #[test]
    fn single_point_is_not_gated() {
        let t = Trajectory::from_texts(&[snapshot("BENCH_0006", 17.73, 2743.51, None)])
            .expect("trajectory");
        assert_eq!(t.gate(0.20), GateVerdict::SinglePoint);
        assert!(t.delta_table().contains("nothing to compare"));
    }

    #[test]
    fn small_regression_passes_big_one_fails() {
        let ok = Trajectory::from_texts(&[
            snapshot("BENCH_0006", 17.73, 2743.51, None),
            snapshot("BENCH_0007", 15.00, 2500.00, None),
        ])
        .expect("trajectory");
        assert!(!ok.gate(0.20).is_fail(), "15.00 vs 17.73 is a 15% drop");

        let bad = Trajectory::from_texts(&[
            snapshot("BENCH_0006", 17.73, 2743.51, None),
            snapshot("BENCH_0007", 10.00, 2500.00, None),
        ])
        .expect("trajectory");
        let verdict = bad.gate(0.20);
        assert!(verdict.is_fail());
        match verdict {
            GateVerdict::Fail { detail } => assert!(detail.contains("speedup regressed")),
            other => panic!("expected fail, got {other:?}"),
        }
    }

    #[test]
    fn absolute_model_gated_only_on_matching_hosts() {
        // Same ratio, big absolute drop, different hosts: pass.
        let cross = Trajectory::from_texts(&[
            snapshot("BENCH_0006", 17.0, 2700.0, Some("rustc 1.90.0")),
            snapshot("BENCH_0007", 17.0, 1000.0, Some("rustc 1.95.0")),
        ])
        .expect("trajectory");
        assert!(!cross.gate(0.20).is_fail());

        // Same host: the absolute drop now fails.
        let same = Trajectory::from_texts(&[
            snapshot("BENCH_0006", 17.0, 2700.0, Some("rustc 1.95.0")),
            snapshot("BENCH_0007", 17.0, 1000.0, Some("rustc 1.95.0")),
        ])
        .expect("trajectory");
        let verdict = same.gate(0.20);
        assert!(verdict.is_fail());
        match verdict {
            GateVerdict::Fail { detail } => assert!(detail.contains("same host")),
            other => panic!("expected fail, got {other:?}"),
        }
    }

    #[test]
    fn delta_table_lists_rows_and_models() {
        let t = Trajectory::from_texts(&[
            snapshot("BENCH_0006", 17.73, 2743.51, None),
            snapshot("BENCH_0007", 18.00, 2800.00, Some("rustc 1.95.0")),
        ])
        .expect("trajectory");
        let table = t.delta_table();
        assert!(table.contains("queue/wheel_churn ns/op"));
        assert!(table.contains("seeds/sec current_model"));
        assert!(table.contains("speedup (current/baseline)"));
        assert!(table.contains("hosts differ") || table.contains("host fingerprints differ"));
    }

    #[test]
    fn points_sort_by_id() {
        let t = Trajectory::from_texts(&[
            snapshot("BENCH_0007", 18.0, 2800.0, None),
            snapshot("BENCH_0006", 17.7, 2743.0, None),
        ])
        .expect("trajectory");
        assert_eq!(t.points[0].id, "BENCH_0006");
        assert_eq!(t.points[1].id, "BENCH_0007");
    }

    #[test]
    fn parse_errors_name_the_source() {
        let e = TrajectoryPoint::from_json_text("broken.json", "{").expect_err("must fail");
        assert!(e.starts_with("broken.json:"));
        let e = TrajectoryPoint::from_json_text("x.json", r#"{"schema": 1}"#).expect_err("no id");
        assert!(e.contains("`id`"));
    }
}
