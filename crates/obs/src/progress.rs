//! The live progress drain: a reader thread for the bounded channel.
//!
//! [`ProgressRenderer::spawn`] starts one OS thread that drains
//! [`LiveEvent`]s as they arrive, maintains running campaign state (cells
//! done/total, failures, retries, per-worker busy time, cell-latency
//! histogram), and — when rendering is on — prints a throttled one-line
//! status to **stderr**. Stdout is sacred: `ci.sh` byte-compares campaign
//! stdout across `--jobs` counts, and everything this module prints is
//! host-dependent by nature.
//!
//! The thread ends when every sender is gone (the campaign observer and
//! all cell logs dropped); [`ProgressRenderer::finish`] then joins it and
//! returns the accumulated [`HostReport`]. This is the only sanctioned
//! thread spawn outside the campaign runner (see the satin-lint
//! allowlist): it must be a *reader* thread, never a worker — it does no
//! simulation and its scheduling cannot influence any result.

use crate::host::{fmt_host_ns, HostClock, HostReport, WorkerUse};
use crate::stream::LiveEvent;
use crate::ObsEvent;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::thread;

/// Minimum host nanoseconds between rendered status lines.
const RENDER_PERIOD_NS: u64 = 200_000_000;

/// Owns the drain thread for one campaign run (or several back-to-back
/// campaigns sharing an observer).
#[derive(Debug)]
pub struct ProgressRenderer {
    handle: thread::JoinHandle<HostReport>,
}

impl ProgressRenderer {
    /// Starts the drain thread. With `render` false the thread only
    /// accumulates the [`HostReport`] (useful when `--events-out` is given
    /// without `--progress`, and for deterministic tests).
    pub fn spawn(rx: mpsc::Receiver<LiveEvent>, render: bool) -> Self {
        let handle = thread::spawn(move || drain(rx, render));
        ProgressRenderer { handle }
    }

    /// Joins the drain thread and returns the host report, stamping in the
    /// sender-side drop count (capture it from the observer *before*
    /// dropping it — dropping is what lets the thread exit).
    pub fn finish(self, live_dropped: u64) -> HostReport {
        let mut report = self.handle.join().expect("progress drain thread panicked");
        report.live_dropped = live_dropped;
        report
    }
}

/// Running drain state, folded over live events in arrival order.
struct DrainState {
    label: String,
    total: usize,
    done: usize,
    failed: usize,
    retries: usize,
    workers: Vec<WorkerUse>,
    /// Host start time of each in-flight cell (removed on finish/salvage).
    inflight: BTreeMap<usize, u64>,
    first_ns: Option<u64>,
    last_ns: u64,
    report: HostReport,
}

impl DrainState {
    fn new() -> Self {
        DrainState {
            label: String::new(),
            total: 0,
            done: 0,
            failed: 0,
            retries: 0,
            workers: Vec::new(),
            inflight: BTreeMap::new(),
            first_ns: None,
            last_ns: 0,
            report: HostReport::default(),
        }
    }

    fn worker_mut(&mut self, w: usize) -> &mut WorkerUse {
        if self.workers.len() <= w {
            self.workers.resize(w + 1, WorkerUse::default());
        }
        &mut self.workers[w]
    }

    fn fold(&mut self, ev: &LiveEvent) {
        self.first_ns.get_or_insert(ev.host_ns);
        self.last_ns = self.last_ns.max(ev.host_ns);
        match &ev.event {
            ObsEvent::CampaignStarted { label, cells } => {
                // Back-to-back campaigns on one observer accumulate.
                self.label = label.clone();
                self.total += cells;
            }
            ObsEvent::CellStarted { cell, .. } => {
                self.inflight.insert(*cell, ev.host_ns);
            }
            ObsEvent::CellRetried { .. } => {
                self.retries += 1;
            }
            ObsEvent::CellFinished { cell, .. } | ObsEvent::CellSalvaged { cell, .. } => {
                if matches!(ev.event, ObsEvent::CellSalvaged { .. }) {
                    self.failed += 1;
                }
                self.done += 1;
                if let Some(began) = self.inflight.remove(cell) {
                    let latency = ev.host_ns.saturating_sub(began);
                    self.report.cell_latency.record_nanos(latency);
                    if let Some(w) = ev.worker {
                        let u = self.worker_mut(w);
                        u.cells += 1;
                        u.busy_ns += latency;
                    }
                }
            }
            ObsEvent::WorkerAssigned { .. }
            | ObsEvent::CellAttempt { .. }
            | ObsEvent::FaultArmed { .. }
            | ObsEvent::CampaignFinished { .. } => {}
        }
    }

    /// One status line, e.g.
    /// `[faults/smoke] 2/3 cells · 1 failed · 2 retries · 4.1 cells/s · ETA 245.0ms`.
    fn status_line(&self) -> String {
        let mut line = format!(
            "[{}] {}/{} cells · {} failed · {} retries",
            self.label, self.done, self.total, self.failed, self.retries
        );
        let elapsed = self.last_ns.saturating_sub(self.first_ns.unwrap_or(0));
        if self.done > 0 && elapsed > 0 {
            let rate = self.done as f64 / (elapsed as f64 / 1e9);
            line.push_str(&format!(" · {rate:.1} cells/s"));
            let remaining = self.total.saturating_sub(self.done);
            if remaining > 0 && rate > 0.0 {
                let eta_ns = (remaining as f64 / rate * 1e9) as u64;
                line.push_str(&format!(" · ETA {}", fmt_host_ns(eta_ns)));
            }
        }
        line
    }

    fn into_report(mut self) -> HostReport {
        self.report.wall_ns = self.last_ns.saturating_sub(self.first_ns.unwrap_or(0));
        self.report.cells = self.done;
        self.report.failed = self.failed;
        self.report.retries = self.retries;
        self.report.workers = self.workers;
        self.report
    }
}

fn drain(rx: mpsc::Receiver<LiveEvent>, render: bool) -> HostReport {
    let clock = HostClock::start();
    let mut state = DrainState::new();
    let mut last_render = 0u64;
    for ev in rx.iter() {
        state.fold(&ev);
        if render {
            let campaign_edge = matches!(
                ev.event,
                ObsEvent::CampaignStarted { .. } | ObsEvent::CampaignFinished { .. }
            );
            let now = clock.now_ns();
            if campaign_edge || now.saturating_sub(last_render) >= RENDER_PERIOD_NS {
                last_render = now;
                eprintln!("{}", state.status_line());
            }
        }
    }
    state.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::LiveSink;

    fn live(host_ns: u64, worker: Option<usize>, event: ObsEvent) -> LiveEvent {
        LiveEvent {
            host_ns,
            worker,
            event,
        }
    }

    #[test]
    fn drain_accumulates_host_report() {
        let (sink, rx) = LiveSink::bounded(64);
        let renderer = ProgressRenderer::spawn(rx, false);
        sink.send(live(
            0,
            None,
            ObsEvent::CampaignStarted {
                label: "t".into(),
                cells: 2,
            },
        ));
        for (cell, seed, worker, t0, t1) in [(0usize, 7u64, 0usize, 10, 110), (1, 42, 1, 20, 70)] {
            sink.send(live(
                t0,
                Some(worker),
                ObsEvent::CellStarted {
                    cell,
                    seed,
                    label: format!("s{seed}"),
                },
            ));
            sink.send(live(
                t1,
                Some(worker),
                ObsEvent::CellFinished {
                    cell,
                    seed,
                    attempts: 1,
                },
            ));
        }
        sink.send(live(
            120,
            None,
            ObsEvent::CampaignFinished {
                cells: 2,
                ok: 2,
                failed: 0,
                retries: 0,
            },
        ));
        drop(sink);
        let report = renderer.finish(3);
        assert_eq!(report.cells, 2);
        assert_eq!(report.failed, 0);
        assert_eq!(report.wall_ns, 120);
        assert_eq!(report.live_dropped, 3);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.workers[0].busy_ns, 100);
        assert_eq!(report.workers[1].busy_ns, 50);
        assert_eq!(report.cell_latency.count(), 2);
    }

    #[test]
    fn salvage_and_retry_counting() {
        let (sink, rx) = LiveSink::bounded(64);
        let renderer = ProgressRenderer::spawn(rx, false);
        sink.send(live(
            0,
            None,
            ObsEvent::CampaignStarted {
                label: "f".into(),
                cells: 1,
            },
        ));
        sink.send(live(
            1,
            Some(0),
            ObsEvent::CellStarted {
                cell: 0,
                seed: 42,
                label: "s42".into(),
            },
        ));
        sink.send(live(
            2,
            Some(0),
            ObsEvent::CellRetried {
                cell: 0,
                seed: 42,
                attempt: 1,
                error: "boom".into(),
            },
        ));
        sink.send(live(
            9,
            Some(0),
            ObsEvent::CellSalvaged {
                cell: 0,
                seed: 42,
                attempts: 2,
                error: "boom".into(),
            },
        ));
        drop(sink);
        let report = renderer.finish(0);
        assert_eq!(report.cells, 1);
        assert_eq!(report.failed, 1);
        assert_eq!(report.retries, 1);
        assert_eq!(report.workers[0].cells, 1);
        assert_eq!(report.workers[0].busy_ns, 8);
    }

    #[test]
    fn status_line_shape() {
        let mut s = DrainState::new();
        s.fold(&live(
            0,
            None,
            ObsEvent::CampaignStarted {
                label: "grid".into(),
                cells: 4,
            },
        ));
        s.fold(&live(
            0,
            Some(0),
            ObsEvent::CellStarted {
                cell: 0,
                seed: 7,
                label: "s7".into(),
            },
        ));
        s.fold(&live(
            1_000_000_000,
            Some(0),
            ObsEvent::CellFinished {
                cell: 0,
                seed: 7,
                attempts: 1,
            },
        ));
        let line = s.status_line();
        assert!(line.starts_with("[grid] 1/4 cells"), "line: {line}");
        assert!(line.contains("1.0 cells/s"), "line: {line}");
        assert!(line.contains("ETA 3.00s"), "line: {line}");
    }
}
