//! Scan-window hashing: the slice-batched enum-dispatched path against the
//! pre-refactor per-byte boxed path, across algorithms, window sizes, and
//! the unaligned heads/tails the secure path produces.
//!
//! The batched djb2/sdbm loops are algebraically exact (eight affine steps
//! compose into one, mod 2^64), so these benches compare *cost structures*
//! of identical digests — see `satin-hash` and DESIGN.md §13.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use satin_hash::{HashAlgorithm, HasherKind};

/// Deterministic window contents (never all-zero: keep the multiplier fed).
fn window(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 56) as u8)
        .collect()
}

fn bench_batched_vs_per_byte(c: &mut Criterion) {
    let data = window(256 * 1024);
    let mut g = c.benchmark_group("hash_window_256k");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for alg in HashAlgorithm::ALL {
        g.bench_function(format!("{}_batched", alg.name()), |b| {
            b.iter(|| {
                let mut h = HasherKind::new(alg);
                h.update(std::hint::black_box(&data));
                h.finish()
            })
        });
        g.bench_function(format!("{}_boxed_per_byte", alg.name()), |b| {
            b.iter(|| {
                let mut h = alg.new_hasher();
                for byte in std::hint::black_box(&data).chunks(1) {
                    h.update(byte);
                }
                h.finish()
            })
        });
    }
    g.finish();
}

fn bench_unaligned_windows(c: &mut Criterion) {
    // The secure path hashes 19 areas whose lengths are not multiples of 8;
    // the batched loop's tail handling must not dominate on odd sizes.
    let data = window(64 * 1024 + 7);
    let mut g = c.benchmark_group("hash_window_unaligned");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for (name, range) in [
        ("odd_head", 3..data.len()),
        ("odd_tail", 0..data.len() - 5),
        ("odd_both", 1..data.len() - 2),
    ] {
        let slice = &data[range];
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut h = HasherKind::new(HashAlgorithm::Djb2);
                h.update(std::hint::black_box(slice));
                h.finish()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_batched_vs_per_byte, bench_unaligned_windows);
criterion_main!(benches);
