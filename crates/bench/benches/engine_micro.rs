//! Micro-benchmarks of the substrate the experiments stand on: hash
//! throughput (the quantity Table I models), scan-window resolution (the
//! TOCTTOU race kernel), event-queue and scheduler hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use satin_hash::{hash_bytes, HashAlgorithm};
use satin_kernel::{Affinity, KernelConfig, SchedClass, Scheduler, TaskState};
use satin_mem::{MemRange, PhysAddr, ScanWindow};
use satin_sim::{BaselineHeapQueue, EventQueue, SimDuration, SimTime, Simulator};

fn bench_hashes(c: &mut Criterion) {
    let data = vec![0xA5u8; 1 << 20];
    let mut g = c.benchmark_group("hash_1mib");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for alg in HashAlgorithm::ALL {
        g.bench_function(alg.name(), |b| {
            b.iter(|| hash_bytes(alg, std::hint::black_box(&data)))
        });
    }
    g.finish();
}

fn bench_scan_window(c: &mut Criterion) {
    let len = 512 * 1024u64;
    c.bench_function("scan_window_resolve_512k_100_writes", |b| {
        b.iter_batched(
            || {
                let mut w = ScanWindow::begin(
                    MemRange::new(PhysAddr::new(0), len),
                    SimTime::ZERO,
                    1e-8,
                    vec![0u8; len as usize],
                );
                for i in 0..100u64 {
                    w.note_write(
                        SimTime::from_nanos(i * 50),
                        PhysAddr::new((i * 4099) % len),
                        &[i as u8; 8],
                    );
                }
                w
            },
            |w| w.into_observed(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("simulator_10k_events", |b| {
        b.iter(|| {
            let mut sim: Simulator<u32> = Simulator::new();
            for i in 0..10_000u64 {
                sim.schedule_at(SimTime::from_nanos(i * 37 % 9_999), i as u32);
            }
            let mut n = 0u32;
            while sim.pop().is_some() {
                n += 1;
            }
            n
        })
    });
}

/// The engine's event traffic shape: mostly near-term events with the
/// occasional far-future timer (lands in the wheel's overflow level).
fn queue_times(i: u64) -> SimTime {
    SimTime::from_nanos(if i % 97 == 0 {
        10_000_000 + i * 1_000
    } else {
        (i * 37) % 60_000
    })
}

fn bench_queue_wheel_vs_heap(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_10k_churn");
    g.throughput(Throughput::Elements(20_000)); // one push + one pop each
    g.bench_function("timing_wheel", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(queue_times(i), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    g.bench_function("baseline_heap", |b| {
        b.iter(|| {
            let mut q: BaselineHeapQueue<u64> = BaselineHeapQueue::new();
            for i in 0..10_000u64 {
                q.push(queue_times(i), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("scheduler_wake_pick_stop_cycle", |b| {
        let mut s = Scheduler::new(6, KernelConfig::lsk_4_4());
        let tasks: Vec<_> = (0..32)
            .map(|i| s.spawn(format!("t{i}"), SchedClass::cfs(), Affinity::any(6)))
            .collect();
        b.iter(|| {
            for &t in &tasks {
                s.wake(t);
            }
            for i in 0..6 {
                let core = satin_hw::CoreId::new(i);
                while let Some(t) = s.pick_next(core) {
                    s.start_running(core, t);
                    s.stop_running(core, t, SimDuration::from_micros(10), TaskState::Blocked);
                }
            }
        })
    });
}

criterion_group!(
    benches,
    bench_hashes,
    bench_scan_window,
    bench_event_queue,
    bench_queue_wheel_vs_heap,
    bench_scheduler
);
criterion_main!(benches);
