//! Criterion bench for the Table II harness: one probing-threshold round.

use criterion::{criterion_group, criterion_main, Criterion};
use satin_attack::prober::{measure_round, ProbeTargets};
use satin_hw::CoreId;
use satin_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("all_cores_500ms_round", |b| {
        b.iter(|| measure_round(7, SimDuration::from_millis(500), ProbeTargets::AllCores))
    });
    g.bench_function("single_core_500ms_round", |b| {
        b.iter(|| {
            measure_round(
                7,
                SimDuration::from_millis(500),
                ProbeTargets::Single {
                    target: CoreId::new(3),
                    observer: CoreId::new(0),
                },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
