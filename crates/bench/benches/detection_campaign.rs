//! Criterion bench for the §VI-B1 harness: a short SATIN-vs-TZ-Evader
//! campaign (19 rounds at tp = 0.5 s).

use criterion::{criterion_group, criterion_main, Criterion};
use satin_bench::detection::{run, DetectionConfig};
use satin_sim::SimDuration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("detection");
    g.sample_size(10);
    g.bench_function("19_rounds_tp_500ms", |b| {
        b.iter(|| {
            run(DetectionConfig {
                rounds: 19,
                tgoal: SimDuration::from_millis(9_500),
                seed: 3,
                trace: false,
                telemetry: false,
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
