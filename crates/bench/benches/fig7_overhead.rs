//! Criterion bench for the Figure 7 harness: one workload run with and
//! without SATIN.

use criterion::{criterion_group, criterion_main, Criterion};
use satin_core::SatinConfig;
use satin_sim::SimDuration;
use satin_workload::{runner::run_single, unixbench_suite};

fn bench(c: &mut Criterion) {
    let suite = unixbench_suite();
    let w = suite
        .iter()
        .find(|w| w.name == "file copy 256B")
        .expect("workload present");
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("file_copy_256B_10s_off", |b| {
        b.iter(|| run_single(w, 1, SimDuration::from_secs(10), None, 5))
    });
    g.bench_function("file_copy_256B_10s_on", |b| {
        let mut cfg = SatinConfig::paper();
        cfg.tgoal = SimDuration::from_secs(19);
        b.iter(|| run_single(w, 1, SimDuration::from_secs(10), Some(cfg), 5))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
