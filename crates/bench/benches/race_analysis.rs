//! Criterion bench for the §IV-C analytics and the Equation 1 sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use satin_attack::race::RaceParams;
use satin_bench::race;

fn bench(c: &mut Criterion) {
    c.bench_function("race_params_analysis", |b| {
        b.iter(|| {
            let p = RaceParams::paper_worst_case();
            (
                p.protected_prefix_bytes(),
                p.unprotected_fraction(satin_mem::PAPER_KERNEL_SIZE),
            )
        })
    });
    let mut g = c.benchmark_group("race_sweep");
    g.sample_size(10);
    g.bench_function("equation1_3_offsets", |b| {
        b.iter(|| race::equation1_sweep(&[0, 1_000_000, 2_000_000], 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
