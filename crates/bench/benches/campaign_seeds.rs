//! End-to-end seeds/sec: the quantity ROADMAP item 1 tracks.
//!
//! One iteration = one complete quick detection campaign (57 rounds,
//! tp = 1 s scaled) on a fresh `System` — the unit of work `CampaignRunner`
//! fans out per seed. The committed `BENCH_*.json` trajectory records the
//! same quantity via `repro bench --json`; this criterion entry is the
//! interactive view of it.

use criterion::{criterion_group, criterion_main, Criterion};
use satin_bench::detection::{self, DetectionConfig};

fn bench_campaign_seed(c: &mut Criterion) {
    c.bench_function("detection_quick_one_seed", |b| {
        b.iter(|| detection::run(DetectionConfig::quick(7)).rounds)
    });
}

fn bench_campaign_seed_with_trace(c: &mut Criterion) {
    // Trace recording is the observer-on configuration — the sim observer
    // and trace ring must not erase the hot-path win.
    c.bench_function("detection_quick_one_seed_traced", |b| {
        b.iter(|| {
            let mut config = DetectionConfig::quick(7);
            config.trace = true;
            detection::run(config).rounds
        })
    });
}

criterion_group!(benches, bench_campaign_seed, bench_campaign_seed_with_trace);
criterion_main!(benches);
