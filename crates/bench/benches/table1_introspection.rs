//! Criterion bench for the Table I harness: one full-kernel introspection
//! round per (core kind, strategy).

use criterion::{criterion_group, criterion_main, Criterion};
use satin_bench::table1;
use satin_hw::timing::ScanStrategy;
use satin_hw::CoreKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    for kind in [CoreKind::A53, CoreKind::A57] {
        for strategy in ScanStrategy::ALL {
            g.bench_function(format!("{kind}-{strategy}-3rounds"), |b| {
                b.iter(|| table1::measure_cell(kind, strategy, 3, 42))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
