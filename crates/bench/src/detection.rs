//! §VI-B1 — the SATIN detection campaign.
//!
//! Paper setup: SATIN with tp = 8 s over 19 areas; TZ-Evader (KProber at the
//! learned 1.8e-3 threshold) hijacking a syscall handler in area 14. Over
//! 190 rounds (the kernel scanned 10 times): KProber faithfully reports all
//! 190 rounds (no false positives/negatives), SATIN checks area 14 ten times
//! and detects the hijack every time, the average gap between area-14 checks
//! is ≈141 s, and a full sweep takes ≈152 s.
//!
//! Checks of the attacked area are classified by whether the hijack was in
//! place *when the round's secure timer fired*: an `attacked` check must end
//! in detection (the §V-B bound makes the in-round race unwinnable), while
//! an `idle` check — the rootkit already hidden because a *previous* round's
//! detection gave it early warning — legitimately observes clean memory.
//! Rounds spaced closer than the evasion latency (possible because intervals
//! are uniform over `[0, 2·tp]`) are the only source of idle checks; at the
//! paper's tp = 8 s they are rare.

use crate::runner::{CampaignRunner, MetricsReport, RetryPolicy, SeedOutcome};
use satin_attack::{TzEvader, TzEvaderConfig};
use satin_core::satin::RoundRecord;
use satin_core::{Satin, SatinConfig, SatinHandle};
use satin_mem::PAPER_SYSCALL_AREA;
use satin_obs::{CampaignObs, EventStream, ObsEvent};
use satin_scenario::Scenario;
use satin_sim::{SimDuration, SimTime};
use satin_system::{SatinError, SystemBuilder};

/// Campaign configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionConfig {
    /// Rounds to run (paper: 190 = 10 sweeps of 19 areas).
    pub rounds: usize,
    /// Full-coverage goal; the paper's tp = 8 s means `Tgoal = 152 s`.
    /// Quick runs scale this down — gaps scale proportionally.
    pub tgoal: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Record the system trace (off by default: campaigns only need the
    /// counters, and the trace ring costs memory on long runs). Turn on to
    /// make the [`MetricsReport`] trace-health fields meaningful.
    pub trace: bool,
    /// Record telemetry spans (off by default, same cost reasoning as
    /// `trace`). Turn on to make the [`MetricsReport`] span counts
    /// meaningful.
    pub telemetry: bool,
}

impl DetectionConfig {
    /// The paper's full campaign (≈1520 simulated seconds).
    pub fn paper(seed: u64) -> Self {
        DetectionConfig {
            rounds: 190,
            tgoal: SimDuration::from_secs(152),
            seed,
            trace: false,
            telemetry: false,
        }
    }

    /// A scaled-down campaign (tp = 1 s) for tests and quick runs.
    pub fn quick(seed: u64) -> Self {
        DetectionConfig {
            rounds: 57, // 3 sweeps
            tgoal: SimDuration::from_secs(19),
            seed,
            trace: false,
            telemetry: false,
        }
    }
}

/// Campaign results.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionResult {
    /// Rounds SATIN completed.
    pub rounds: usize,
    /// Full kernel sweeps completed.
    pub sweeps: u64,
    /// Area-14 checks where the hijack was in place at round start and no
    /// recovery was already in flight — a fair in-round race.
    pub area14_attacked_checks: u64,
    /// Of those, how many were detected (the paper's 10/10).
    pub area14_detections: u64,
    /// Area-14 checks where a closely preceding round had already tipped
    /// off the evader (recovery in flight or finished at fire time). These
    /// exist because wake intervals are uniform over `[0, 2·tp]`, so two
    /// rounds can fire within the ~8 ms evasion latency; at the paper's
    /// tp = 8 s this happens to ≈0.1% of rounds.
    pub area14_early_warning_checks: u64,
    /// Of the early-warning checks, how many still detected the hijack.
    pub area14_early_warning_detections: u64,
    /// Distinct introspection sessions the evader's prober reported.
    pub prober_sessions: usize,
    /// Mean gap between consecutive area-14 checks, seconds.
    pub area14_mean_gap_secs: Option<f64>,
    /// Mean time for one full sweep, seconds (paper ≈152 s at tp = 8 s).
    pub sweep_secs: Option<f64>,
    /// Alarms on areas other than 14 (must be 0 — no false positives).
    pub other_area_alarms: u64,
    /// Simulated duration of the campaign, seconds.
    pub simulated_secs: f64,
    /// The machine's per-subsystem counters at campaign end.
    pub metrics: MetricsReport,
}

impl DetectionResult {
    /// Detection rate over attacked checks (1.0 in the paper).
    pub fn detection_rate(&self) -> f64 {
        if self.area14_attacked_checks == 0 {
            return 1.0;
        }
        self.area14_detections as f64 / self.area14_attacked_checks as f64
    }
}

/// Runs the campaign until SATIN has completed `config.rounds` rounds.
///
/// Equivalent to [`run_scenario`] with the `juno-r1` scenario — the
/// paper's platform, attacker, and defense.
pub fn run(config: DetectionConfig) -> DetectionResult {
    run_scenario(&Scenario::paper(), config)
}

/// Runs the campaign on an arbitrary scenario: platform from the
/// scenario's profile, SATIN from its defense profile (with `config.tgoal`
/// overriding the goal, as quick campaigns always have), TZ-Evader from
/// its attack profile. The rootkit still hijacks GETTID, which lives in
/// area 14 of the paper kernel layout on every platform.
pub fn run_scenario(scenario: &Scenario, config: DetectionConfig) -> DetectionResult {
    try_run_scenario(scenario, config, 1)
        .expect("campaign failed; fault-injected scenarios go through run_many_faulted")
}

/// [`run_scenario`] with structured failure: a fault-injected worker abort
/// or a boot error surfaces as a [`SatinError`] instead of a panic.
/// `attempt` is the 1-based retry attempt (faults with an attempt budget
/// stand down once it is exceeded).
///
/// # Errors
///
/// Any [`SatinError`] raised during boot or by the fault injector's
/// scheduled worker abort.
pub fn try_run_scenario(
    scenario: &Scenario,
    config: DetectionConfig,
    attempt: u32,
) -> Result<DetectionResult, SatinError> {
    let mut satin_cfg = SatinConfig::from_profile(&scenario.defense);
    satin_cfg.tgoal = config.tgoal;
    let mut sys = SystemBuilder::new()
        .seed(config.seed)
        .scenario(scenario)
        .fault_attempt(attempt)
        .trace(config.trace)
        .telemetry(config.telemetry)
        .build();
    let (satin, handle) = Satin::new(satin_cfg);
    sys.try_install_secure_service(satin)?;
    let evader = TzEvader::deploy(&mut sys, TzEvaderConfig::from_profile(&scenario.attack));

    let slice = config.tgoal / 19; // one tp
    let hard_stop = SimTime::ZERO + config.tgoal * 40; // safety net
    while handle.round_count() < config.rounds && sys.now() < hard_stop {
        sys.run_for(slice);
        // A scheduled worker abort lands between run slices: the partial
        // simulation is discarded and the seed reports a failed row.
        sys.check_fault_abort()?;
    }
    let metrics = MetricsReport::capture(&sys);
    Ok(summarize(&handle, &evader, config, sys.now(), metrics))
}

/// Runs one campaign per seed through `runner`, returning results in seed
/// order (identical for any worker count — campaigns share no state).
pub fn run_many(
    base: DetectionConfig,
    seeds: &[u64],
    runner: &CampaignRunner,
) -> Vec<DetectionResult> {
    run_many_scenario(&Scenario::paper(), base, seeds, runner)
}

/// [`run_many`] on an arbitrary scenario.
pub fn run_many_scenario(
    scenario: &Scenario,
    base: DetectionConfig,
    seeds: &[u64],
    runner: &CampaignRunner,
) -> Vec<DetectionResult> {
    runner.run_seeds(seeds, |seed| {
        run_scenario(scenario, DetectionConfig { seed, ..base })
    })
}

/// [`run_many_scenario`] with the scenario's fault plan armed: each seed is
/// retried per the plan's `max-attempts`/`backoff-ms`, and a seed whose
/// every attempt fails (e.g. an injected worker abort with a large attempt
/// budget) comes back as a [`SeedOutcome::Failed`] row — the batch itself
/// never panics. Output is identical for any worker count.
pub fn run_many_faulted(
    scenario: &Scenario,
    base: DetectionConfig,
    seeds: &[u64],
    runner: &CampaignRunner,
) -> Vec<SeedOutcome<DetectionResult>> {
    let policy = RetryPolicy::from_plan(&scenario.faults);
    runner.run_seeds_with_retry(seeds, policy, |seed, attempt| {
        try_run_scenario(scenario, DetectionConfig { seed, ..base }, attempt)
    })
}

/// [`run_many_faulted`] with a campaign event stream: every cell logs its
/// lifecycle plus one `cell.fault_armed` event per fault kind the plan arms
/// for that `(seed, attempt)`. The canonical stream is assembled from the
/// cell logs in seed order, so its JSONL form is byte-identical for any
/// worker count; `obs`'s live channel (if any) additionally sees the events
/// as they happen, tagged with worker and host time.
pub fn run_many_faulted_observed(
    scenario: &Scenario,
    base: DetectionConfig,
    seeds: &[u64],
    runner: &CampaignRunner,
    obs: &CampaignObs,
) -> (Vec<SeedOutcome<DetectionResult>>, EventStream) {
    let policy = RetryPolicy::from_plan(&scenario.faults);
    runner.run_seeds_with_retry_observed(
        seeds,
        policy,
        obs,
        |seed| scenario.cell_label(seed),
        |seed, attempt, log| {
            let cell = log.cell();
            for kind in satin_faults::armed_kinds(&scenario.faults, seed, attempt) {
                log.emit(ObsEvent::FaultArmed {
                    cell,
                    seed,
                    fault: kind.to_string(),
                });
            }
            try_run_scenario(scenario, DetectionConfig { seed, ..base }, attempt)
        },
    )
}

/// Fleet-level aggregates over a batch of campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionAggregate {
    /// Campaigns aggregated.
    pub campaigns: usize,
    /// Total rounds across campaigns.
    pub rounds: usize,
    /// Total fair-race area-14 checks.
    pub area14_attacked_checks: u64,
    /// Of those, detections (the paper's 100%).
    pub area14_detections: u64,
    /// Total early-warning checks.
    pub area14_early_warning_checks: u64,
    /// Total alarms on clean areas (must stay 0).
    pub other_area_alarms: u64,
    /// Mean of the per-campaign area-14 gap means, seconds.
    pub mean_gap_secs: Option<f64>,
    /// Summed machine counters across campaigns.
    pub metrics: MetricsReport,
}

impl DetectionAggregate {
    /// Aggregates a batch of campaign results.
    pub fn of(results: &[DetectionResult]) -> Self {
        let gaps: Vec<f64> = results
            .iter()
            .filter_map(|r| r.area14_mean_gap_secs)
            .collect();
        DetectionAggregate {
            campaigns: results.len(),
            rounds: results.iter().map(|r| r.rounds).sum(),
            area14_attacked_checks: results.iter().map(|r| r.area14_attacked_checks).sum(),
            area14_detections: results.iter().map(|r| r.area14_detections).sum(),
            area14_early_warning_checks: results
                .iter()
                .map(|r| r.area14_early_warning_checks)
                .sum(),
            other_area_alarms: results.iter().map(|r| r.other_area_alarms).sum(),
            mean_gap_secs: (!gaps.is_empty()).then(|| gaps.iter().sum::<f64>() / gaps.len() as f64),
            metrics: MetricsReport::merged(
                &results
                    .iter()
                    .map(|r| r.metrics.clone())
                    .collect::<Vec<_>>(),
            ),
        }
    }

    /// Detection rate over all attacked checks.
    pub fn detection_rate(&self) -> f64 {
        if self.area14_attacked_checks == 0 {
            return 1.0;
        }
        self.area14_detections as f64 / self.area14_attacked_checks as f64
    }
}

pub(crate) fn summarize(
    handle: &SatinHandle,
    evader: &TzEvader,
    config: DetectionConfig,
    now: SimTime,
    metrics: MetricsReport,
) -> DetectionResult {
    let all_rounds = handle.rounds();
    let rounds: &[RoundRecord] = &all_rounds[..all_rounds.len().min(config.rounds)];
    let mut attacked = 0u64;
    let mut detected = 0u64;
    let mut early = 0u64;
    let mut early_detected = 0u64;
    let mut other_alarms = 0u64;
    // A round is a fair race only if the evader got no head start: no prober
    // detection within the evasion latency before the fire.
    let head_start = SimDuration::from_millis(10);
    let detections = evader.channel.detections();
    for r in rounds {
        if r.area == PAPER_SYSCALL_AREA {
            let tipped_off = detections
                .iter()
                .any(|d| d.at < r.fired && r.fired.saturating_since(d.at) < head_start);
            if evader.rootkit.was_active_at(r.fired) && !tipped_off {
                attacked += 1;
                if r.tampered {
                    detected += 1;
                }
            } else {
                early += 1;
                if r.tampered {
                    early_detected += 1;
                }
            }
        } else if r.tampered {
            other_alarms += 1;
        }
    }
    let sessions = evader
        .channel
        .distinct_sessions(SimDuration::from_millis(100));
    let sessions_in_window = sessions
        .iter()
        .filter(|t| rounds.last().map(|r| **t <= r.at).unwrap_or(false))
        .count();
    let sweep_secs = rounds.last().map(|last| {
        let span = last.at.since(rounds[0].fired).as_secs_f64();
        let sweeps = (rounds.len() as f64 / 19.0).max(1.0);
        span / sweeps
    });
    DetectionResult {
        rounds: rounds.len(),
        sweeps: handle.full_sweeps(),
        area14_attacked_checks: attacked,
        area14_detections: detected,
        area14_early_warning_checks: early,
        area14_early_warning_detections: early_detected,
        prober_sessions: sessions_in_window,
        area14_mean_gap_secs: handle.mean_check_gap_secs(PAPER_SYSCALL_AREA),
        sweep_secs,
        other_area_alarms: other_alarms,
        simulated_secs: now.as_secs_f64(),
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_detects_every_attacked_check() {
        let r = run(DetectionConfig::quick(1));
        assert!(r.rounds >= 57, "{} rounds", r.rounds);
        assert!(r.sweeps >= 2, "{} sweeps", r.sweeps);
        let total_area14 = r.area14_attacked_checks + r.area14_early_warning_checks;
        assert!(total_area14 >= 2, "{total_area14} area-14 checks");
        // The paper's headline: every check that races the live hijack wins.
        assert_eq!(
            r.area14_detections, r.area14_attacked_checks,
            "SATIN lost an in-round race: {}/{}",
            r.area14_detections, r.area14_attacked_checks
        );
        assert_eq!(r.other_area_alarms, 0, "false alarms on clean areas");
        // The prober saw (at least) every round — no false negatives. The
        // session count can undercount rounds slightly: at tp = 1 s, two
        // rounds occasionally fire within the 100 ms session-merge window
        // and collapse into one reported session (a quick-mode artifact;
        // at the paper's tp = 8 s rounds never land that close).
        assert!(
            r.prober_sessions as f64 >= 0.85 * r.rounds as f64,
            "prober saw {} of {} rounds",
            r.prober_sessions,
            r.rounds
        );
        // Early-warning checks exist only via the close-round window,
        // which is rare even at tp = 1 s.
        assert!(
            r.area14_early_warning_checks <= 2,
            "{} early-warning checks",
            r.area14_early_warning_checks
        );
    }

    #[test]
    fn run_many_aggregates_identically_for_any_job_count() {
        let base = DetectionConfig {
            rounds: 19,
            tgoal: SimDuration::from_millis(9_500),
            seed: 0,
            trace: false,
            telemetry: false,
        };
        let seeds = [5u64, 6];
        let serial = run_many(base, &seeds, &CampaignRunner::serial());
        let parallel = run_many(base, &seeds, &CampaignRunner::new(2));
        // Campaigns are pure functions of their seed, and the runner returns
        // results in input order — so the whole batch is bitwise identical.
        assert_eq!(serial, parallel);
        let agg = DetectionAggregate::of(&serial);
        assert_eq!(agg.campaigns, 2);
        assert_eq!(agg.rounds, serial[0].rounds + serial[1].rounds);
        assert_eq!(agg.other_area_alarms, 0);
        assert!((agg.detection_rate() - 1.0).abs() < f64::EPSILON);
        // One publication per completed round, summed across the fleet.
        assert!(agg.metrics.publications as usize >= agg.rounds);
        assert_eq!(agg.metrics.world_switches, 2 * agg.metrics.publications);
    }

    #[test]
    fn observed_fault_stream_is_jobs_invariant_and_salvages_seed_42() {
        let mut sc = Scenario::paper();
        sc.faults = satin_scenario::FaultPlan::smoke();
        let base = DetectionConfig {
            rounds: 19,
            tgoal: SimDuration::from_millis(9_500),
            seed: 0,
            trace: false,
            telemetry: false,
        };
        let seeds = [7u64, 42, 1009];
        let run = |runner: &CampaignRunner| {
            let obs = CampaignObs::new("faults/smoke");
            run_many_faulted_observed(&sc, base, &seeds, runner, &obs)
        };
        let (serial, serial_stream) = run(&CampaignRunner::serial());
        let (parallel, parallel_stream) = run(&CampaignRunner::new(4));
        assert_eq!(serial, parallel);
        let jsonl = serial_stream.to_jsonl();
        assert_eq!(jsonl, parallel_stream.to_jsonl());
        // Smoke: every seed gets the dropped publication armed; seed 42
        // additionally gets the abort, outlives the 2-attempt budget, and
        // salvages as a Failed row.
        assert!(serial[1].is_failed(), "seed 42 must salvage");
        assert_eq!(
            jsonl.matches("\"event\":\"cell.fault_armed\"").count(),
            // seeds 7/1009: drop on their single attempt; seed 42: drop +
            // abort on each of its 2 attempts.
            2 + 2 * 2
        );
        assert!(jsonl.contains("\"fault\":\"fault.dropped_pub\""), "{jsonl}");
        assert!(jsonl.contains("\"fault\":\"fault.abort\""), "{jsonl}");
        assert!(jsonl.contains("\"label\":\"juno-r1/s42\""), "{jsonl}");
        assert_eq!(jsonl.matches("\"event\":\"cell.salvaged\"").count(), 1);
        assert!(
            jsonl.contains("\"cells\":3,\"ok\":2,\"failed\":1,\"retries\":1"),
            "{jsonl}"
        );
    }

    #[test]
    fn gap_scales_with_tgoal() {
        let r = run(DetectionConfig::quick(2));
        // At tp = 1 s over 19 areas, the expected mean gap for one area is
        // ≈ 19 s (the paper's 141-152 s scaled by 1/8).
        if let Some(gap) = r.area14_mean_gap_secs {
            assert!((8.0..40.0).contains(&gap), "gap {gap}s");
        }
        if let Some(sweep) = r.sweep_secs {
            assert!((12.0..28.0).contains(&sweep), "sweep {sweep}s");
        }
        assert!((r.detection_rate() - 1.0).abs() < f64::EPSILON);
    }
}
