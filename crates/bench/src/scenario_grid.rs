//! Grid sweeps: the same detection campaign fanned over many scenarios.
//!
//! A [`ScenarioGrid`] takes a list of scenarios and a base seed, runs each
//! scenario's campaign shape (`campaign.rounds` rounds at `campaign.tgoal`,
//! `campaign.seeds` consecutive seeds) through the shared
//! [`CampaignRunner`], and aggregates the per-scenario detection/evasion
//! statistics into one comparative report. The flattened cartesian product
//! of scenarios × seeds is what the runner fans out, so a slow scenario
//! doesn't serialize the sweep — and because the runner returns results in
//! input order, the report is identical for any worker count.

use crate::detection::{self, DetectionAggregate, DetectionConfig};
use crate::runner::CampaignRunner;
use satin_scenario::Scenario;
use std::fmt;

/// A sweep: scenarios × seeds through one runner.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    /// The scenarios to sweep, in report order.
    pub scenarios: Vec<Scenario>,
    /// Base master seed; scenario campaigns use `base_seed`,
    /// `base_seed + 1`, … per their `campaign.seeds` count.
    pub base_seed: u64,
}

/// One scenario's aggregated campaign results.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Compact topology label (e.g. `2xA57+4xA53`).
    pub topology: String,
    /// Seeds run.
    pub seeds: usize,
    /// Aggregate detection/evasion statistics across those seeds.
    pub aggregate: DetectionAggregate,
}

impl ScenarioOutcome {
    /// Attacked checks the defender lost (the evader's score).
    pub fn evasions(&self) -> u64 {
        self.aggregate.area14_attacked_checks - self.aggregate.area14_detections
    }
}

/// The comparative report a grid sweep produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGridReport {
    /// Base seed the sweep used.
    pub base_seed: u64,
    /// Per-scenario outcomes, in sweep order.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl ScenarioGrid {
    /// A grid over `scenarios` starting at `base_seed`.
    pub fn new(scenarios: Vec<Scenario>, base_seed: u64) -> Self {
        ScenarioGrid {
            scenarios,
            base_seed,
        }
    }

    /// A grid over every built-in scenario.
    pub fn builtins(base_seed: u64) -> Self {
        ScenarioGrid::new(satin_scenario::builtins(), base_seed)
    }

    /// Runs the sweep. The cartesian product of scenarios × seeds goes
    /// through `runner` as one flat work list; results are regrouped per
    /// scenario afterwards, in input order.
    pub fn run(&self, runner: &CampaignRunner) -> ScenarioGridReport {
        let jobs: Vec<(usize, u64)> = self
            .scenarios
            .iter()
            .enumerate()
            .flat_map(|(idx, sc)| {
                (0..sc.campaign.seeds as u64).map(move |s| (idx, self.base_seed + s))
            })
            .collect();
        let results = runner.run(&jobs, |&(idx, seed)| {
            let sc = &self.scenarios[idx];
            detection::run_scenario(
                sc,
                DetectionConfig {
                    rounds: sc.campaign.rounds,
                    tgoal: sc.campaign.tgoal,
                    seed,
                    trace: false,
                    telemetry: false,
                },
            )
        });
        let mut outcomes = Vec::with_capacity(self.scenarios.len());
        let mut cursor = 0usize;
        for sc in &self.scenarios {
            let n = sc.campaign.seeds;
            let slice = &results[cursor..cursor + n];
            cursor += n;
            outcomes.push(ScenarioOutcome {
                scenario: sc.name.clone(),
                topology: sc.platform.topology_label(),
                seeds: n,
                aggregate: DetectionAggregate::of(slice),
            });
        }
        ScenarioGridReport {
            base_seed: self.base_seed,
            outcomes,
        }
    }
}

impl fmt::Display for ScenarioGridReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scenario grid — base seed {} — detection vs evasion per scenario",
            self.base_seed
        )?;
        writeln!(
            f,
            "{:<16} {:<12} {:>5} {:>6} {:>8} {:>8} {:>7} {:>7} {:>6} {:>9}",
            "scenario",
            "topology",
            "seeds",
            "rounds",
            "attacked",
            "detected",
            "evaded",
            "rate",
            "early",
            "falsealarm"
        )?;
        for o in &self.outcomes {
            let a = &o.aggregate;
            writeln!(
                f,
                "{:<16} {:<12} {:>5} {:>6} {:>8} {:>8} {:>7} {:>6.1}% {:>6} {:>9}",
                o.scenario,
                o.topology,
                o.seeds,
                a.rounds,
                a.area14_attacked_checks,
                a.area14_detections,
                o.evasions(),
                100.0 * a.detection_rate(),
                a.area14_early_warning_checks,
                a.other_area_alarms
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_sim::SimDuration;

    /// Shrinks every campaign in a grid so tests stay fast: one sweep of
    /// the 19 areas per seed, 2 seeds.
    fn shrink(mut grid: ScenarioGrid) -> ScenarioGrid {
        for sc in &mut grid.scenarios {
            sc.campaign.rounds = 19;
            sc.campaign.tgoal = SimDuration::from_millis(9_500);
            sc.campaign.seeds = 2;
        }
        grid
    }

    #[test]
    fn builtin_grid_runs_all_scenarios_deterministically() {
        let grid = shrink(ScenarioGrid::builtins(42));
        let serial = grid.run(&CampaignRunner::serial());
        let parallel = grid.run(&CampaignRunner::new(2));
        // Campaigns are pure functions of (scenario, seed) and the runner
        // preserves input order, so the report is worker-count invariant.
        assert_eq!(serial, parallel);
        assert!(serial.outcomes.len() >= 5);
        assert_eq!(serial.outcomes[0].scenario, "juno-r1");
        for o in &serial.outcomes {
            assert_eq!(o.seeds, 2, "{}", o.scenario);
            assert!(
                o.aggregate.rounds >= 2 * 19,
                "{}: {} rounds",
                o.scenario,
                o.aggregate.rounds
            );
            // SATIN's safety bound holds on every built-in platform, so no
            // in-round race is ever lost and clean areas never alarm.
            assert_eq!(o.evasions(), 0, "{} lost a race", o.scenario);
            assert_eq!(o.aggregate.other_area_alarms, 0, "{}", o.scenario);
        }
    }

    #[test]
    fn report_renders_one_row_per_scenario() {
        let grid = shrink(ScenarioGrid::new(
            vec![satin_scenario::Scenario::paper()],
            7,
        ));
        let report = grid.run(&CampaignRunner::serial());
        let text = report.to_string();
        assert!(text.contains("base seed 7"), "{text}");
        assert!(text.contains("juno-r1"), "{text}");
        assert!(text.contains("2xA57+4xA53"), "{text}");
    }
}
