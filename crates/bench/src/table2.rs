//! Table II and Figure 4 — probing threshold vs probing period.
//!
//! The paper runs KProber over all cores with probing periods of 8, 16, 30,
//! 120, and 300 s; each round's threshold is the largest difference the Time
//! Comparer observed; 50 rounds per period give the average/max/min of
//! Table II and the boxplots of Figure 4. §IV-B2 additionally finds that
//! probing a single fixed core yields thresholds ≈¼ of the all-core values.

use crate::runner::CampaignRunner;
use satin_attack::prober::{probing_threshold_campaign, ProbeTargets};
use satin_hw::CoreId;
use satin_sim::SimDuration;
use satin_stats::{FiveNumber, Summary};

/// The paper's probing periods, in seconds.
pub const PAPER_PERIODS_SECS: [u64; 5] = [8, 16, 30, 120, 300];

/// One Table II row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Probing period, seconds.
    pub period_secs: u64,
    /// Per-round maxima summary (avg/max/min of Table II), seconds.
    pub threshold: Summary,
    /// Boxplot statistics (Figure 4).
    pub boxplot: FiveNumber,
}

/// Runs the campaign for the given periods with `rounds` rounds each.
pub fn run(periods_secs: &[u64], rounds: usize, seed: u64) -> Vec<Table2Row> {
    run_with(periods_secs, rounds, seed, &CampaignRunner::serial())
}

/// [`run`], with one period-campaign per `runner` worker. Each period seeds
/// its own independent campaign, so the rows are identical for any job
/// count.
pub fn run_with(
    periods_secs: &[u64],
    rounds: usize,
    seed: u64,
    runner: &CampaignRunner,
) -> Vec<Table2Row> {
    runner.run(periods_secs, |&p| {
        let maxima = probing_threshold_campaign(
            seed.wrapping_add(p),
            SimDuration::from_secs(p),
            rounds,
            ProbeTargets::AllCores,
        );
        Table2Row {
            period_secs: p,
            threshold: Summary::of(&maxima).expect("rounds > 0"),
            boxplot: FiveNumber::of(&maxima).expect("rounds > 0"),
        }
    })
}

/// §IV-B2's single-core comparison: mean thresholds for all-core vs
/// single-fixed-core probing at one period. Returns `(all, single)` seconds.
pub fn single_vs_all(period_secs: u64, rounds: usize, seed: u64) -> (f64, f64) {
    let period = SimDuration::from_secs(period_secs);
    let all = probing_threshold_campaign(seed, period, rounds, ProbeTargets::AllCores);
    let single = probing_threshold_campaign(
        seed.wrapping_add(999),
        period,
        rounds,
        ProbeTargets::Single {
            target: CoreId::new(3),
            observer: CoreId::new(0),
        },
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    (mean(&all), mean(&single))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_grows_with_period() {
        // Short periods for test speed; the growth shape is what matters.
        let rows = run(&[2, 8, 30], 4, 11);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[0].threshold.mean < rows[2].threshold.mean,
            "{:.3e} vs {:.3e}",
            rows[0].threshold.mean,
            rows[2].threshold.mean
        );
        // Thresholds live in the paper's band (≈1e-4 .. 1.8e-3).
        for r in &rows {
            assert!(r.threshold.mean > 5e-5, "{:.3e}", r.threshold.mean);
            assert!(r.threshold.max < 2.5e-3, "{:.3e}", r.threshold.max);
        }
    }

    #[test]
    fn single_core_probing_much_cheaper() {
        let (all, single) = single_vs_all(8, 4, 13);
        let ratio = single / all;
        // Paper: ≈1/4. Accept the right direction with generous tolerance.
        assert!(ratio < 0.6, "single/all ratio {ratio}");
    }
}
