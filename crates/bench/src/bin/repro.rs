//! Regenerates every table and figure of the SATIN paper (DSN 2019).
//!
//! ```text
//! repro [--full] [--seed N] [--jobs N] [--metrics]
//!       [--trace-out FILE] [--metrics-json FILE] [experiment ...]
//! ```
//!
//! Experiments: `table1 switch recover table2 fig4 affinity race detection
//! fig7 baseline areasweep telemetry all` (default: `all`). `--full` runs
//! paper-scale round counts (slow: several minutes of simulation); the
//! default is a quick mode that preserves every shape. `--jobs N` fans
//! independent campaigns across N worker threads (0 = one per hardware
//! thread); every aggregate is identical for any job count. `--metrics`
//! additionally prints the machine's per-subsystem counters and trace-log
//! health.
//!
//! `--trace-out FILE` writes one fully-instrumented SATIN-vs-TZ-Evader race
//! as Chrome `trace_event` JSON (open at `ui.perfetto.dev`);
//! `--metrics-json FILE` writes the merged campaign telemetry (histograms,
//! span counts) as deterministic JSON — byte-identical for any `--jobs`.
//! Either flag implies the `telemetry` experiment when none are listed.
//!
//! `--analyze` (or the `analysis` experiment) re-runs the detection campaign
//! with the `satin-analyze` happens-before race detector attached and audits
//! the recorded mark log against the paper's Eq.1/Eq.2 closed forms; the
//! process exits nonzero if any violation or nonzero residual is found, so
//! CI can gate on it.
//!
//! `--scenario NAME|FILE` swaps the Juno r1 defaults for a named built-in
//! scenario (see `--scenario-list`) or a descriptor file parsed by
//! `satin-scenario`; `table1 switch recover detection telemetry` all run on
//! the selected platform/attack/defense profile. The `grid` experiment
//! sweeps the detection campaign over every built-in scenario (or just the
//! selected one) into a comparative report; it is not part of `all`.
//!
//! `--faults NAME|FILE` attaches a fault plan (built-in `none`/`smoke`/
//! `chaos`, or a `[faults]` descriptor file) to the selected scenario. The
//! `faults` experiment runs the detection campaign over seeds {7, 42, 1009}
//! under each plan of the fault axis (the attached plan, or all built-ins
//! when none was given) through the salvaging runner: an aborted seed is
//! reported as a structured `failed` row — with its error, after its
//! retries — instead of killing the batch, and the report is byte-identical
//! for any `--jobs`. Neither flag nor experiment is part of `all`.
//!
//! The `bench` experiment measures the hot-path microbenchmarks (timing
//! wheel vs. reference heap, batched vs. per-byte hashing, the seeds/sec
//! model, and one real quick campaign) and prints the report; `--json FILE`
//! additionally writes the `BENCH_*.json` snapshot that `ci.sh` validates
//! and the ROADMAP trajectory commits. Not part of `all` — wall-clock
//! numbers belong to the machine that measured them.

use satin_bench::{
    ablation, detection, fig7, perf, race, recover, switch, table1, table2, threshold_sweep,
    userprober, CampaignRunner, MetricsReport, ScenarioGrid, DEFAULT_SEED,
};
use satin_obs::{
    CampaignObs, EventStream, GateVerdict, ObsEvent, PhaseTimer, ProgressRenderer, Trajectory,
};
use satin_scenario::{FaultPlan, Scenario};
use satin_sim::SimDuration;
use satin_stats::table::{Align, Table};
use satin_stats::{chart, fmt_percent, fmt_sci, FiveNumber};

/// Regression tolerance of `repro bench trajectory`: the newest committed
/// snapshot may not lose more than this fraction of the previous one's
/// seeds/sec-model speedup.
const TRAJECTORY_TOLERANCE: f64 = 0.20;

/// Capacity of the live event channel behind `--progress`. Overflow drops
/// progress frames (counted), never canonical events.
const LIVE_CHANNEL_CAPACITY: usize = 4096;

struct Opts {
    full: bool,
    seed: u64,
    jobs: usize,
    metrics: bool,
    analyze: bool,
    /// Render a live progress line (stderr) for observed campaigns.
    progress: bool,
    trace_out: Option<String>,
    metrics_json: Option<String>,
    /// `--events-out` target for the merged campaign event stream (JSONL).
    events_out: Option<String>,
    /// `--json` target for the `bench` experiment's BENCH_*.json snapshot.
    json_out: Option<String>,
    /// The selected scenario (Juno r1 paper defaults unless `--scenario`).
    scenario: Scenario,
    /// True when `--scenario` was given explicitly.
    scenario_set: bool,
    /// True when `--faults` was given explicitly (the plan itself lives in
    /// `scenario.faults`).
    faults_set: bool,
    /// The `--faults` argument as given (plan name or file path), used to
    /// label the campaign's event stream.
    faults_name: Option<String>,
    experiments: Vec<String>,
}

impl Opts {
    fn runner(&self) -> CampaignRunner {
        CampaignRunner::new(self.jobs)
    }
}

/// Resolves `--scenario`'s argument: a built-in name first, then a
/// descriptor file.
fn load_scenario(arg: &str) -> Scenario {
    if let Some(sc) = satin_scenario::builtin(arg) {
        return sc;
    }
    let text = std::fs::read_to_string(arg).unwrap_or_else(|e| {
        die(&format!(
            "--scenario {arg}: not a built-in (see --scenario-list) and not a readable file: {e}"
        ))
    });
    satin_scenario::parse_scenario(&text).unwrap_or_else(|e| die(&format!("--scenario {arg}: {e}")))
}

/// Resolves `--faults`'s argument: a built-in plan name first, then a
/// `[faults]` descriptor file.
fn load_fault_plan(arg: &str) -> FaultPlan {
    if let Some(plan) = satin_scenario::builtin_fault_plan(arg) {
        return plan;
    }
    let text = std::fs::read_to_string(arg).unwrap_or_else(|e| {
        die(&format!(
            "--faults {arg}: not a built-in (none, smoke, chaos) and not a readable file: {e}"
        ))
    });
    satin_scenario::parse_fault_plan(&text).unwrap_or_else(|e| die(&format!("--faults {arg}: {e}")))
}

fn print_scenario_list() {
    println!("built-in scenarios (usable as `--scenario NAME`):");
    for sc in satin_scenario::builtins() {
        println!(
            "  {:<16} {:<12} {}",
            sc.name,
            sc.platform.topology_label(),
            sc.summary
        );
    }
}

fn parse_args() -> Opts {
    let mut full = false;
    let mut seed = DEFAULT_SEED;
    let mut jobs = 1;
    let mut metrics = false;
    let mut analyze = false;
    let mut progress = false;
    let mut trace_out = None;
    let mut metrics_json = None;
    let mut events_out = None;
    let mut json_out = None;
    let mut scenario = None;
    let mut faults: Option<(String, FaultPlan)> = None;
    let mut experiments = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scenario" => {
                let arg = args
                    .next()
                    .unwrap_or_else(|| die("--scenario needs a built-in name or a file path"));
                scenario = Some(load_scenario(&arg));
            }
            "--scenario-list" => {
                print_scenario_list();
                std::process::exit(0);
            }
            "--faults" => {
                let arg = args.next().unwrap_or_else(|| {
                    die("--faults needs a built-in plan name (none, smoke, chaos) or a file path")
                });
                let plan = load_fault_plan(&arg);
                faults = Some((arg, plan));
            }
            "--full" => full = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs a number (0 = all hardware threads)"));
            }
            "--metrics" => metrics = true,
            "--analyze" => analyze = true,
            "--progress" => progress = true,
            "--trace-out" => {
                trace_out = Some(
                    args.next()
                        .unwrap_or_else(|| die("--trace-out needs a file path")),
                );
            }
            "--events-out" => {
                events_out = Some(
                    args.next()
                        .unwrap_or_else(|| die("--events-out needs a file path")),
                );
            }
            "--metrics-json" => {
                metrics_json = Some(
                    args.next()
                        .unwrap_or_else(|| die("--metrics-json needs a file path")),
                );
            }
            "--json" => {
                json_out = Some(
                    args.next()
                        .unwrap_or_else(|| die("--json needs a file path")),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--full] [--seed N] [--jobs N] [--metrics] [--analyze] \
                     [--progress] [--scenario NAME|FILE] [--scenario-list] [--faults NAME|FILE] \
                     [--trace-out FILE] [--metrics-json FILE] [--events-out FILE] [--json FILE] \
                     [table1 switch recover table2 fig4 \
                     affinity race detection fig7 baseline areasweep userprober \
                     preemption portability threshold predictor remediation \
                     kprobertrace telemetry analysis grid faults bench [bench] trajectory all]"
                );
                std::process::exit(0);
            }
            other if !other.starts_with('-') => experiments.push(other.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
    }
    if experiments.is_empty() {
        // Bare --trace-out/--metrics-json means "give me the telemetry
        // artifacts", not "run everything"; bare --analyze likewise means
        // "run the analysis gate", and bare --faults means "run the fault
        // campaign".
        if analyze {
            experiments.push("analysis".to_string());
        } else if json_out.is_some() {
            // Bare --json means "measure and snapshot the hot path".
            experiments.push("bench".to_string());
        } else if trace_out.is_some() || metrics_json.is_some() {
            experiments.push("telemetry".to_string());
        } else if faults.is_some() || events_out.is_some() {
            // Bare --events-out means "give me the campaign event stream";
            // the fault campaign is the canonical observed experiment.
            experiments.push("faults".to_string());
        } else {
            experiments.push("all".to_string());
        }
    }
    let scenario_set = scenario.is_some();
    let faults_set = faults.is_some();
    let mut faults_name = None;
    let mut scenario = scenario.unwrap_or_else(Scenario::paper);
    if let Some((name, plan)) = faults {
        scenario.faults = plan;
        faults_name = Some(name);
    }
    Opts {
        full,
        seed,
        jobs,
        metrics,
        analyze,
        progress,
        trace_out,
        metrics_json,
        events_out,
        json_out,
        scenario,
        scenario_set,
        faults_set,
        faults_name,
        experiments,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    let want = |name: &str| opts.experiments.iter().any(|e| e == name || e == "all");
    // Canonical campaign events accumulated by the observed experiments
    // (faults, telemetry), written as one JSONL stream at exit. Merging at
    // the end keeps sequence numbers gapless across campaigns.
    let mut events: Vec<ObsEvent> = Vec::new();
    println!(
        "SATIN reproduction — seed {} — {} mode — {} worker(s)\n",
        opts.seed,
        if opts.full {
            "full (paper-scale)"
        } else {
            "quick"
        },
        opts.runner().jobs()
    );
    if want("table1") {
        run_table1(&opts);
    }
    if want("switch") {
        run_switch(&opts);
    }
    if want("recover") {
        run_recover(&opts);
    }
    if want("table2") || want("fig4") {
        run_table2_fig4(&opts);
    }
    if want("affinity") {
        run_affinity(&opts);
    }
    if want("race") {
        run_race(&opts);
    }
    if want("detection") {
        run_detection(&opts, &mut events);
    }
    if want("fig7") {
        run_fig7(&opts);
    }
    if want("baseline") {
        run_baseline(&opts);
    }
    if want("areasweep") {
        run_areasweep(&opts);
    }
    if want("userprober") {
        run_userprober(&opts);
    }
    if want("preemption") {
        run_preemption(&opts);
    }
    if want("portability") {
        run_portability(&opts);
    }
    if want("threshold") {
        run_threshold(&opts);
    }
    if want("predictor") {
        run_predictor(&opts);
    }
    if want("remediation") {
        run_remediation(&opts);
    }
    if want("kprobertrace") {
        run_kprober_trace(&opts);
    }
    if want("telemetry") {
        run_telemetry(&opts, &mut events);
    }
    // Grid is a cross-scenario sweep, not a paper artifact, so `all` skips
    // it — ask for it by name. Same for the fault campaign.
    if opts.experiments.iter().any(|e| e == "grid") {
        run_grid(&opts);
    }
    if opts.experiments.iter().any(|e| e == "faults") {
        run_faults(&opts, &mut events);
    }
    // Bench reads the wall clock, so its numbers are machine-local; like
    // grid/faults it runs only by name. `repro bench trajectory` skips the
    // measurement and audits the committed snapshots instead.
    let trajectory = opts.experiments.iter().any(|e| e == "trajectory");
    if opts.experiments.iter().any(|e| e == "bench") && !trajectory {
        run_bench(&opts);
    }
    if let Some(path) = &opts.events_out {
        let mut stream = EventStream::new();
        for e in events {
            stream.push(e);
        }
        std::fs::write(path, stream.to_jsonl())
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        // Stderr: stdout is byte-compared across --jobs and this line is
        // the only host-facing confirmation.
        eprintln!("wrote {} campaign events to {path}", stream.len());
    }
    let mut failed = false;
    if trajectory {
        failed |= !run_trajectory();
    }
    if (want("analysis") || opts.analyze) && !run_analysis(&opts) {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// `repro bench trajectory`: parse every committed `BENCH_*.json` in the
/// working directory, print the delta table, and gate the newest snapshot
/// against its predecessor. Returns `false` (process exits nonzero) on a
/// regression beyond [`TRAJECTORY_TOLERANCE`].
fn run_trajectory() -> bool {
    let mut files: Vec<(String, String)> = Vec::new();
    let dir = std::fs::read_dir(".").unwrap_or_else(|e| die(&format!("reading .: {e}")));
    for entry in dir.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            let text = std::fs::read_to_string(entry.path())
                .unwrap_or_else(|e| die(&format!("reading {name}: {e}")));
            files.push((name, text));
        }
    }
    files.sort();
    println!("== Bench trajectory: committed BENCH_*.json snapshots ==");
    let traj = Trajectory::from_texts(&files).unwrap_or_else(|e| die(&e));
    print!("{}", traj.delta_table());
    match traj.gate(TRAJECTORY_TOLERANCE) {
        GateVerdict::SinglePoint => {
            println!("gate: single snapshot, nothing to regress against\n");
            true
        }
        GateVerdict::Pass { detail } => {
            println!("gate: PASS — {detail}\n");
            true
        }
        GateVerdict::Fail { detail } => {
            println!("gate: FAIL — {detail}\n");
            false
        }
    }
}

/// `rustc --version` of the toolchain on PATH — the host fingerprint the
/// bench snapshot records (the library takes it as a string; spawning
/// processes is the binary's job).
fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn run_bench(o: &Opts) {
    println!("== Hot-path microbenchmarks (ROADMAP item 1 trajectory) ==");
    let report = perf::run(!o.full, o.seed, &rustc_version());
    print!("{report}");
    if report.seeds_per_sec.speedup < 3.0 {
        println!(
            "   WARNING: seeds/sec speedup {:.2}x is below the 3x trajectory gate",
            report.seeds_per_sec.speedup
        );
    }
    if let Some(path) = &o.json_out {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("wrote bench snapshot to {path}");
    }
    println!();
}

fn run_grid(o: &Opts) {
    let mut grid = if o.scenario_set {
        ScenarioGrid::new(vec![o.scenario.clone()], o.seed)
    } else {
        ScenarioGrid::builtins(o.seed)
    };
    for sc in &mut grid.scenarios {
        if !sc.faults.is_empty() {
            // The grid's runner has no salvage path; the `faults`
            // experiment is the fault-aware sweep.
            println!("   (note: grid ignores the fault plan; use the `faults` experiment)");
            sc.faults = FaultPlan::default();
        }
    }
    if !o.full {
        // Quick mode shrinks every campaign to one sweep of the 19 areas
        // over 2 seeds; --full honours each scenario's declared shape.
        for sc in &mut grid.scenarios {
            sc.campaign.rounds = 19;
            sc.campaign.tgoal = SimDuration::from_millis(9_500);
            sc.campaign.seeds = 2;
        }
    }
    let campaigns: usize = grid.scenarios.iter().map(|s| s.campaign.seeds).sum();
    println!(
        "== Grid sweep: detection campaign across {} scenario(s), {} campaigns ==",
        grid.scenarios.len(),
        campaigns
    );
    print!("{}", grid.run(&o.runner()));
    println!();
}

/// The fault campaign's canonical seeds: 42 is the seed the built-in
/// `smoke`/`chaos` plans abort, 7 and 1009 prove its neighbours survive.
const FAULT_SEEDS: [u64; 3] = [7, 42, 1009];

fn run_faults(o: &Opts, events: &mut Vec<ObsEvent>) {
    let mut timer = PhaseTimer::start();
    timer.phase("assemble");
    // The fault axis: the attached plan when `--faults` (or the scenario
    // file) gave one, otherwise every built-in plan. The plan name labels
    // the campaign's event stream (`faults/<name>`).
    let plans: Vec<(String, FaultPlan)> = if o.faults_set || !o.scenario.faults.is_empty() {
        let name = o.faults_name.clone().unwrap_or_else(|| "selected".into());
        vec![(name, o.scenario.faults)]
    } else {
        ["none", "smoke", "chaos"]
            .into_iter()
            .map(|n| {
                let plan = satin_scenario::builtin_fault_plan(n).expect("built-in fault plan");
                (n.to_string(), plan)
            })
            .collect()
    };
    let base = if o.full {
        detection::DetectionConfig::paper(o.seed)
    } else {
        detection::DetectionConfig::quick(o.seed)
    };
    println!(
        "== Fault campaign: detection under injected faults ({} plan(s) x seeds {:?}) ==",
        plans.len(),
        FAULT_SEEDS
    );
    println!("   (failed seeds salvage as rows, not panics; byte-identical for any --jobs)");
    let mut t = Table::new(vec![
        "Plan".into(),
        "Seed".into(),
        "Outcome".into(),
        "Attempts".into(),
        "Rounds".into(),
        "Detected".into(),
        "Faults".into(),
        "Error".into(),
    ]);
    for c in 1..=6 {
        t.align(c, Align::Right);
    }
    timer.phase("simulate");
    let mut salvaged = 0usize;
    for (name, plan) in &plans {
        let mut sc = o.scenario.clone();
        sc.faults = *plan;
        let label = format!("faults/{name}");
        // Canonical events always; the live channel (worker ids, host
        // times) only when someone is watching.
        let (obs, renderer) = if o.progress {
            let (obs, rx) = CampaignObs::with_live(&label, LIVE_CHANNEL_CAPACITY);
            (obs, Some(ProgressRenderer::spawn(rx, true)))
        } else {
            (CampaignObs::new(&label), None)
        };
        let (outcomes, stream) =
            detection::run_many_faulted_observed(&sc, base, &FAULT_SEEDS, &o.runner(), &obs);
        if let Some(renderer) = renderer {
            // Capture the drop count, then drop the observer — closing the
            // last live sender is what lets the drain thread exit.
            let dropped = obs.live_dropped();
            drop(obs);
            eprint!("{}", renderer.finish(dropped).render());
        }
        events.extend(stream.events().iter().cloned());
        for out in &outcomes {
            salvaged += out.is_failed() as usize;
            let (status, rounds, detected, faults) = match out.value() {
                Some(r) => (
                    "ok",
                    r.rounds.to_string(),
                    r.area14_detections.to_string(),
                    r.metrics.faults_injected().to_string(),
                ),
                None => ("FAILED", "-".into(), "-".into(), "-".into()),
            };
            t.row(vec![
                name.to_string(),
                out.seed().to_string(),
                status.into(),
                out.attempts().to_string(),
                rounds,
                detected,
                faults,
                out.error().unwrap_or("-").to_string(),
            ]);
        }
    }
    timer.phase("analyze");
    println!("{t}");
    println!(
        "{} campaign(s), {} salvaged as failed rows\n",
        plans.len() * FAULT_SEEDS.len(),
        salvaged
    );
    timer.stop();
    if o.progress {
        eprintln!("{}", timer.render());
    }
}

fn run_analysis(o: &Opts) -> bool {
    use satin_bench::analysis;
    let base = if o.full {
        detection::DetectionConfig::paper(o.seed)
    } else {
        detection::DetectionConfig::quick(o.seed)
    };
    println!(
        "== Analysis: happens-before race detection + Eq.1/Eq.2 audit \
         ({} rounds, seed {}) ==",
        base.rounds, o.seed
    );
    let run = analysis::analyze_campaign(base);
    print!("{}", run.render());
    if run.is_clean() {
        println!("analysis: CLEAN\n");
    } else {
        println!("analysis: FAILED\n");
    }
    run.is_clean()
}

fn run_telemetry(o: &Opts, events: &mut Vec<ObsEvent>) {
    use satin_bench::telemetry_report::{run_traced_race_scenario, TelemetryReport};
    println!("== Telemetry: span timelines and campaign histograms ==");
    let horizon = SimDuration::from_secs(if o.full { 30 } else { 8 });
    let race = run_traced_race_scenario(&o.scenario, o.seed, horizon);
    println!(
        "traced race: seed {}, {:.0} s horizon, {} spans / {} instants, {} publications",
        o.seed,
        horizon.as_secs_f64(),
        race.timeline.len(),
        race.timeline.instants().len(),
        race.metrics.publications
    );
    if let Some(path) = &o.trace_out {
        std::fs::write(path, race.chrome_trace())
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("wrote Chrome trace_event JSON to {path} (open at ui.perfetto.dev)");
    }
    // Campaign aggregates: a small fleet through the shared runner, so the
    // merged report — and its JSON — is byte-identical for any --jobs.
    let mut base = if o.full {
        detection::DetectionConfig::paper(o.seed)
    } else {
        detection::DetectionConfig::quick(o.seed)
    };
    base.telemetry = true;
    let seeds: Vec<u64> = (0..3).map(|i| o.seed.wrapping_add(i)).collect();
    // The fleet keeps the scenario's fault plan: failed seeds salvage as
    // retry/salvage counters instead of killing the merge, and the fault
    // counters surface in the JSON.
    let (obs, renderer) = if o.progress {
        let (obs, rx) = CampaignObs::with_live("telemetry", LIVE_CHANNEL_CAPACITY);
        (obs, Some(ProgressRenderer::spawn(rx, true)))
    } else {
        (CampaignObs::new("telemetry"), None)
    };
    let (outcomes, stream) =
        detection::run_many_faulted_observed(&o.scenario, base, &seeds, &o.runner(), &obs);
    if let Some(renderer) = renderer {
        let dropped = obs.live_dropped();
        drop(obs);
        eprint!("{}", renderer.finish(dropped).render());
    }
    events.extend(stream.events().iter().cloned());
    let report = TelemetryReport::of_salvaged(&outcomes, |r| &r.metrics);
    print!("{report}");
    if let Some(path) = &o.metrics_json {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("wrote merged telemetry JSON to {path}");
    }
    println!();
}

fn run_kprober_trace(o: &Opts) {
    use satin_attack::kprober::ProberVariant;
    let rounds = if o.full { 120 } else { 40 };
    println!("== §III-C1: KProber-I's own traces vs SATIN ==");
    println!("   (the hijacked IRQ vector entry lives in monitored area 0)");
    let mut t = Table::new(vec![
        "Prober".into(),
        "Vector-area alarms".into(),
        "Syscall-area alarms".into(),
    ]);
    for c in 1..=2 {
        t.align(c, Align::Right);
    }
    for (variant, label) in [
        (ProberVariant::KProberI, "KProber-I"),
        (ProberVariant::KProberII, "KProber-II"),
    ] {
        let (vec_alarms, sys_alarms) =
            ablation::kprober_trace_detection(variant, rounds, SimDuration::from_secs(10), o.seed);
        t.row(vec![
            label.to_string(),
            vec_alarms.to_string(),
            sys_alarms.to_string(),
        ]);
    }
    println!("{t}");
}

fn run_remediation(o: &Opts) {
    use satin_core::{Satin, SatinConfig};
    use satin_sim::SimTime;
    println!("== Extension: alarm remediation (RKP-style golden-copy repair) ==");
    println!("   (a persistent, non-hiding hijack; SATIN report-only vs remediate)");
    let horizon = if o.full { 40 } else { 10 };
    let mut t = Table::new(vec![
        "Mode".into(),
        "Alarms".into(),
        "Repairs".into(),
        "Hijack uptime".into(),
    ]);
    for c in 1..=3 {
        t.align(c, Align::Right);
    }
    for remediate in [false, true] {
        let mut cfg = SatinConfig::paper();
        cfg.tgoal = SimDuration::from_millis(1900); // tp = 100 ms
        cfg.remediate = remediate;
        let mut sys = satin_system::SystemBuilder::new()
            .seed(o.seed)
            .trace(false)
            .build();
        let (satin, handle) = Satin::new(cfg);
        sys.install_secure_service(satin);
        let addr = sys
            .layout()
            .syscall_entry_addr(satin_mem::layout::GETTID_NR);
        let evil = satin_mem::image::hijacked_entry_bytes(sys.layout(), 4);
        sys.mem_mut().write_unchecked(addr, &evil).unwrap();
        sys.run_until(SimTime::from_secs(horizon));
        // Uptime: report-only leaves the hijack forever; remediation kills
        // it at the first area-14 alarm.
        let first_repair = handle
            .alarms()
            .first()
            .map(|a| a.at.as_secs_f64())
            .unwrap_or(horizon as f64);
        let uptime = if remediate {
            first_repair / horizon as f64
        } else {
            1.0
        };
        t.row(vec![
            if remediate {
                "remediate".into()
            } else {
                "report-only (paper)".into()
            },
            handle.alarms().len().to_string(),
            handle.repairs().to_string(),
            fmt_percent(uptime, 1),
        ]);
    }
    println!("{t}");
}

fn run_predictor(o: &Opts) {
    use satin_attack::predictor::{deploy_predictive_evader, PredictorConfig};
    use satin_core::{CorePolicy, Satin, SatinConfig};
    use satin_hw::CoreId;
    use satin_sim::SimTime;
    println!("== Ablation A6: schedule prediction vs random wake-up (§V-C) ==");
    println!("   (oracle attacker knows the exact period and phase)");
    let horizon = if o.full { 60 } else { 25 };
    let mut t = Table::new(vec![
        "Wake policy".into(),
        "Area-14 checks".into(),
        "Detections".into(),
    ]);
    for c in 1..=2 {
        t.align(c, Align::Right);
    }
    for randomize in [false, true] {
        let mut cfg = SatinConfig::paper();
        cfg.tgoal = SimDuration::from_millis(500 * 19);
        cfg.randomize_wake = randomize;
        cfg.core_policy = CorePolicy::Fixed(CoreId::new(0));
        let mut sys = satin_system::SystemBuilder::new()
            .seed(o.seed.wrapping_add(randomize as u64))
            .trace(false)
            .build();
        let (satin, handle) = Satin::new(cfg);
        sys.install_secure_service(satin);
        let predictor = PredictorConfig::oracle(SimDuration::from_millis(500), SimTime::ZERO);
        let _ = deploy_predictive_evader(&mut sys, predictor, SimTime::ZERO);
        sys.run_until(SimTime::from_secs(horizon));
        let rounds = handle.rounds();
        let area = satin_mem::PAPER_SYSCALL_AREA;
        let checks = rounds.iter().filter(|r| r.area == area).count();
        let caught = rounds
            .iter()
            .filter(|r| r.area == area && r.tampered)
            .count();
        t.row(vec![
            if randomize {
                "random (tp ± td)".into()
            } else {
                "fixed period".into()
            },
            checks.to_string(),
            caught.to_string(),
        ]);
    }
    println!("{t}");
}

fn run_threshold(o: &Opts) {
    println!("== §VII-B: attacker threshold sensitivity ==");
    println!("   (multiples of the learned 1.8e-3 s threshold)");
    let factors = [0.08, 0.5, 1.0, 2.0, 4.0];
    let pts = threshold_sweep::sweep(&factors, o.seed);
    let mut t = Table::new(vec![
        "Threshold".into(),
        "False sessions/min".into(),
        "Caught rounds".into(),
        "Attack uptime".into(),
    ]);
    for c in 1..=3 {
        t.align(c, Align::Right);
    }
    for p in &pts {
        t.row(vec![
            format!("{} s", fmt_sci(p.threshold_secs, 2)),
            format!("{:.1}", p.false_sessions_per_min),
            format!("{}/{}", p.caught_rounds, p.total_rounds),
            fmt_percent(p.attack_uptime, 1),
        ]);
    }
    println!("{t}");
}

fn run_userprober(o: &Opts) {
    use satin_attack::kprober::ProberVariant;
    let trials = if o.full { 20 } else { 5 };
    println!("== §III-B1: user-level prober capability ({trials} scans/config) ==");
    println!("   paper: Tns_delay < 5.97e-3 s while one kernel check takes 8.04e-2 s");
    let mut t = Table::new(vec![
        "Prober / load".into(),
        "Mean delay".into(),
        "Max delay".into(),
        "Missed".into(),
        "Check time".into(),
    ]);
    for c in 1..=4 {
        t.align(c, Align::Right);
    }
    for (variant, label) in [
        (ProberVariant::UserLevel, "user-level"),
        (ProberVariant::KProberII, "KProber-II"),
    ] {
        for load in [0usize, 18] {
            let r = userprober::measure(userprober::UserProberConfig {
                variant,
                load_tasks: load,
                trials,
                seed: o.seed.wrapping_add(load as u64),
            });
            t.row(vec![
                format!("{label} ({load} load tasks)"),
                if r.delays.count > 0 {
                    format!("{} s", fmt_sci(r.delays.mean, 2))
                } else {
                    "-".into()
                },
                if r.delays.count > 0 {
                    format!("{} s", fmt_sci(r.delays.max, 2))
                } else {
                    "-".into()
                },
                r.missed.to_string(),
                format!("{} s", fmt_sci(r.check_secs, 2)),
            ]);
        }
    }
    println!("{t}");
}

fn run_preemption(o: &Opts) {
    let rounds = if o.full { 120 } else { 40 };
    println!("== Ablation A4: preemptive vs non-preemptive secure world ==");
    println!("   (interrupt storm at 60% CPU; §II-B / §V-B's SCR_EL3.IRQ choice)");
    let (nonpre, pre) =
        ablation::preemption_ablation(0.6, rounds, SimDuration::from_secs(10), o.seed);
    let mut t = Table::new(vec![
        "Configuration".into(),
        "Attacked rounds".into(),
        "Detections".into(),
        "Detection rate".into(),
    ]);
    for c in 1..=3 {
        t.align(c, Align::Right);
    }
    for out in [&nonpre, &pre] {
        t.row(vec![
            out.defense.clone(),
            out.attacked_rounds.to_string(),
            out.detections.to_string(),
            fmt_percent(out.detection_rate(), 0),
        ]);
    }
    println!("{t}");
}

fn run_portability(o: &Opts) {
    let rounds = if o.full { 60 } else { 25 };
    println!("== Ablation A5: SATIN across core counts (§VII-D portability) ==");
    let outcomes =
        ablation::core_count_sweep(&[2, 4, 8], rounds, SimDuration::from_secs(10), o.seed);
    let mut t = Table::new(vec![
        "Topology".into(),
        "Attacked rounds".into(),
        "Detections".into(),
        "Attack uptime".into(),
    ]);
    for c in 1..=3 {
        t.align(c, Align::Right);
    }
    for (_, out) in &outcomes {
        t.row(vec![
            out.defense.clone(),
            out.attacked_rounds.to_string(),
            out.detections.to_string(),
            fmt_percent(out.attack_uptime, 1),
        ]);
    }
    println!("{t}");
}

fn run_table1(o: &Opts) {
    let rounds = if o.full { 50 } else { 10 };
    println!("== TABLE I: Secure World Introspection Time ({rounds} rounds/cell) ==");
    println!("   paper: A53 hash avg 1.07e-8 [9.23e-9, 1.14e-8]; A57 hash avg 6.71e-9 [6.67e-9, 7.50e-9]");
    println!("          A53 snap avg 1.08e-8 [9.24e-9, 1.57e-8]; A57 snap avg 6.75e-9 [6.67e-9, 7.83e-9]");
    let rows = table1::run_scenario(&o.scenario, rounds, o.seed);
    let mut t = Table::new(vec![
        "Core-Strategy".into(),
        "Average".into(),
        "Max".into(),
        "Min".into(),
        "Secure mem".into(),
    ]);
    for c in 1..=4 {
        t.align(c, Align::Right);
    }
    for r in &rows {
        t.row(vec![
            format!("{}-{}", r.kind, r.strategy),
            format!("{} s/B", fmt_sci(r.per_byte.mean, 2)),
            format!("{} s/B", fmt_sci(r.per_byte.max, 2)),
            format!("{} s/B", fmt_sci(r.per_byte.min, 2)),
            format!("{} B", r.secure_memory_bytes),
        ]);
    }
    println!("{t}");
}

fn run_switch(o: &Opts) {
    let rounds = if o.full { 50 } else { 30 };
    println!("== §IV-B1: World-switch latency Ts_switch ({rounds} switches/kind) ==");
    println!("   paper: 2.38e-6 .. 3.60e-6 s, similar on A53 and A57");
    let mut t = Table::new(vec!["Core".into(), "Mean".into(), "Model bounds".into()]);
    t.align(1, Align::Right);
    for kind in o.scenario.platform.kinds_present() {
        let s = switch::measure_scenario(&o.scenario, kind, rounds, o.seed);
        t.row(vec![
            kind.to_string(),
            format!("{} s", fmt_sci(s.mean, 2)),
            format!("[{}, {}] s", fmt_sci(s.min, 2), fmt_sci(s.max, 2)),
        ]);
    }
    println!("{t}");
}

fn run_recover(o: &Opts) {
    let rounds = if o.full { 50 } else { 20 };
    println!("== §IV-B2: Trace recovery time Tns_recover ({rounds} hides/kind) ==");
    println!("   paper: A53 avg 5.80e-3 s; A57 avg 4.96e-3 s");
    let mut t = Table::new(vec![
        "Core".into(),
        "Average".into(),
        "Max".into(),
        "Min".into(),
    ]);
    for c in 1..=3 {
        t.align(c, Align::Right);
    }
    // kinds_present() lists A53 before A57, so on Juno the per-kind seed
    // offsets match the original hard-coded (A53, 0), (A57, 1) pairs.
    for (seed_off, kind) in o.scenario.platform.kinds_present().into_iter().enumerate() {
        let s = recover::measure_scenario(
            &o.scenario,
            kind,
            rounds,
            o.seed.wrapping_add(seed_off as u64),
        );
        t.row(vec![
            kind.to_string(),
            format!("{} s", fmt_sci(s.mean, 2)),
            format!("{} s", fmt_sci(s.max, 2)),
            format!("{} s", fmt_sci(s.min, 2)),
        ]);
    }
    println!("{t}");
}

fn run_table2_fig4(o: &Opts) {
    let (periods, rounds): (&[u64], usize) = if o.full {
        (&table2::PAPER_PERIODS_SECS, 50)
    } else {
        (&[8, 16, 30], 8)
    };
    println!("== TABLE II: Probing Threshold on Multi-Core ({rounds} rounds/period) ==");
    println!("   paper: 8s avg 2.61e-4; 16s 3.54e-4; 30s 4.21e-4; 120s 5.26e-4; 300s 6.61e-4; max ≈1.8e-3");
    let rows = table2::run_with(periods, rounds, o.seed, &o.runner());
    let mut t = Table::new(vec![
        "Probing Period".into(),
        "Average".into(),
        "Max".into(),
        "Min".into(),
    ]);
    for c in 1..=3 {
        t.align(c, Align::Right);
    }
    for r in &rows {
        t.row(vec![
            format!("{} s", r.period_secs),
            format!("{} s", fmt_sci(r.threshold.mean, 2)),
            format!("{} s", fmt_sci(r.threshold.max, 2)),
            format!("{} s", fmt_sci(r.threshold.min, 2)),
        ]);
    }
    println!("{t}");
    println!("== FIGURE 4: KProber Probing Threshold Stability ==");
    let boxes: Vec<(String, FiveNumber)> = rows
        .iter()
        .map(|r| (format!("{:>4} s", r.period_secs), r.boxplot.clone()))
        .collect();
    println!("{}", chart::boxplot_chart(&boxes, 60));
}

fn run_affinity(o: &Opts) {
    let (period, rounds) = if o.full { (30, 20) } else { (8, 6) };
    println!("== §IV-B2: Fixed-core vs all-core probing ({rounds} rounds @ {period}s) ==");
    println!("   paper: single-core thresholds ≈ 1/4 of all-core");
    let (all, single) = table2::single_vs_all(period, rounds, o.seed);
    println!(
        "all-core mean {} s; single-core mean {} s; ratio {:.2}\n",
        fmt_sci(all, 2),
        fmt_sci(single, 2),
        single / all
    );
}

fn run_race(o: &Opts) {
    println!("== §IV-C: Race condition analysis ==");
    let a = race::analyze();
    println!("   paper: S ≤ 1,218,351 bytes; ≈90% of the kernel unprotected");
    println!(
        "protected prefix S = {} bytes; unprotected fraction = {}",
        a.protected_prefix_bytes,
        fmt_percent(a.unprotected_fraction, 1)
    );
    let bound = a.protected_prefix_bytes;
    let sweep = race::equation1_sweep(
        &[0, bound / 2, bound - 1000, bound + 1000, 4 * bound],
        o.seed,
    );
    println!("Equation 1 sweep (byte offset -> attacker escapes):");
    for (s, escaped) in sweep {
        println!(
            "  offset {s:>9} B -> {}",
            if escaped { "ESCAPES" } else { "caught" }
        );
    }
    println!("\n== FIGURE 3: one-round timeline (naive monolithic scan vs TZ-Evader) ==");
    for e in race::timeline(o.seed).iter().take(14) {
        println!("  {e}");
    }
    println!();
}

fn run_detection(o: &Opts, events: &mut Vec<ObsEvent>) {
    if !o.scenario.faults.is_empty() {
        // A fault plan can abort seeds mid-campaign; route through the
        // salvaging runner so those surface as rows, not panics.
        return run_faults(o, events);
    }
    let mut base = if o.full {
        detection::DetectionConfig::paper(o.seed)
    } else {
        detection::DetectionConfig::quick(o.seed)
    };
    base.trace = o.metrics;
    // A small fleet of independent campaigns: the headline detection rate
    // comes from the aggregate, and the per-seed rows show its stability.
    let campaigns = if o.full { 4 } else { 3 };
    let seeds: Vec<u64> = (0..campaigns).map(|i| o.seed.wrapping_add(i)).collect();
    println!(
        "== §VI-B1: SATIN detection campaign ({} x {} rounds, Tgoal {}s) ==",
        campaigns,
        base.rounds,
        base.tgoal.as_secs_f64()
    );
    println!("   paper: 190 rounds, kernel x10, area 14 caught 10/10, prober reports all rounds,");
    println!("          avg area-14 gap ≈141 s, sweep ≈152 s (at tp = 8 s)");
    let results = detection::run_many_scenario(&o.scenario, base, &seeds, &o.runner());
    let mut t = Table::new(vec![
        "Seed".into(),
        "Rounds".into(),
        "Attacked".into(),
        "Detected".into(),
        "Early-warn".into(),
        "Prober".into(),
        "Gap (s)".into(),
    ]);
    for c in 1..=6 {
        t.align(c, Align::Right);
    }
    for (seed, r) in seeds.iter().zip(&results) {
        t.row(vec![
            seed.to_string(),
            r.rounds.to_string(),
            r.area14_attacked_checks.to_string(),
            r.area14_detections.to_string(),
            r.area14_early_warning_checks.to_string(),
            r.prober_sessions.to_string(),
            r.area14_mean_gap_secs
                .map(|g| format!("{g:.1}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{t}");
    let agg = detection::DetectionAggregate::of(&results);
    println!(
        "aggregate: {} rounds, {} attacked checks, {} detected ({}), {} false alarms",
        agg.rounds,
        agg.area14_attacked_checks,
        agg.area14_detections,
        fmt_percent(agg.detection_rate(), 1),
        agg.other_area_alarms
    );
    if let Some(g) = agg.mean_gap_secs {
        println!("mean gap between area-14 checks: {g:.1} s");
    }
    if let Some(s) = results[0].sweep_secs {
        println!("mean full-sweep time (seed {}): {s:.1} s", seeds[0]);
    }
    if o.metrics {
        println!(
            "-- machine counters (summed over {} campaigns) --",
            agg.campaigns
        );
        print_metrics(&agg.metrics);
    }
    println!();
}

fn print_metrics(m: &MetricsReport) {
    print!("{m}");
}

fn run_fig7(o: &Opts) {
    let duration = if o.full { 600 } else { 240 };
    println!("== FIGURE 7: SATIN overhead on UnixBench-like workloads ({duration}s/run) ==");
    println!("   paper: 1-task mean 0.711%, 6-task mean 0.848%;");
    println!("          worst: file copy 256B 3.556%, pipe-based context switching 3.912%");
    for tasks in [1usize, 6] {
        let report = fig7::run(tasks, duration, o.seed.wrapping_add(tasks as u64));
        println!("-- {tasks}-task --");
        println!("{}", chart::bar_chart(&report.bars(), 40, "%"));
        println!(
            "mean degradation: {}   worst: {} ({})\n",
            fmt_percent(report.mean_degradation(), 3),
            report.worst().map(|w| w.name.clone()).unwrap_or_default(),
            fmt_percent(report.worst().map(|w| w.degradation()).unwrap_or(0.0), 3),
        );
    }
}

fn run_baseline(o: &Opts) {
    println!("== Ablation A1: baselines vs TZ-Evader vs SATIN ==");
    println!("   paper: monolithic introspection (even randomized) is evaded; SATIN detects");
    let horizon = SimDuration::from_secs(if o.full { 10 } else { 3 });
    let fixed = ablation::baseline_vs_evader(
        satin_core::baseline::BaselineConfig::periodic_fixed(SimDuration::from_millis(400)),
        horizon,
        o.seed,
    );
    let random = ablation::baseline_vs_evader(
        satin_core::baseline::BaselineConfig::randomized(SimDuration::from_millis(400)),
        horizon,
        o.seed.wrapping_add(1),
    );
    let satin = ablation::satin_vs_evader(
        satin_core::SatinConfig::paper(),
        "SATIN",
        if o.full { 190 } else { 57 },
        SimDuration::from_secs(19),
        o.seed.wrapping_add(2),
    );
    let mut t = Table::new(vec![
        "Defense".into(),
        "Attacked rounds".into(),
        "Detections".into(),
        "Attack uptime".into(),
    ]);
    for c in 1..=3 {
        t.align(c, Align::Right);
    }
    for out in [&fixed, &random, &satin] {
        t.row(vec![
            out.defense.clone(),
            out.attacked_rounds.to_string(),
            out.detections.to_string(),
            fmt_percent(out.attack_uptime, 1),
        ]);
    }
    println!("{t}");
}

fn run_areasweep(o: &Opts) {
    println!("== Ablation A2: area-size sweep around the §V-B safety bound ==");
    let factors: &[f64] = if o.full {
        &[0.75, 1.0, 2.0, 4.0, 8.0]
    } else {
        &[0.7, 4.0, 8.0]
    };
    let rounds = if o.full { 120 } else { 40 };
    let pts = ablation::area_size_sweep(factors, rounds, SimDuration::from_secs(10), o.seed);
    let mut t = Table::new(vec![
        "Max area (bytes)".into(),
        "vs bound".into(),
        "Analytic protection".into(),
        "GETTID checks".into(),
        "Detections".into(),
    ]);
    for c in 0..=4 {
        t.align(c, Align::Right);
    }
    for ((size, analytic, out), f) in pts.iter().zip(factors) {
        t.row(vec![
            size.to_string(),
            format!("{f}x"),
            fmt_percent(*analytic, 0),
            out.attacked_rounds.to_string(),
            out.detections.to_string(),
        ]);
    }
    println!("{t}");
}
