//! Figure 7 — SATIN overhead on UnixBench-like workloads.
//!
//! Paper: enabling SATIN's self activation across all cores costs 0.711%
//! (1-task) and 0.848% (6-task) on average; the worst-degraded benchmarks
//! are `file copy 256B` (3.556%) and `pipe-based context switching`
//! (3.912%). We regenerate the study with the simulated UnixBench suite.

use satin_sim::SimDuration;
use satin_workload::{run_overhead_study, unixbench_suite, OverheadConfig, OverheadReport};

/// Runs the Figure 7 study for one task count.
///
/// `duration_secs` controls how long each benchmark runs (longer = more
/// introspection rounds sampled = tighter estimates; the repro binary uses
/// 600 s, tests use less).
pub fn run(tasks: usize, duration_secs: u64, seed: u64) -> OverheadReport {
    let mut config = OverheadConfig::paper(tasks, seed);
    config.duration = SimDuration::from_secs(duration_secs);
    run_overhead_study(&unixbench_suite(), config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure7() {
        // 240 s per run (30 rounds at tp = 8s): enough to see the shape.
        let report = run(1, 240, 51);
        let mean = report.mean_degradation();
        // Paper: 0.711% (1-task). Accept the right order of magnitude.
        assert!(
            (0.001..0.03).contains(&mean),
            "mean degradation {mean} out of band"
        );
        // Worst offenders are the paper's worst offenders.
        let worst = report.worst().unwrap();
        assert!(
            worst.name == "pipe-based context switching" || worst.name == "file copy 256B",
            "worst was {}",
            worst.name
        );
        // The compute kernels barely notice.
        let dhry = report
            .rows
            .iter()
            .find(|r| r.name == "dhrystone 2")
            .unwrap();
        assert!(
            dhry.degradation() < worst.degradation() / 3.0,
            "dhrystone {} vs worst {}",
            dhry.degradation(),
            worst.degradation()
        );
    }

    #[test]
    fn six_task_study_runs() {
        // Reduced suite for test time; full suite in the repro binary.
        let suite: Vec<_> = unixbench_suite().into_iter().take(4).collect();
        let mut config = OverheadConfig::paper(6, 52);
        config.duration = SimDuration::from_secs(120);
        let report = run_overhead_study(&suite, config);
        assert_eq!(report.tasks, 6);
        assert!(report.rows.iter().all(|r| r.score_on <= r.score_off * 1.01));
    }
}
