//! §IV-C and Figure 3 — the race condition between the two worlds.
//!
//! Analytical part: Equation 2's protected-prefix bound (1,218,351 bytes)
//! and the ≈90% unprotected fraction. Empirical part: a traced single-round
//! timeline (Figure 3's sequence — timer fire, world switch, scan start,
//! prober detection, recovery, restore vs byte-read instants), plus a
//! Monte-Carlo of the emergent race: the attacker escapes exactly when
//! Equation 1 holds.

use satin_attack::race::RaceParams;
use satin_attack::{TzEvader, TzEvaderConfig};
use satin_core::baseline::{BaselineConfig, NaiveIntrospection};
use satin_mem::PAPER_KERNEL_SIZE;
use satin_sim::{SimDuration, SimTime, TraceEvent};
use satin_system::SystemBuilder;

/// The analytical §IV-C numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceAnalysis {
    /// Equation 2's protected prefix S, bytes (paper: 1,218,351).
    pub protected_prefix_bytes: u64,
    /// Unprotected fraction of the paper kernel (paper: ≈0.90).
    pub unprotected_fraction: f64,
    /// The attacker's total evasion latency, seconds.
    pub evasion_latency_secs: f64,
}

/// Computes the paper's worst-case analysis.
pub fn analyze() -> RaceAnalysis {
    let p = RaceParams::paper_worst_case();
    RaceAnalysis {
        protected_prefix_bytes: p.protected_prefix_bytes(),
        unprotected_fraction: p.unprotected_fraction(PAPER_KERNEL_SIZE),
        evasion_latency_secs: p.evasion_latency(),
    }
}

/// Runs one traced naive-introspection round against TZ-Evader and returns
/// the Figure 3 timeline (secure/attack trace events).
pub fn timeline(seed: u64) -> Vec<TraceEvent> {
    let mut sys = SystemBuilder::new().seed(seed).trace(true).build();
    let (svc, _handle) =
        NaiveIntrospection::new(BaselineConfig::randomized(SimDuration::from_millis(100)));
    sys.install_secure_service(svc);
    let _evader = TzEvader::deploy(&mut sys, TzEvaderConfig::paper_default());
    // One round of a full-kernel scan takes ≤ 130 ms; run enough to cover
    // the fire, the evasion, and the exit.
    sys.run_until(SimTime::from_millis(450));
    sys.trace()
        .iter()
        .filter(|e| {
            e.category.as_str().starts_with("secure.") || e.category.as_str().starts_with("attack.")
        })
        .cloned()
        .collect()
}

/// Empirical check of Equation 1 through the scan-window TOCTTOU
/// machinery: a malicious byte sits `s` bytes into a monolithic scan; the
/// evader restores it `Tns_delay + Tns_recover` after the scan's world
/// switch. The attacker escapes iff the byte's read instant falls after the
/// restore — which is precisely `Ts_switch + s·Ts_1byte > Tns_delay +
/// Tns_recover`. Returns `(s, escaped)` pairs.
pub fn equation1_sweep(offsets: &[u64], _seed: u64) -> Vec<(u64, bool)> {
    use satin_mem::{MemRange, PhysAddr, ScanWindow};

    let params = RaceParams::paper_worst_case();
    offsets
        .iter()
        .map(|&s| {
            assert!(s < PAPER_KERNEL_SIZE, "offset beyond kernel");
            // Worst case for the attacker: fastest scanner (A57 minimum
            // rate), slowest recovery — exactly §IV-C's setting.
            let t_fire = SimTime::from_millis(10);
            let switch = SimDuration::from_secs_f64(params.ts_switch);
            let rate = params.ts_1byte;
            let mut snapshot = vec![0u8; PAPER_KERNEL_SIZE as usize];
            snapshot[s as usize] = 0xEE; // the malicious byte
            let mut window = ScanWindow::begin(
                MemRange::new(PhysAddr::new(0), PAPER_KERNEL_SIZE),
                t_fire + switch,
                rate,
                snapshot,
            );
            // The evader notices the switch after Tns_delay and finishes
            // recovery Tns_recover later, restoring the byte to 0x00.
            let restore_at = t_fire
                + SimDuration::from_secs_f64(params.tns_sched + params.tns_threshold)
                + SimDuration::from_secs_f64(params.tns_recover);
            window.note_write(restore_at, PhysAddr::new(s), &[0x00]);
            let escaped = window.observed()[s as usize] == 0x00;
            (s, escaped)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_matches_paper() {
        let a = analyze();
        assert!((1_218_000..=1_218_700).contains(&a.protected_prefix_bytes));
        assert!((0.89..0.91).contains(&a.unprotected_fraction));
        assert!((8.0e-3..8.3e-3).contains(&a.evasion_latency_secs));
    }

    #[test]
    fn timeline_shows_figure3_sequence() {
        let events = timeline(17);
        let cats: Vec<&str> = events.iter().map(|e| e.category.as_str()).collect();
        // The Figure 3 ordering: secure entry, scan start, attack hides,
        // restore, secure exit.
        let pos = |c: &str| cats.iter().position(|x| *x == c);
        let enter = pos("secure.enter").expect("secure entry traced");
        let scan = pos("secure.scan").expect("scan traced");
        let hide = pos("attack.hide").expect("hide traced");
        let restore = pos("attack.restore").expect("restore traced");
        assert!(enter <= scan);
        assert!(scan <= hide, "hide before the scan started");
        assert!(hide < restore);
        // And the restore beat the (monolithic) scan's arrival at area 14 —
        // i.e. the attack install trace exists before the round but no alarm
        // category appears.
        assert!(pos("satin.alarm").is_none());
    }

    #[test]
    fn equation1_emerges_from_the_scan_window() {
        // Invariant 7 (DESIGN.md): the simulated race resolves exactly as
        // Equation 1 predicts, byte for byte around the analytical bound.
        let bound = analyze().protected_prefix_bytes;
        let offsets = [
            0,
            bound / 2,
            bound - 1_000,
            bound + 1_000,
            2 * bound,
            satin_mem::PAPER_KERNEL_SIZE - 1,
        ];
        let results = equation1_sweep(&offsets, 23);
        for (s, escaped) in results {
            let predicted = RaceParams::paper_worst_case().attacker_escapes(s);
            assert_eq!(
                escaped, predicted,
                "offset {s}: simulated {escaped}, Eq.1 predicts {predicted}"
            );
        }
    }
}
