//! Ablations: baselines vs SATIN, and the design choices DESIGN.md calls out.
//!
//! - **Baseline comparison** (§IV vs §VI): the monolithic-scan baselines
//!   (fixed-period and fully randomized) lose to TZ-Evader; SATIN wins.
//! - **Area-size sweep** (§V-B): detection survives while areas respect the
//!   safety bound and collapses beyond it.
//! - **Core affinity** (§IV-B2 / §V-D): fixed-core introspection is easier
//!   to probe than random-core.

use satin_attack::prober::{probing_threshold_campaign, ProbeTargets};
use satin_attack::race::RaceParams;
use satin_attack::{TzEvader, TzEvaderConfig};
use satin_core::baseline::{BaselineConfig, NaiveIntrospection};
use satin_core::satin::AreaPolicy;
use satin_core::{Satin, SatinConfig};
use satin_hw::CoreId;
use satin_sim::{SimDuration, SimTime};
use satin_system::SystemBuilder;

/// Outcome of pitting one defense against TZ-Evader.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseOutcome {
    /// Defense label.
    pub defense: String,
    /// Introspection rounds that covered the attacked bytes while the
    /// hijack was present at round start.
    pub attacked_rounds: u64,
    /// Of those, rounds that detected the tampering.
    pub detections: u64,
    /// Fraction of simulated time the hijack was in place.
    pub attack_uptime: f64,
}

impl DefenseOutcome {
    /// Detection rate over attacked rounds (0 when never attacked-checked).
    pub fn detection_rate(&self) -> f64 {
        if self.attacked_rounds == 0 {
            0.0
        } else {
            self.detections as f64 / self.attacked_rounds as f64
        }
    }
}

/// Pits a monolithic-scan baseline against TZ-Evader.
pub fn baseline_vs_evader(
    config: BaselineConfig,
    horizon: SimDuration,
    seed: u64,
) -> DefenseOutcome {
    let mut sys = SystemBuilder::new().seed(seed).trace(false).build();
    let (svc, handle) = NaiveIntrospection::new(config);
    sys.install_secure_service(svc);
    let evader = TzEvader::deploy(&mut sys, TzEvaderConfig::paper_default());
    sys.run_until(SimTime::ZERO + horizon);
    let uptime = evader.rootkit.active_time(sys.now()).as_secs_f64() / sys.now().as_secs_f64();
    // Every monolithic round covers the attacked bytes; count rounds where
    // the hijack was live at round start as attacked.
    let label = if config.randomize_wake || config.randomize_core {
        "baseline (random time+core, monolithic)"
    } else {
        "baseline (fixed period, monolithic)"
    };
    DefenseOutcome {
        defense: label.to_string(),
        attacked_rounds: handle.rounds(),
        detections: handle.tampered_rounds(),
        attack_uptime: uptime,
    }
}

/// Pits SATIN (optionally with a custom area policy / wake policy) against
/// TZ-Evader. `tgoal` is scaled down from the paper's 152 s for tractable
/// sweeps; the race inside a round is unaffected by `tgoal`.
pub fn satin_vs_evader(
    mut satin_cfg: SatinConfig,
    label: &str,
    rounds: usize,
    tgoal: SimDuration,
    seed: u64,
) -> DefenseOutcome {
    satin_cfg.tgoal = tgoal;
    let mut sys = SystemBuilder::new().seed(seed).trace(false).build();
    let (satin, handle) = Satin::new(satin_cfg);
    let plan = satin
        .config()
        .build_plan(&satin_mem::KernelLayout::paper())
        .expect("plan");
    sys.install_secure_service(satin);
    let evader = TzEvader::deploy(&mut sys, TzEvaderConfig::paper_default());
    let hard_stop = SimTime::ZERO + tgoal * 40;
    while handle.round_count() < rounds && sys.now() < hard_stop {
        sys.run_for(tgoal / 19);
    }
    // Identify rounds covering the syscall entry under the active hijack.
    let gettid = satin_mem::KernelLayout::paper().syscall_entry_addr(satin_mem::layout::GETTID_NR);
    let target_area = plan.area_of(gettid).expect("gettid inside plan");
    let mut attacked = 0;
    let mut detected = 0;
    for r in handle.rounds().iter().take(rounds) {
        if r.area == target_area && evader.rootkit.was_active_at(r.fired) {
            attacked += 1;
            if r.tampered {
                detected += 1;
            }
        }
    }
    let uptime = evader.rootkit.active_time(sys.now()).as_secs_f64() / sys.now().as_secs_f64();
    DefenseOutcome {
        defense: label.to_string(),
        attacked_rounds: attacked,
        detections: detected,
        attack_uptime: uptime,
    }
}

/// Analytic coverage of a plan: the fraction of kernel bytes whose read
/// instant beats the worst-case evasion latency (i.e. bytes at offsets
/// below Equation 2's protected prefix within their own area). Plans that
/// respect the §V-B bound score 1.0; a monolithic plan scores ≈0.10.
pub fn protected_fraction(plan: &satin_core::AreaPlan) -> f64 {
    let s = RaceParams::paper_worst_case().protected_prefix_bytes();
    let protected: u64 = plan.areas().iter().map(|a| a.range.len().min(s)).sum();
    protected as f64 / plan.total_bytes() as f64
}

/// The area-size sweep: SATIN with greedy plans at multiples of the §V-B
/// bound. Returns `(max_area_bytes, analytic_protected_fraction, outcome)`
/// per point. The empirical detection column tracks the one attacked target
/// (GETTID), whose fate above the bound depends on its offset within its
/// area; the analytic column is the monotone guarantee.
pub fn area_size_sweep(
    factors: &[f64],
    rounds: usize,
    tgoal: SimDuration,
    seed: u64,
) -> Vec<(u64, f64, DefenseOutcome)> {
    let bound = RaceParams::paper_worst_case().max_safe_area_bytes();
    factors
        .iter()
        .filter_map(|f| {
            let max_size = ((bound as f64) * f) as u64;
            let mut cfg = SatinConfig::paper();
            cfg.area_policy = AreaPolicy::Greedy { max_size };
            cfg.enforce_safety = false; // the sweep intentionally violates it
                                        // Skip infeasible points: greedy cannot split a single section,
                                        // so bounds below the largest section (811,080 B) are unusable.
            let Ok(plan) = cfg.build_plan(&satin_mem::KernelLayout::paper()) else {
                return None;
            };
            let analytic = protected_fraction(&plan);
            let label = format!("satin greedy ({}x bound)", f);
            let out = satin_vs_evader(cfg, &label, rounds, tgoal, seed.wrapping_add(*f as u64));
            Some((max_size, analytic, out))
        })
        .collect()
}

/// §IV-B2 / §V-D affinity ablation: probing threshold when introspection
/// uses a fixed core vs all cores. Returns `(all_cores_mean, fixed_mean)`.
pub fn affinity_probing(period: SimDuration, rounds: usize, seed: u64) -> (f64, f64) {
    let all = probing_threshold_campaign(seed, period, rounds, ProbeTargets::AllCores);
    let single = probing_threshold_campaign(
        seed.wrapping_add(1),
        period,
        rounds,
        ProbeTargets::Single {
            target: CoreId::new(2),
            observer: CoreId::new(1),
        },
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    (mean(&all), mean(&single))
}

/// Ablation A4 (§II-B / §V-B): preemptive vs non-preemptive secure world
/// under an attacker-driven interrupt storm. With `SCR_EL3.IRQ = 1` every
/// normal-world interrupt preempts the introspection, stretching rounds
/// past the safety bound; SATIN's `SCR_EL3.IRQ = 0` configuration pends
/// them and keeps the race won. Returns (non-preemptive, preemptive).
pub fn preemption_ablation(
    interrupt_load: f64,
    rounds: usize,
    tgoal: SimDuration,
    seed: u64,
) -> (DefenseOutcome, DefenseOutcome) {
    let run = |preemptive: bool, seed: u64| {
        let routing = if preemptive {
            satin_hw::gic::RoutingConfig::preemptive()
        } else {
            satin_hw::gic::RoutingConfig::satin()
        };
        let platform = satin_hw::Platform::new(
            satin_hw::Topology::juno_r1(),
            satin_hw::TimingModel::paper_calibrated(),
            routing,
        );
        let mut sys = SystemBuilder::new()
            .seed(seed)
            .platform(platform)
            .trace(false)
            .build();
        sys.set_ns_interrupt_load(interrupt_load);
        let mut cfg = SatinConfig::paper();
        cfg.tgoal = tgoal;
        let (satin, handle) = Satin::new(cfg);
        let plan = satin
            .config()
            .build_plan(&satin_mem::KernelLayout::paper())
            .expect("plan");
        sys.install_secure_service(satin);
        let evader = TzEvader::deploy(&mut sys, TzEvaderConfig::paper_default());
        let hard_stop = SimTime::ZERO + tgoal * 40;
        while handle.round_count() < rounds && sys.now() < hard_stop {
            sys.run_for(tgoal / 19);
        }
        let gettid =
            satin_mem::KernelLayout::paper().syscall_entry_addr(satin_mem::layout::GETTID_NR);
        let target_area = plan.area_of(gettid).expect("gettid inside plan");
        let mut attacked = 0;
        let mut detected = 0;
        for r in handle.rounds().iter().take(rounds) {
            if r.area == target_area && evader.rootkit.was_active_at(r.fired) {
                attacked += 1;
                if r.tampered {
                    detected += 1;
                }
            }
        }
        let uptime = evader.rootkit.active_time(sys.now()).as_secs_f64() / sys.now().as_secs_f64();
        DefenseOutcome {
            defense: if preemptive {
                format!("preemptive secure world (irq load {interrupt_load})")
            } else {
                "non-preemptive (SATIN's SCR_EL3.IRQ=0)".to_string()
            },
            attacked_rounds: attacked,
            detections: detected,
            attack_uptime: uptime,
        }
    };
    (run(false, seed), run(true, seed.wrapping_add(1)))
}

/// Ablation A5 (§VII-D portability): SATIN on other core counts. The
/// defense's guarantees are per-round (area size vs evasion latency), so
/// detection should hold from 2 cores up. Returns one outcome per topology.
pub fn core_count_sweep(
    core_counts: &[usize],
    rounds: usize,
    tgoal: SimDuration,
    seed: u64,
) -> Vec<(usize, DefenseOutcome)> {
    core_counts
        .iter()
        .map(|&n| {
            let platform = satin_hw::Platform::new(
                satin_hw::Topology::homogeneous(satin_hw::CoreKind::A53, n),
                satin_hw::TimingModel::paper_calibrated(),
                satin_hw::gic::RoutingConfig::satin(),
            );
            let mut sys = SystemBuilder::new()
                .seed(seed.wrapping_add(n as u64))
                .platform(platform)
                .trace(false)
                .build();
            let mut cfg = SatinConfig::paper();
            cfg.tgoal = tgoal;
            let (satin, handle) = Satin::new(cfg);
            let plan = satin
                .config()
                .build_plan(&satin_mem::KernelLayout::paper())
                .expect("plan");
            sys.install_secure_service(satin);
            let mut evader_cfg = TzEvaderConfig::paper_default();
            evader_cfg.recovery_core = CoreId::new(n - 1);
            let evader = TzEvader::deploy(&mut sys, evader_cfg);
            let hard_stop = SimTime::ZERO + tgoal * 40;
            while handle.round_count() < rounds && sys.now() < hard_stop {
                sys.run_for(tgoal / 19);
            }
            let gettid =
                satin_mem::KernelLayout::paper().syscall_entry_addr(satin_mem::layout::GETTID_NR);
            let target_area = plan.area_of(gettid).expect("gettid inside plan");
            let mut attacked = 0;
            let mut detected = 0;
            for r in handle.rounds().iter().take(rounds) {
                if r.area == target_area && evader.rootkit.was_active_at(r.fired) {
                    attacked += 1;
                    if r.tampered {
                        detected += 1;
                    }
                }
            }
            let uptime =
                evader.rootkit.active_time(sys.now()).as_secs_f64() / sys.now().as_secs_f64();
            (
                n,
                DefenseOutcome {
                    defense: format!("satin on {n}x A53"),
                    attacked_rounds: attacked,
                    detections: detected,
                    attack_uptime: uptime,
                },
            )
        })
        .collect()
}

/// §III-C1: "injecting a prober into the interrupt handler … may introduce
/// extra attacking trace for the defender to detect … which gives KProber-I
/// a larger chance to be recovered." KProber-I's hijacked IRQ vector entry
/// lives in the monitored kernel image and can never be restored while the
/// prober needs it — so SATIN flags area 0 (the vector table's area) on
/// every check, on top of any syscall-table alarms. KProber-II leaves no
/// such trace. Returns `(vector_area_alarms, syscall_area_alarms)` per
/// variant.
pub fn kprober_trace_detection(
    variant: satin_attack::kprober::ProberVariant,
    rounds: usize,
    tgoal: SimDuration,
    seed: u64,
) -> (u64, u64) {
    let mut cfg = SatinConfig::paper();
    cfg.tgoal = tgoal;
    let mut sys = SystemBuilder::new().seed(seed).trace(false).build();
    let (satin, handle) = Satin::new(cfg);
    sys.install_secure_service(satin);
    let mut evader_cfg = TzEvaderConfig::paper_default();
    evader_cfg.prober = variant;
    let _evader = TzEvader::deploy(&mut sys, evader_cfg);
    let hard_stop = SimTime::ZERO + tgoal * 40;
    while handle.round_count() < rounds && sys.now() < hard_stop {
        sys.run_for(tgoal / 19);
    }
    let layout = satin_mem::KernelLayout::paper();
    let vector_area = layout
        .vector_table()
        .map(|s| s.segment())
        .expect("paper layout has a vector table");
    let mut vec_alarms = 0;
    let mut sys_alarms = 0;
    for r in handle.rounds().iter().take(rounds) {
        if r.tampered {
            if r.area == vector_area {
                vec_alarms += 1;
            } else if r.area == satin_mem::PAPER_SYSCALL_AREA {
                sys_alarms += 1;
            }
        }
    }
    (vec_alarms, sys_alarms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_lose_satin_wins() {
        let horizon = SimDuration::from_secs(3);
        let fixed = baseline_vs_evader(
            BaselineConfig::periodic_fixed(SimDuration::from_millis(400)),
            horizon,
            61,
        );
        let random = baseline_vs_evader(
            BaselineConfig::randomized(SimDuration::from_millis(400)),
            horizon,
            62,
        );
        // The evader defeats both monolithic baselines outright.
        assert_eq!(fixed.detections, 0, "fixed baseline caught the evader?");
        assert_eq!(random.detections, 0, "random baseline caught the evader?");
        assert!(fixed.attack_uptime > 0.5, "uptime {}", fixed.attack_uptime);

        let satin = satin_vs_evader(
            SatinConfig::paper(),
            "satin",
            57,
            SimDuration::from_secs(19),
            63,
        );
        assert!(satin.attacked_rounds >= 1);
        assert_eq!(
            satin.detections, satin.attacked_rounds,
            "SATIN missed: {}/{}",
            satin.detections, satin.attacked_rounds
        );
    }

    #[test]
    fn oversized_areas_reopen_the_window() {
        // 8× the bound ≈ 9.7 MB areas: the greedy plan degenerates toward
        // the monolithic baseline and the evader escapes again.
        let pts = area_size_sweep(&[8.0], 40, SimDuration::from_secs(10), 64);
        let (_, analytic, out) = &pts[0];
        assert!(
            out.detection_rate() < 0.5,
            "oversized areas still detected at {}",
            out.detection_rate()
        );
        // The analytic guarantee degrades monotonically with area size.
        assert!(*analytic < 0.5, "analytic fraction {analytic}");
        let safe = area_size_sweep(&[1.0], 1, SimDuration::from_secs(10), 64);
        assert!(
            (safe[0].1 - 1.0).abs() < 1e-12,
            "at the bound: fully protected"
        );
    }

    #[test]
    fn preemptive_mode_reopens_the_window() {
        // A 60% interrupt storm stretches rounds ~2.5x: beyond the safety
        // bound in preemptive mode, harmless in SATIN's configuration.
        let (nonpre, pre) = preemption_ablation(0.6, 40, SimDuration::from_secs(10), 71);
        assert!(
            nonpre.attacked_rounds >= 1 && nonpre.detection_rate() == 1.0,
            "non-preemptive SATIN must still win: {nonpre:?}"
        );
        assert!(
            pre.detection_rate() < 1.0,
            "preemptive mode under storm should lose rounds: {pre:?}"
        );
    }

    #[test]
    fn satin_ports_across_core_counts() {
        let outcomes = core_count_sweep(&[2, 4], 25, SimDuration::from_secs(10), 72);
        for (n, out) in outcomes {
            assert!(
                out.attacked_rounds == 0 || out.detection_rate() == 1.0,
                "{n}-core SATIN missed: {out:?}"
            );
        }
    }

    #[test]
    fn kprober_i_betrays_itself_to_satin() {
        use satin_attack::kprober::ProberVariant;
        // KProber-I: the hijacked vector entry sits in area 0 and is caught
        // on every area-0 round.
        let (vec1, _) =
            kprober_trace_detection(ProberVariant::KProberI, 40, SimDuration::from_secs(10), 73);
        assert!(vec1 >= 1, "SATIN missed KProber-I's vector hijack");
        // KProber-II leaves no kernel-text trace: area 0 stays clean.
        let (vec2, _) =
            kprober_trace_detection(ProberVariant::KProberII, 40, SimDuration::from_secs(10), 74);
        assert_eq!(vec2, 0, "false alarm on KProber-II");
    }

    #[test]
    fn affinity_ratio_direction() {
        let (all, single) = affinity_probing(SimDuration::from_secs(4), 4, 65);
        assert!(single < all, "single {single} vs all {all}");
    }
}
