//! Analyzed detection campaigns: the §VI-B1 campaign re-run with the
//! happens-before race detector riding the engine's observer seat, plus the
//! Eq.1/Eq.2 invariant audit over the recorded mark log.
//!
//! This is the dynamic half of the `satin-analyze` gate (`repro --analyze`,
//! and `ci.sh`'s invariant step over seeds 7/42/1009): a campaign is a pure
//! function of its seed, so the detector and audit either pass on every
//! machine or fail on every machine. Violations additionally land on the
//! machine's telemetry timeline as `analysis.violation` instants (one per
//! violation, on the offending core's track) so an exported race timeline
//! shows *where* the causal order broke.

use crate::detection::{self, DetectionConfig, DetectionResult};
use crate::runner::{CampaignRunner, MetricsReport};
use satin_analyze::{attach, audit, InvariantReport, RaceReport};
use satin_attack::race::RaceParams;
use satin_attack::{TzEvader, TzEvaderConfig};
use satin_core::{Satin, SatinConfig};
use satin_sim::SimTime;
use satin_system::SystemBuilder;
use satin_telemetry::TrackId;

/// One analyzed campaign: the ordinary detection result plus the race
/// detector's report and the invariant audit.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisRun {
    /// The campaign summary, identical to an unanalyzed run's (the probe is
    /// a pure observer; golden traces pin this).
    pub detection: DetectionResult,
    /// The happens-before detector's findings.
    pub race: RaceReport,
    /// The Eq.1/Eq.2 audit of the recorded mark log.
    pub invariants: InvariantReport,
}

impl AnalysisRun {
    /// `true` when the run has no happens-before violations and every
    /// invariant residual is zero.
    pub fn is_clean(&self) -> bool {
        self.race.is_clean() && self.invariants.is_clean()
    }

    /// Deterministic multi-line rendering for CLI / CI output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "analysis: events={} marks={} violations={}\n",
            self.race.events,
            self.race.marks.len(),
            self.race.violations.len()
        ));
        for (tag, n) in &self.race.mark_counts {
            out.push_str(&format!("  mark {tag}: {n}\n"));
        }
        out.push_str(&self.race.render_violations());
        out.push_str(&self.invariants.to_string());
        out
    }
}

/// Runs the detection campaign with the race detector attached, then audits
/// the mark log. Mirrors [`detection::run`] exactly — same seed, same
/// schedule, same summary — with the probe observing from the side.
pub fn analyze_campaign(config: DetectionConfig) -> AnalysisRun {
    let mut satin_cfg = SatinConfig::paper();
    satin_cfg.tgoal = config.tgoal;
    let mut sys = SystemBuilder::new()
        .seed(config.seed)
        .trace(config.trace)
        .telemetry(config.telemetry)
        .build();
    let analyze = attach(&mut sys);
    let (satin, handle) = Satin::new(satin_cfg);
    sys.install_secure_service(satin);
    let evader = TzEvader::deploy(&mut sys, TzEvaderConfig::paper_default());

    let slice = config.tgoal / 19; // one tp
    let hard_stop = SimTime::ZERO + config.tgoal * 40; // safety net
    while handle.round_count() < config.rounds && sys.now() < hard_stop {
        sys.run_for(slice);
    }

    let race = analyze.report();
    // Surface each violation on the telemetry timeline, on the offending
    // core's track, so exported race timelines carry the finding in-place.
    for v in &race.violations {
        let detail = v.to_string();
        sys.telemetry_mut()
            .instant("analysis.violation", TrackId(v.core as u32), v.at, detail);
    }
    let metrics = MetricsReport::capture(&sys);
    let detection = detection::summarize(&handle, &evader, config, sys.now(), metrics);
    let invariants = audit(&race.marks, &RaceParams::paper_worst_case());
    AnalysisRun {
        detection,
        race,
        invariants,
    }
}

/// Runs one analyzed campaign per seed through `runner`, in seed order
/// (identical for any worker count — campaigns share no state).
pub fn run_many(base: DetectionConfig, seeds: &[u64], runner: &CampaignRunner) -> Vec<AnalysisRun> {
    runner.run_seeds(seeds, |seed| {
        analyze_campaign(DetectionConfig { seed, ..base })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_is_causally_clean() {
        let run = analyze_campaign(DetectionConfig::quick(42));
        // The tentpole gate: zero happens-before violations, zero residuals.
        assert!(run.race.is_clean(), "{}", run.race.render_violations());
        assert!(run.invariants.is_clean(), "{}", run.invariants);
        // The probe saw the campaign: every round fires and publishes.
        assert!(run.race.events > 0);
        assert!(run.race.mark_counts["secure.fire"] >= run.detection.rounds as u64);
        assert!(run.race.mark_counts["publish"] >= run.detection.rounds as u64);
        // Every fair-race window over the hijacked address was audited.
        assert!(run.invariants.audited_windows >= run.detection.rounds as u64);
        assert!(
            run.invariants.fair_race_windows >= run.detection.area14_attacked_checks,
            "audit found {} fair-race windows, campaign counted {}",
            run.invariants.fair_race_windows,
            run.detection.area14_attacked_checks
        );
    }

    fn small(seed: u64) -> DetectionConfig {
        DetectionConfig {
            rounds: 19,
            tgoal: satin_sim::SimDuration::from_millis(9_500),
            seed,
            trace: false,
            telemetry: false,
        }
    }

    #[test]
    fn probe_does_not_perturb_the_campaign() {
        // The analyzed run's detection summary is bit-identical to the
        // unanalyzed run's: the probe is a pure observer.
        let plain = detection::run(small(7));
        let analyzed = analyze_campaign(small(7));
        assert_eq!(plain, analyzed.detection);
    }

    #[test]
    fn violations_land_on_the_telemetry_timeline() {
        // With telemetry on and a clean run, no analysis.violation instants;
        // the mechanism itself is covered by the analyze crate's unit tests.
        let mut config = small(1);
        config.telemetry = true;
        let run = analyze_campaign(config);
        assert!(run.is_clean());
    }

    #[test]
    fn run_many_is_job_count_invariant() {
        let base = small(0);
        let seeds = [5u64, 6];
        let serial = run_many(base, &seeds, &CampaignRunner::serial());
        let parallel = run_many(base, &seeds, &CampaignRunner::new(2));
        assert_eq!(serial, parallel);
        assert!(serial.iter().all(AnalysisRun::is_clean));
    }
}
