//! Table I — secure-world introspection time per byte.
//!
//! The paper measures the time for the secure world to introspect one byte
//! under two strategies (direct hash vs snapshot-then-hash) on each core
//! kind, 50 rounds each. We regenerate the measurement *through the
//! simulated machine*: a fixed-core service scans the whole kernel once per
//! round; the per-byte time is the TSP residency minus the two world
//! switches, divided by the byte count. (The underlying rates are the
//! calibrated inputs from DESIGN.md §2; this experiment verifies the whole
//! pipeline reproduces them end to end, including the snapshot strategy's
//! secure-memory cost.)

use satin_hw::timing::ScanStrategy;
use satin_hw::{CoreId, CoreKind};
use satin_mem::PAPER_KERNEL_SIZE;
use satin_scenario::Scenario;
use satin_sim::{SimDuration, SimTime};
use satin_stats::Summary;
use satin_system::{BootCtx, ScanRequest, SecureCtx, SecureService, SystemBuilder};
use std::cell::RefCell;
use std::rc::Rc;

/// One Table I row: per-byte introspection times for a (core kind,
/// strategy) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Core kind.
    pub kind: CoreKind,
    /// Scan strategy.
    pub strategy: ScanStrategy,
    /// Per-byte time summary over rounds, in seconds.
    pub per_byte: Summary,
    /// Secure memory consumed per round, bytes (0 for direct hash).
    pub secure_memory_bytes: u64,
}

struct FullScanService {
    core: CoreId,
    strategy: ScanStrategy,
    period: SimDuration,
    durations: Rc<RefCell<Vec<f64>>>,
}

impl SecureService for FullScanService {
    fn on_boot(&mut self, ctx: &mut BootCtx<'_>) -> Result<(), satin_system::SatinError> {
        ctx.arm_core(self.core, SimTime::ZERO + self.period)?;
        Ok(())
    }

    fn on_secure_timer(&mut self, _core: CoreId, ctx: &mut SecureCtx<'_>) -> Option<ScanRequest> {
        let layout = satin_mem::KernelLayout::paper();
        let _ = ctx;
        Some(ScanRequest {
            area_id: 0,
            range: layout.range(),
            strategy: self.strategy,
        })
    }

    fn on_scan_result(
        &mut self,
        _core: CoreId,
        request: &ScanRequest,
        _observed: &[u8],
        ctx: &mut SecureCtx<'_>,
    ) {
        // Scan duration = now − fired − entry switch; we record the pure scan
        // time per byte (the paper likewise excludes the dispatcher latency,
        // which it reports separately as Ts_switch).
        let total = ctx.now().since(ctx.fired()).as_secs_f64();
        // Subtract a nominal entry switch (mid-range of §IV-B1).
        let scan = total - 3.0e-6;
        self.durations
            .borrow_mut()
            .push(scan / request.range.len() as f64);
        ctx.arm_self(ctx.now() + self.period);
    }
}

/// Measures one (kind, strategy) cell over `rounds` full-kernel scans on
/// the paper's platform.
pub fn measure_cell(kind: CoreKind, strategy: ScanStrategy, rounds: usize, seed: u64) -> Table1Row {
    measure_cell_scenario(&Scenario::paper(), kind, strategy, rounds, seed)
}

/// [`measure_cell`] on an arbitrary scenario's platform.
///
/// # Panics
///
/// Panics if the scenario's platform has no core of `kind` — iterate
/// `scenario.platform.kinds_present()` to stay safe.
pub fn measure_cell_scenario(
    scenario: &Scenario,
    kind: CoreKind,
    strategy: ScanStrategy,
    rounds: usize,
    seed: u64,
) -> Table1Row {
    // First core of the requested kind — on Juno that is core 0 for A57 and
    // core 2 for A53, matching the original hard-coded picks.
    let core = CoreId::new(
        scenario
            .platform
            .nth_core_of_kind(kind, 0)
            .expect("scenario platform has no core of the requested kind"),
    );
    let durations = Rc::new(RefCell::new(Vec::new()));
    let mut sys = SystemBuilder::new()
        .seed(seed)
        .scenario(scenario)
        .trace(false)
        .build();
    let period = SimDuration::from_millis(200);
    sys.install_secure_service(FullScanService {
        core,
        strategy,
        period,
        durations: durations.clone(),
    });
    // Each scan takes ≤ 130 ms; rounds are 200 ms apart plus scan time.
    let horizon = SimTime::ZERO + SimDuration::from_millis(400) * (rounds as u64 + 1);
    while durations.borrow().len() < rounds && sys.now() < horizon {
        sys.run_for(SimDuration::from_millis(100));
    }
    let d = durations.borrow();
    let per_byte = Summary::of(&d[..rounds.min(d.len())]).expect("at least one round");
    Table1Row {
        kind,
        strategy,
        per_byte,
        secure_memory_bytes: match strategy {
            ScanStrategy::DirectHash => 0,
            ScanStrategy::SnapshotThenHash => PAPER_KERNEL_SIZE,
        },
    }
}

/// The full Table I: all four (kind, strategy) cells on the paper's
/// platform.
pub fn run(rounds: usize, seed: u64) -> Vec<Table1Row> {
    run_scenario(&Scenario::paper(), rounds, seed)
}

/// [`run`] on an arbitrary scenario: one row per (present core kind,
/// strategy) pair, so homogeneous platforms produce two rows, not four.
pub fn run_scenario(scenario: &Scenario, rounds: usize, seed: u64) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for kind in scenario.platform.kinds_present() {
        for strategy in ScanStrategy::ALL {
            rows.push(measure_cell_scenario(
                scenario, kind, strategy, rounds, seed,
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a53_hash_rate_matches_paper() {
        let row = measure_cell(CoreKind::A53, ScanStrategy::DirectHash, 10, 3);
        // Paper: avg 1.07e-8, min 9.23e-9, max 1.14e-8.
        assert!(
            (0.95e-8..1.2e-8).contains(&row.per_byte.mean),
            "mean {:.3e}",
            row.per_byte.mean
        );
        assert!(row.per_byte.min >= 9.0e-9, "min {:.3e}", row.per_byte.min);
        assert!(row.per_byte.max <= 1.2e-8, "max {:.3e}", row.per_byte.max);
    }

    #[test]
    fn a57_faster_than_a53_and_hash_cheaper_than_snapshot() {
        let rows = run(6, 4);
        let get = |k: CoreKind, s: ScanStrategy| {
            rows.iter()
                .find(|r| r.kind == k && r.strategy == s)
                .unwrap()
                .per_byte
                .mean
        };
        let a53h = get(CoreKind::A53, ScanStrategy::DirectHash);
        let a57h = get(CoreKind::A57, ScanStrategy::DirectHash);
        let a53s = get(CoreKind::A53, ScanStrategy::SnapshotThenHash);
        let a57s = get(CoreKind::A57, ScanStrategy::SnapshotThenHash);
        assert!(a57h < a53h, "A57 {a57h:.3e} vs A53 {a53h:.3e}");
        assert!(a57s < a53s);
        // Direct hash is not slower on average (Table I's conclusion)…
        assert!(a53h <= a53s * 1.02);
        // …and uses no secure memory.
        assert_eq!(
            rows.iter()
                .find(|r| r.strategy == ScanStrategy::DirectHash)
                .unwrap()
                .secure_memory_bytes,
            0
        );
    }
}
