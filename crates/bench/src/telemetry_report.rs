//! The per-experiment telemetry section: merged histogram/span aggregates
//! (deterministic for any `--jobs`) and the single fully-traced race behind
//! `repro --trace-out`.
//!
//! Two artifacts come out of here:
//!
//! - [`TelemetryReport`]: campaign-level aggregates built by merging
//!   [`MetricsReport`]s in input order. Every field is a counter, a
//!   fixed-shape histogram, or a name-sorted map, so
//!   [`TelemetryReport::to_json`] is byte-identical for any worker count —
//!   the `--metrics-json` guarantee.
//! - [`TracedRace`]: one instrumented SATIN-vs-TZ-Evader run with the full
//!   span [`Timeline`] and [`TraceLog`], exportable as Chrome `trace_event`
//!   JSON via [`satin_telemetry::chrome_trace`] — the `--trace-out` file.

use crate::runner::{MetricsReport, SeedOutcome};
use satin_attack::{TzEvader, TzEvaderConfig};
use satin_core::{Satin, SatinConfig};
use satin_scenario::Scenario;
use satin_sim::{SimDuration, SimTime, TraceLog};
use satin_stats::hist::render_count_rows;
use satin_system::SystemBuilder;
use satin_telemetry::{DurationHistogram, Timeline};
use std::fmt;
use std::fmt::Write as _;

/// Merged telemetry aggregates over a batch of campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Campaigns merged into this report.
    pub campaigns: usize,
    /// Scan results published to the normal world, summed.
    pub publications: u64,
    /// Integrity alarms raised by the secure service, summed.
    pub alarms: u64,
    /// Simulation events dispatched, summed.
    pub events_dispatched: u64,
    /// Retry attempts the salvaging runner spent across the fleet (0 for
    /// fleets run without retry).
    pub retries: u64,
    /// Seeds whose every attempt failed and were salvaged as structured
    /// `Failed` rows instead of killing the batch.
    pub salvaged: u64,
    /// The merged counters and distributions. Salvaged seeds contribute
    /// nothing here — their partial simulations were discarded.
    pub metrics: MetricsReport,
}

impl TelemetryReport {
    /// Merges per-campaign reports (order-independent: histograms add
    /// bucket-wise, span counts add name-wise).
    pub fn of(reports: &[MetricsReport]) -> Self {
        let merged = MetricsReport::merged(reports);
        TelemetryReport {
            campaigns: reports.len(),
            publications: merged.publications,
            alarms: merged.alarms,
            events_dispatched: merged.events_dispatched,
            retries: 0,
            salvaged: 0,
            metrics: merged,
        }
    }

    /// [`of`](TelemetryReport::of) over a salvaging-runner fleet: completed
    /// seeds contribute their metrics (extracted by `metrics_of`), failed
    /// seeds contribute only to the `salvaged` count, and every spent retry
    /// is tallied. Outcome order is runner-guaranteed, so the report — and
    /// its JSON — stays byte-identical for any `--jobs`.
    pub fn of_salvaged<T>(
        outcomes: &[SeedOutcome<T>],
        metrics_of: impl Fn(&T) -> &MetricsReport,
    ) -> Self {
        let reports: Vec<MetricsReport> = outcomes
            .iter()
            .filter_map(|o| o.value().map(|v| metrics_of(v).clone()))
            .collect();
        let mut report = TelemetryReport::of(&reports);
        report.campaigns = outcomes.len();
        report.retries = outcomes
            .iter()
            .map(|o| u64::from(o.attempts().saturating_sub(1)))
            .sum();
        report.salvaged = outcomes.iter().filter(|o| o.is_failed()).count() as u64;
        report
    }

    /// The injected-fault counters under their canonical stream names, in
    /// fixed order. `fault.abort` is the count of campaign attempts an
    /// injected abort (or any other structured failure) killed — aborts
    /// discard the run, so unlike the other four they never reach the
    /// injector's own stats.
    pub fn fault_counters(&self) -> [(&'static str, u64); 5] {
        [
            (satin_faults::FAULT_JITTER, self.metrics.fault_jitter_spikes),
            (
                satin_faults::FAULT_DROPPED_PUB,
                self.metrics.fault_publications_dropped,
            ),
            (
                satin_faults::FAULT_DELAYED_PUB,
                self.metrics.fault_publications_delayed,
            ),
            (
                satin_faults::FAULT_CORRUPT_WINDOW,
                self.metrics.fault_windows_corrupted,
            ),
            (satin_faults::FAULT_ABORT, self.retries + self.salvaged),
        ]
    }

    /// Renders the report as a deterministic JSON document: fixed key
    /// order, integer nanoseconds, histograms as `[bucket, count]` pairs.
    /// Byte-identical for any `--jobs` count over the same campaigns.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"campaigns\": {},", self.campaigns);
        let _ = writeln!(out, "  \"publications\": {},", self.publications);
        let _ = writeln!(out, "  \"alarms\": {},", self.alarms);
        let _ = writeln!(out, "  \"events_dispatched\": {},", self.events_dispatched);
        let _ = writeln!(out, "  \"retries\": {},", self.retries);
        let _ = writeln!(out, "  \"salvaged\": {},", self.salvaged);
        let faults: Vec<String> = self
            .fault_counters()
            .iter()
            .map(|(name, n)| format!("\"{name}\": {n}"))
            .collect();
        let _ = writeln!(out, "  \"faults\": {{{}}},", faults.join(", "));
        let _ = writeln!(
            out,
            "  \"scans_completed\": {},",
            self.metrics.scans_completed
        );
        let _ = writeln!(out, "  \"scans_torn\": {},", self.metrics.scans_torn);
        let _ = writeln!(
            out,
            "  \"world_switches\": {},",
            self.metrics.world_switches
        );
        out.push_str("  \"histograms\": {\n");
        for (i, (name, h)) in self.histograms().iter().enumerate() {
            let _ = write!(out, "    \"{name}\": {}", hist_json(h));
            out.push_str(if i + 1 < self.histograms().len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  },\n");
        out.push_str("  \"span_counts\": {");
        let spans: Vec<String> = self
            .metrics
            .span_counts
            .iter()
            .map(|(name, n)| format!("\"{name}\": {n}"))
            .collect();
        out.push_str(&spans.join(", "));
        out.push_str("}\n}\n");
        out
    }

    /// The report's named histograms, in fixed order.
    pub fn histograms(&self) -> Vec<(&'static str, &DurationHistogram)> {
        vec![
            ("publication_delay_ns", &self.metrics.publication_delay_hist),
            ("hash_window_ns", &self.metrics.hash_window_hist),
            ("detection_latency_ns", &self.metrics.detection_latency_hist),
        ]
    }
}

fn hist_json(h: &DurationHistogram) -> String {
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .map(|(idx, _, _, count)| format!("[{idx}, {count}]"))
        .collect();
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}]}}",
        h.count(),
        h.sum_nanos(),
        h.min().map(|d| d.as_nanos()).unwrap_or(0),
        h.max().map(|d| d.as_nanos()).unwrap_or(0),
        buckets.join(", ")
    )
}

/// Labelled count rows for one histogram (bucket ranges as durations),
/// ready for [`render_count_rows`].
fn bucket_rows(h: &DurationHistogram) -> Vec<(String, u64)> {
    h.nonzero_buckets()
        .map(|(_, lo, hi, count)| {
            (
                format!(
                    "[{}, {})",
                    SimDuration::from_nanos(lo),
                    SimDuration::from_nanos(hi)
                ),
                count,
            )
        })
        .collect()
}

impl fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} campaign(s): {} publications, {} alarms, {} events dispatched",
            self.campaigns, self.publications, self.alarms, self.events_dispatched
        )?;
        for (name, h) in self.histograms() {
            if h.is_empty() {
                continue;
            }
            writeln!(f, "{name}: {h}")?;
            write!(f, "{}", render_count_rows(&bucket_rows(h), 40))?;
        }
        if !self.metrics.span_counts.is_empty() {
            let rows: Vec<(String, u64)> = self
                .metrics
                .span_counts
                .iter()
                .map(|(n, c)| (n.clone(), *c))
                .collect();
            writeln!(f, "spans:")?;
            write!(f, "{}", render_count_rows(&rows, 40))?;
        }
        Ok(())
    }
}

/// One fully-instrumented introspection race: SATIN (tp = 1 s) vs the
/// TZ-Evader, with telemetry spans and the trace log both recorded.
pub struct TracedRace {
    /// The recorded span timeline (one `secure.session` tree per round).
    pub timeline: Timeline,
    /// The machine trace (attack/secure/satin events).
    pub trace: TraceLog,
    /// End-of-run counters and distributions.
    pub metrics: MetricsReport,
    /// Simulated horizon the race ran for.
    pub horizon: SimDuration,
}

impl TracedRace {
    /// The race as Chrome `trace_event` JSON (open in Perfetto or
    /// `chrome://tracing`): per-core session span trees plus attack/defense
    /// trace events on their own lanes.
    pub fn chrome_trace(&self) -> String {
        satin_telemetry::chrome_trace(&self.timeline, Some(&self.trace))
    }

    /// The race's spans and instants as line-delimited JSON.
    pub fn jsonl(&self) -> String {
        satin_telemetry::jsonl_events(&self.timeline)
    }
}

/// Runs one instrumented SATIN-vs-TZ-Evader race for `horizon` of simulated
/// time on the paper's platform. Pure function of `seed` — and telemetry is
/// pure observation — so the exported trace is byte-identical across runs
/// and job counts.
pub fn run_traced_race(seed: u64, horizon: SimDuration) -> TracedRace {
    run_traced_race_scenario(&Scenario::paper(), seed, horizon)
}

/// [`run_traced_race`] on an arbitrary scenario: the platform, attacker and
/// defense configs all come from the descriptor (the accelerated tp = 1 s
/// pace is kept, as the trace is meant to show several rounds).
pub fn run_traced_race_scenario(
    scenario: &Scenario,
    seed: u64,
    horizon: SimDuration,
) -> TracedRace {
    let mut cfg = SatinConfig::from_profile(&scenario.defense);
    cfg.tgoal = SimDuration::from_secs(19); // tp = 1 s over 19 areas
    let mut sys = SystemBuilder::new()
        .seed(seed)
        .scenario(scenario)
        .trace(true)
        .telemetry(true)
        .build();
    let (satin, _handle) = Satin::new(cfg);
    sys.install_secure_service(satin);
    let _evader = TzEvader::deploy(&mut sys, TzEvaderConfig::from_profile(&scenario.attack));
    sys.run_until(SimTime::ZERO + horizon);
    let metrics = MetricsReport::capture(&sys);
    TracedRace {
        timeline: sys.telemetry().clone(),
        trace: sys.trace().clone(),
        metrics,
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_race_covers_every_session() {
        let race = run_traced_race(42, SimDuration::from_secs(5));
        let tl = &race.timeline;
        assert!(!tl.is_empty(), "no spans recorded");
        assert_eq!(tl.open_count(), 0, "dangling spans at end of run");
        assert_eq!(tl.dropped(), 0, "timeline overflowed");
        // One session root per publication, with switch children.
        assert_eq!(
            tl.count_by_name("secure.session"),
            race.metrics.publications
        );
        assert_eq!(
            tl.count_by_name("world.switch_in"),
            race.metrics.publications
        );
        assert_eq!(
            tl.count_by_name("world.switch_out"),
            race.metrics.publications
        );
        assert_eq!(
            tl.count_by_name("scan.window"),
            race.metrics.scans_completed
        );
        // Every non-root span links into a session tree.
        for span in tl.spans() {
            if span.name != "secure.session" {
                assert!(span.parent.is_some(), "{} has no parent", span.name);
            }
        }
        // The exports are non-trivial and deterministic.
        let json = race.chrome_trace();
        assert!(json.contains("secure.session"));
        let again = run_traced_race(42, SimDuration::from_secs(5));
        assert_eq!(json, again.chrome_trace());
        assert_eq!(race.jsonl(), again.jsonl());
    }

    #[test]
    fn salvaged_report_counts_retries_and_canonical_faults() {
        let m = MetricsReport {
            publications: 4,
            fault_publications_dropped: 2,
            fault_jitter_spikes: 1,
            ..MetricsReport::default()
        };
        let outcomes: Vec<SeedOutcome<MetricsReport>> = vec![
            SeedOutcome::Ok {
                seed: 7,
                attempts: 1,
                value: m.clone(),
            },
            SeedOutcome::Failed {
                seed: 42,
                attempts: 2,
                error: "worker abort".into(),
            },
            SeedOutcome::Ok {
                seed: 1009,
                attempts: 3,
                value: m.clone(),
            },
        ];
        let report = TelemetryReport::of_salvaged(&outcomes, |m| m);
        assert_eq!(report.campaigns, 3);
        assert_eq!(report.retries, 1 + 2);
        assert_eq!(report.salvaged, 1);
        // Only the completed seeds' metrics merge.
        assert_eq!(report.publications, 8);
        assert_eq!(report.metrics.fault_publications_dropped, 4);
        let json = report.to_json();
        assert!(json.contains("\"retries\": 3"), "{json}");
        assert!(json.contains("\"salvaged\": 1"), "{json}");
        assert!(json.contains("\"fault.dropped_pub\": 4"), "{json}");
        assert!(json.contains("\"fault.jitter\": 2"), "{json}");
        // Failed attempts — retried or salvaged — are the abort count.
        assert!(json.contains("\"fault.abort\": 4"), "{json}");
        assert!(json.contains("\"fault.corrupt_window\": 0"), "{json}");
    }

    #[test]
    fn report_json_shape() {
        let race = run_traced_race(7, SimDuration::from_secs(3));
        let report = TelemetryReport::of(&[race.metrics.clone(), race.metrics.clone()]);
        assert_eq!(report.campaigns, 2);
        assert_eq!(report.publications, 2 * race.metrics.publications);
        let json = report.to_json();
        assert!(json.contains("\"publication_delay_ns\""));
        assert!(json.contains("\"span_counts\""));
        assert!(json.contains("\"secure.session\""));
        // Merge order does not matter.
        let swapped = TelemetryReport::of(&[race.metrics.clone(), race.metrics.clone()]);
        assert_eq!(json, swapped.to_json());
    }
}
