//! Parallel campaign fan-out.
//!
//! Every experiment in this crate is a pure function of its seed: a campaign
//! builds its own [`satin_system::System`], runs it, and returns owned
//! results. That makes fanning a batch of campaigns across OS threads
//! trivially safe — no shared simulation state exists. [`CampaignRunner`]
//! does exactly that, with one hard guarantee: **results come back in input
//! order, independent of worker count or scheduling**, so aggregates
//! computed over them are identical for `--jobs 1` and `--jobs N`.

use satin_obs::{CampaignObs, CellEvents, EventStream, ObsEvent};
use satin_scenario::FaultPlan;
use satin_system::System;
use satin_telemetry::DurationHistogram;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Fans independent campaigns across `std::thread` workers.
#[derive(Debug, Clone, Copy)]
pub struct CampaignRunner {
    jobs: usize,
}

impl CampaignRunner {
    /// A runner with `jobs` workers; `0` means one worker per available
    /// hardware thread.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        CampaignRunner { jobs }
    }

    /// A single-worker runner (runs everything on the calling thread).
    pub fn serial() -> Self {
        CampaignRunner { jobs: 1 }
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item and returns the results **in input order**.
    ///
    /// Workers pull items off a shared atomic index (so a slow campaign
    /// doesn't starve the rest of a pre-chunked stripe) and tag each result
    /// with its index; the tags restore input order at the end. With one
    /// worker — or one item — everything runs on the calling thread.
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run_with(items, |_, _, item| f(item))
    }

    /// [`run`](CampaignRunner::run) with scheduling context: `f` receives
    /// `(worker index, item index, item)`. The worker index is a
    /// scheduling accident — callers must only feed it to host-domain
    /// observability (live events, utilization), never into anything that
    /// shapes a result, or the jobs-invariance guarantee breaks.
    pub fn run_with<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, usize, &I) -> T + Sync,
    {
        if self.jobs <= 1 || items.len() <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(0, i, item))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let workers = self.jobs.min(items.len());
        let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
            let next = &next;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let f = &f;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            out.push((i, f(w, i, &items[i])));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        });
        tagged.sort_by_key(|(i, _)| *i);
        tagged.into_iter().map(|(_, t)| t).collect()
    }

    /// [`run`](CampaignRunner::run) specialized to the common case: one
    /// campaign per seed.
    pub fn run_seeds<T, F>(&self, seeds: &[u64], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        self.run(seeds, |&s| f(s))
    }

    /// [`run_seeds`](CampaignRunner::run_seeds) for fallible campaigns:
    /// each seed is attempted up to `policy.max_attempts` times (with a
    /// bounded wall-clock backoff between attempts), and a seed whose every
    /// attempt fails yields a structured [`SeedOutcome::Failed`] row instead
    /// of aborting the batch. `f` receives the 1-based attempt number so a
    /// fault injector with an attempt budget can stand down on retries.
    ///
    /// Result order — and, because injected faults are pure functions of
    /// (seed, attempt), result *content* — is identical for any worker
    /// count.
    pub fn run_seeds_with_retry<T, E, F>(
        &self,
        seeds: &[u64],
        policy: RetryPolicy,
        f: F,
    ) -> Vec<SeedOutcome<T>>
    where
        T: Send,
        E: fmt::Display,
        F: Fn(u64, u32) -> Result<T, E> + Sync,
    {
        let max = policy.max_attempts.max(1);
        self.run_seeds(seeds, |seed| {
            let mut attempt = 1u32;
            loop {
                match f(seed, attempt) {
                    Ok(value) => {
                        return SeedOutcome::Ok {
                            seed,
                            attempts: attempt,
                            value,
                        }
                    }
                    Err(e) if attempt >= max => {
                        return SeedOutcome::Failed {
                            seed,
                            attempts: attempt,
                            error: e.to_string(),
                        }
                    }
                    Err(_) => {
                        // Bounded linear backoff: per-sleep capped at 1 s and
                        // the attempt count is bounded, so a retry storm
                        // cannot hang the batch.
                        let pause = policy
                            .backoff
                            .saturating_mul(attempt)
                            .min(Duration::from_secs(1));
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                        attempt += 1;
                    }
                }
            }
        })
    }

    /// [`run_seeds_with_retry`](CampaignRunner::run_seeds_with_retry) with
    /// a campaign event stream: each cell logs its lifecycle
    /// (worker-assigned, started, per-attempt, retried, salvaged,
    /// finished) into a deterministic [`CellEvents`] buffer that `f` can
    /// extend (e.g. with `cell.fault_armed`), and the merged
    /// [`EventStream`] comes back alongside the outcomes.
    ///
    /// `label` names each cell (`scenario.cell_label(seed)` for grid
    /// identity). The stream is assembled from the *returned* cell logs in
    /// input order — never from live-channel arrival — so its JSONL form
    /// is byte-identical for any worker count.
    pub fn run_seeds_with_retry_observed<T, E, F, L>(
        &self,
        seeds: &[u64],
        policy: RetryPolicy,
        obs: &CampaignObs,
        label: L,
        f: F,
    ) -> (Vec<SeedOutcome<T>>, EventStream)
    where
        T: Send,
        E: fmt::Display,
        F: Fn(u64, u32, &mut CellEvents) -> Result<T, E> + Sync,
        L: Fn(u64) -> String + Sync,
    {
        let started = ObsEvent::CampaignStarted {
            label: obs.label().to_string(),
            cells: seeds.len(),
        };
        obs.live_send(None, &started);
        let max = policy.max_attempts.max(1);
        let cells = self.run_with(seeds, |worker, cell, &seed| {
            let mut log = obs.begin_cell(worker, cell, seed);
            log.emit(ObsEvent::CellStarted {
                cell,
                seed,
                label: label(seed),
            });
            let mut attempt = 1u32;
            let outcome = loop {
                log.emit(ObsEvent::CellAttempt {
                    cell,
                    seed,
                    attempt,
                });
                match f(seed, attempt, &mut log) {
                    Ok(value) => {
                        log.emit(ObsEvent::CellFinished {
                            cell,
                            seed,
                            attempts: attempt,
                        });
                        break SeedOutcome::Ok {
                            seed,
                            attempts: attempt,
                            value,
                        };
                    }
                    Err(e) if attempt >= max => {
                        let error = e.to_string();
                        log.emit(ObsEvent::CellSalvaged {
                            cell,
                            seed,
                            attempts: attempt,
                            error: error.clone(),
                        });
                        break SeedOutcome::Failed {
                            seed,
                            attempts: attempt,
                            error,
                        };
                    }
                    Err(e) => {
                        log.emit(ObsEvent::CellRetried {
                            cell,
                            seed,
                            attempt,
                            error: e.to_string(),
                        });
                        // Same bounded linear backoff as the unobserved path.
                        let pause = policy
                            .backoff
                            .saturating_mul(attempt)
                            .min(Duration::from_secs(1));
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                        attempt += 1;
                    }
                }
            };
            (outcome, log.into_events())
        });

        let mut stream = EventStream::new();
        stream.push(started);
        let mut outcomes = Vec::with_capacity(cells.len());
        let (mut ok, mut failed, mut retries) = (0usize, 0usize, 0usize);
        for (outcome, events) in cells {
            retries += events
                .iter()
                .filter(|e| matches!(e, ObsEvent::CellRetried { .. }))
                .count();
            if outcome.is_failed() {
                failed += 1;
            } else {
                ok += 1;
            }
            stream.extend_cells(vec![events]);
            outcomes.push(outcome);
        }
        let finished = ObsEvent::CampaignFinished {
            cells: outcomes.len(),
            ok,
            failed,
            retries,
        };
        obs.live_send(None, &finished);
        stream.push(finished);
        (outcomes, stream)
    }
}

/// Bounded retry for fallible (typically fault-injected) campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per seed (at least 1).
    pub max_attempts: u32,
    /// Base wall-clock pause between attempts (grows linearly with the
    /// attempt number, capped at 1 s per pause).
    pub backoff: Duration,
}

impl RetryPolicy {
    /// One attempt, no backoff — failures surface immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// The retry policy a fault plan asks for (`max-attempts` /
    /// `backoff-ms` keys of the `[faults]` section).
    pub fn from_plan(plan: &FaultPlan) -> Self {
        RetryPolicy {
            max_attempts: plan.max_attempts.max(1),
            backoff: Duration::from_millis(plan.backoff_ms),
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// One seed's campaign outcome under [`CampaignRunner::run_seeds_with_retry`].
#[derive(Debug, Clone, PartialEq)]
pub enum SeedOutcome<T> {
    /// The campaign completed, possibly after retries.
    Ok {
        /// The campaign seed.
        seed: u64,
        /// Attempts used (1 = first try).
        attempts: u32,
        /// The campaign's result.
        value: T,
    },
    /// Every attempt failed; the batch carries the row instead of aborting.
    Failed {
        /// The campaign seed.
        seed: u64,
        /// Attempts used (= the policy's `max_attempts`).
        attempts: u32,
        /// The last attempt's error, rendered.
        error: String,
    },
}

impl<T> SeedOutcome<T> {
    /// The campaign seed.
    pub fn seed(&self) -> u64 {
        match self {
            SeedOutcome::Ok { seed, .. } | SeedOutcome::Failed { seed, .. } => *seed,
        }
    }

    /// Attempts used.
    pub fn attempts(&self) -> u32 {
        match self {
            SeedOutcome::Ok { attempts, .. } | SeedOutcome::Failed { attempts, .. } => *attempts,
        }
    }

    /// The result, if the campaign completed.
    pub fn value(&self) -> Option<&T> {
        match self {
            SeedOutcome::Ok { value, .. } => Some(value),
            SeedOutcome::Failed { .. } => None,
        }
    }

    /// The rendered error, if every attempt failed.
    pub fn error(&self) -> Option<&str> {
        match self {
            SeedOutcome::Ok { .. } => None,
            SeedOutcome::Failed { error, .. } => Some(error),
        }
    }

    /// `true` for a [`SeedOutcome::Failed`] row.
    pub fn is_failed(&self) -> bool {
        matches!(self, SeedOutcome::Failed { .. })
    }
}

impl Default for CampaignRunner {
    fn default() -> Self {
        CampaignRunner::serial()
    }
}

/// A campaign-level snapshot of a [`System`]'s observability counters:
/// the per-subsystem [`satin_system::SysMetrics`] totals plus trace-log
/// health. Captured at campaign end so results stay owned (`Send`) and the
/// `System` can be dropped inside the worker.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    /// World switches (entries + exits) summed over cores.
    pub world_switches: u64,
    /// Scan windows opened.
    pub scans_started: u64,
    /// Scan windows that ran to completion.
    pub scans_completed: u64,
    /// Completed scans torn by a concurrent write.
    pub scans_torn: u64,
    /// RT tasks preempting a running task at dispatch.
    pub rt_preemptions: u64,
    /// Machine-wide cache-pollution windows opened by secure exits.
    pub pollution_windows: u64,
    /// Scan results published to the normal world.
    pub publications: u64,
    /// Sum of fire-to-resume residencies, seconds (see
    /// [`mean_publication_delay_secs`](MetricsReport::mean_publication_delay_secs)).
    pub publication_delay_total_secs: f64,
    /// World switches per core, indexed by core id.
    pub per_core_world_switches: Vec<u64>,
    /// Trace entries still retained.
    pub trace_retained: usize,
    /// Trace entries evicted by the capacity bound
    /// ([`satin_sim::TraceLog::dropped`]).
    pub trace_dropped: u64,
    /// `satin.alarm` entries retained in the trace.
    pub alarms_traced: u64,
    /// Simulation events dispatched.
    pub events_dispatched: u64,
    /// Integrity alarms the secure service raised
    /// ([`satin_system::SysStats::alarms`] — counted even when tracing is
    /// off).
    pub alarms: u64,
    /// Distribution of publication delays (secure-timer fire to
    /// normal-world resume).
    pub publication_delay_hist: DurationHistogram,
    /// Distribution of hash-window lengths across completed scans.
    pub hash_window_hist: DurationHistogram,
    /// Distribution of detection latencies (fire to publication, for rounds
    /// that raised an alarm).
    pub detection_latency_hist: DurationHistogram,
    /// Telemetry span counts by name (empty unless the system was built
    /// with telemetry on).
    pub span_counts: BTreeMap<String, u64>,
    /// Injected scheduler-jitter spikes (0 in clean runs).
    pub fault_jitter_spikes: u64,
    /// Injected publication drops.
    pub fault_publications_dropped: u64,
    /// Injected publication delays.
    pub fault_publications_delayed: u64,
    /// Injected hash-window corruptions.
    pub fault_windows_corrupted: u64,
}

impl MetricsReport {
    /// Snapshots `sys`'s counters.
    pub fn capture(sys: &System) -> Self {
        let m = sys.metrics();
        let total = m.total();
        MetricsReport {
            world_switches: total.world_switches,
            scans_started: total.scans_started,
            scans_completed: total.scans_completed,
            scans_torn: total.scans_torn,
            rt_preemptions: total.rt_preemptions,
            pollution_windows: total.pollution_windows,
            publications: m.publications,
            publication_delay_total_secs: m
                .mean_publication_delay()
                .map(|d| d.as_secs_f64() * m.publications as f64)
                .unwrap_or(0.0),
            per_core_world_switches: m.per_core().map(|(_, c)| c.world_switches).collect(),
            trace_retained: sys.trace().len(),
            trace_dropped: sys.trace().dropped(),
            alarms_traced: sys.trace().by_category("satin.alarm").count() as u64,
            events_dispatched: sys.events_dispatched(),
            alarms: sys.stats().alarms,
            publication_delay_hist: m.publication_delay_hist.clone(),
            hash_window_hist: m.hash_window_hist.clone(),
            detection_latency_hist: m.detection_latency_hist.clone(),
            span_counts: sys
                .telemetry()
                .span_counts()
                .into_iter()
                .map(|(name, n)| (name.to_string(), n))
                .collect(),
            fault_jitter_spikes: sys.fault_stats().map_or(0, |s| s.jitter_spikes),
            fault_publications_dropped: sys.fault_stats().map_or(0, |s| s.publications_dropped),
            fault_publications_delayed: sys.fault_stats().map_or(0, |s| s.publications_delayed),
            fault_windows_corrupted: sys.fault_stats().map_or(0, |s| s.windows_corrupted),
        }
    }

    /// Total injected faults that actually fired in this run.
    pub fn faults_injected(&self) -> u64 {
        self.fault_jitter_spikes
            + self.fault_publications_dropped
            + self.fault_publications_delayed
            + self.fault_windows_corrupted
    }

    /// Mean publication delay (secure-timer fire to normal-world resume),
    /// seconds; `None` before the first publication.
    pub fn mean_publication_delay_secs(&self) -> Option<f64> {
        (self.publications > 0)
            .then(|| self.publication_delay_total_secs / self.publications as f64)
    }

    /// Sums a batch of reports (publication delays stay
    /// publication-weighted; per-core vectors are added elementwise).
    pub fn merged(reports: &[MetricsReport]) -> Self {
        let mut out = MetricsReport::default();
        for r in reports {
            out.world_switches += r.world_switches;
            out.scans_started += r.scans_started;
            out.scans_completed += r.scans_completed;
            out.scans_torn += r.scans_torn;
            out.rt_preemptions += r.rt_preemptions;
            out.pollution_windows += r.pollution_windows;
            out.publications += r.publications;
            out.publication_delay_total_secs += r.publication_delay_total_secs;
            if out.per_core_world_switches.len() < r.per_core_world_switches.len() {
                out.per_core_world_switches
                    .resize(r.per_core_world_switches.len(), 0);
            }
            for (acc, w) in out
                .per_core_world_switches
                .iter_mut()
                .zip(&r.per_core_world_switches)
            {
                *acc += w;
            }
            out.trace_retained += r.trace_retained;
            out.trace_dropped += r.trace_dropped;
            out.alarms_traced += r.alarms_traced;
            out.events_dispatched += r.events_dispatched;
            out.alarms += r.alarms;
            out.publication_delay_hist.merge(&r.publication_delay_hist);
            out.hash_window_hist.merge(&r.hash_window_hist);
            out.detection_latency_hist.merge(&r.detection_latency_hist);
            for (name, n) in &r.span_counts {
                *out.span_counts.entry(name.clone()).or_insert(0) += n;
            }
            out.fault_jitter_spikes += r.fault_jitter_spikes;
            out.fault_publications_dropped += r.fault_publications_dropped;
            out.fault_publications_delayed += r.fault_publications_delayed;
            out.fault_windows_corrupted += r.fault_windows_corrupted;
        }
        out
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "world switches: {} ({} rounds)   per-core: {:?}",
            self.world_switches,
            self.world_switches / 2,
            self.per_core_world_switches
        )?;
        writeln!(
            f,
            "scans: {} started, {} completed, {} torn by concurrent writes",
            self.scans_started, self.scans_completed, self.scans_torn
        )?;
        write!(
            f,
            "rt preemptions: {}   pollution windows: {}   publications: {}",
            self.rt_preemptions, self.pollution_windows, self.publications
        )?;
        if let Some(d) = self.mean_publication_delay_secs() {
            write!(f, " (mean delay {d:.2e} s)")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "events dispatched: {}   trace: {} retained, {} dropped, {} alarms ({} raised)",
            self.events_dispatched,
            self.trace_retained,
            self.trace_dropped,
            self.alarms_traced,
            self.alarms
        )?;
        if !self.publication_delay_hist.is_empty() {
            writeln!(f, "publication delay: {}", self.publication_delay_hist)?;
        }
        if !self.hash_window_hist.is_empty() {
            writeln!(f, "hash window:       {}", self.hash_window_hist)?;
        }
        if !self.detection_latency_hist.is_empty() {
            writeln!(f, "detection latency: {}", self.detection_latency_hist)?;
        }
        // Clean runs print nothing here, keeping pre-fault reports (and
        // their golden snapshots) byte-identical.
        if self.faults_injected() > 0 {
            writeln!(
                f,
                "injected faults: {} jitter spikes, {} publications dropped, {} delayed, {} windows corrupted",
                self.fault_jitter_spikes,
                self.fault_publications_dropped,
                self.fault_publications_delayed,
                self.fault_windows_corrupted
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..64).collect();
        let serial = CampaignRunner::serial().run(&items, |&i| i * i + 1);
        let parallel = CampaignRunner::new(4).run(&items, |&i| i * i + 1);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[10], 101);
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        let r = CampaignRunner::new(0);
        assert!(r.jobs() >= 1);
        assert_eq!(CampaignRunner::new(3).jobs(), 3);
        assert_eq!(CampaignRunner::default().jobs(), 1);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = CampaignRunner::new(8).run(&[7u64, 9], |&s| s + 1);
        assert_eq!(out, vec![8, 10]);
    }

    #[test]
    fn run_seeds_passes_seed_by_value() {
        let out = CampaignRunner::new(2).run_seeds(&[1, 2, 3, 4], |s| s * 10);
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn observed_stream_is_byte_identical_for_any_worker_count() {
        let seeds = [1u64, 2, 3, 4, 5];
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        };
        let run = |runner: &CampaignRunner| {
            let obs = CampaignObs::new("retry-test");
            runner.run_seeds_with_retry_observed(
                &seeds,
                policy,
                &obs,
                |s| format!("t/s{s}"),
                |seed, attempt, log| {
                    log.emit(ObsEvent::FaultArmed {
                        cell: log.cell(),
                        seed,
                        fault: "fault.jitter".to_string(),
                    });
                    if seed == 5 {
                        Err("doomed")
                    } else if seed % 2 == 0 && attempt < 2 {
                        Err("flaky")
                    } else {
                        Ok(seed * 10)
                    }
                },
            )
        };
        let (serial_out, serial_stream) = run(&CampaignRunner::serial());
        let (par_out, par_stream) = run(&CampaignRunner::new(4));
        // The canonical stream carries no worker ids or host times, and is
        // assembled from per-cell logs in input order — byte-identical.
        assert_eq!(serial_out, par_out);
        assert_eq!(serial_stream.to_jsonl(), par_stream.to_jsonl());
        let jsonl = serial_stream.to_jsonl();
        // Seeds 2 and 4 retried once each; seed 5 salvaged after 3 tries.
        assert!(serial_out[4].is_failed());
        assert_eq!(serial_out[4].attempts(), 3);
        assert_eq!(jsonl.matches("\"event\":\"cell.retried\"").count(), 4);
        assert_eq!(jsonl.matches("\"event\":\"cell.salvaged\"").count(), 1);
        assert!(
            jsonl.contains("\"cells\":5,\"ok\":4,\"failed\":1,\"retries\":4"),
            "{jsonl}"
        );
    }

    #[test]
    fn merged_report_weights_delays_by_publications() {
        let a = MetricsReport {
            publications: 1,
            publication_delay_total_secs: 0.010,
            per_core_world_switches: vec![2, 0],
            ..MetricsReport::default()
        };
        let b = MetricsReport {
            publications: 3,
            publication_delay_total_secs: 0.006,
            per_core_world_switches: vec![0, 4],
            ..MetricsReport::default()
        };
        let m = MetricsReport::merged(&[a, b]);
        assert_eq!(m.publications, 4);
        assert!((m.mean_publication_delay_secs().unwrap() - 0.004).abs() < 1e-12);
        assert_eq!(m.per_core_world_switches, vec![2, 4]);
        assert!(MetricsReport::default()
            .mean_publication_delay_secs()
            .is_none());
    }
}
