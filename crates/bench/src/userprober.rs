//! §III-B1 — the user-level prober's detection capability, and why TZ-Evader
//! upgraded to a kernel-level prober.
//!
//! The paper measures that the user-level prober's detection delay
//! `Tns_delay` stays under 5.97e-3 s while a typical kernel integrity check
//! occupies a core for 8.04e-2 s — so even an unprivileged process can
//! detect TrustZone introspection. But "when one core is scheduled with
//! several threads that have the same or higher schedule priority than the
//! probing thread, the prober's `Tns_sched` is increased" (§IV-B) — which is
//! what motivates KProber-II's `SCHED_FIFO` priority. We measure both
//! effects: detection delay per prober variant, idle and under CPU load.

use satin_attack::channel::EvaderChannel;
use satin_attack::kprober::{deploy_kprober_ii, deploy_user_prober, ProberVariant};
use satin_attack::prober::{ProberConfig, ProberShared};
use satin_hw::timing::ScanStrategy;
use satin_hw::CoreId;
use satin_kernel::{Affinity, SchedClass};
use satin_mem::MemRange;
use satin_sim::{SimDuration, SimTime};
use satin_stats::Summary;
use satin_system::{
    BootCtx, RunCtx, RunOutcome, ScanRequest, SecureCtx, SecureService, SystemBuilder,
};
use std::cell::RefCell;
use std::rc::Rc;

/// One measurement configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserProberConfig {
    /// Prober implementation under test.
    pub variant: ProberVariant,
    /// Number of competing CFS spinner tasks (0 = idle system).
    pub load_tasks: usize,
    /// Introspection rounds to sample.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
}

/// The outcome: detection delays and the scan they raced.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProberResult {
    /// Detection delay from scan start, per detected round, seconds.
    pub delays: Summary,
    /// Rounds that were never detected at all (missed).
    pub missed: usize,
    /// Mean duration of one kernel integrity check, seconds (the paper's
    /// 8.04e-2 comparison point).
    pub check_secs: f64,
}

struct RecordingScanService {
    core: CoreId,
    period: SimDuration,
    fires: Rc<RefCell<Vec<SimTime>>>,
    ends: Rc<RefCell<Vec<SimTime>>>,
}

impl SecureService for RecordingScanService {
    fn on_boot(&mut self, ctx: &mut BootCtx<'_>) -> Result<(), satin_system::SatinError> {
        ctx.arm_core(self.core, SimTime::ZERO + self.period)?;
        Ok(())
    }

    fn on_secure_timer(&mut self, _core: CoreId, ctx: &mut SecureCtx<'_>) -> Option<ScanRequest> {
        self.fires.borrow_mut().push(ctx.now());
        let layout = satin_mem::KernelLayout::paper();
        Some(ScanRequest {
            area_id: 0,
            range: MemRange::new(layout.base(), layout.total_size()),
            strategy: ScanStrategy::DirectHash,
        })
    }

    fn on_scan_result(
        &mut self,
        _core: CoreId,
        _request: &ScanRequest,
        _observed: &[u8],
        ctx: &mut SecureCtx<'_>,
    ) {
        self.ends.borrow_mut().push(ctx.now());
        ctx.arm_self(ctx.now() + self.period);
    }
}

/// Runs the measurement.
pub fn measure(config: UserProberConfig) -> UserProberResult {
    let mut sys = SystemBuilder::new().seed(config.seed).trace(false).build();
    let n = sys.num_cores();

    // Background load: CFS spinners competing with the prober threads.
    for i in 0..config.load_tasks {
        let t = sys.spawn(
            format!("load-{i}"),
            SchedClass::cfs(),
            Affinity::any(n),
            |_: &mut RunCtx<'_>| RunOutcome::yield_after(SimDuration::from_millis(2)),
        );
        sys.wake_at(t, SimTime::ZERO);
    }

    // The prober, wired to a channel so detections carry timestamps.
    let channel = EvaderChannel::new();
    let shared = ProberShared::with_channel(channel.clone());
    let cfg = ProberConfig::paper_kprober();
    match config.variant {
        ProberVariant::UserLevel => {
            deploy_user_prober(&mut sys, cfg, &shared, SimTime::ZERO);
        }
        ProberVariant::KProberII => {
            deploy_kprober_ii(&mut sys, cfg, &shared, SimTime::ZERO);
        }
        ProberVariant::KProberI => {
            satin_attack::kprober::deploy_kprober_i(&mut sys, cfg, &shared, SimTime::ZERO);
        }
    }

    // The introspection: full-kernel scans every 300 ms on a fixed A53 core
    // (the paper's "typical TrustZone-based kernel integrity checking").
    let fires = Rc::new(RefCell::new(Vec::new()));
    let ends = Rc::new(RefCell::new(Vec::new()));
    sys.install_secure_service(RecordingScanService {
        core: CoreId::new(3),
        period: SimDuration::from_millis(300),
        fires: fires.clone(),
        ends: ends.clone(),
    });

    let horizon = SimDuration::from_millis(450) * (config.trials as u64 + 1);
    sys.run_until(SimTime::ZERO + horizon);

    let fires = fires.borrow();
    let ends = ends.borrow();
    let detections = channel.detections();
    let mut delays = Vec::new();
    let mut missed = 0usize;
    for (i, fire) in fires.iter().take(config.trials).enumerate() {
        let end = ends.get(i).copied().unwrap_or(SimTime::MAX);
        match detections
            .iter()
            .find(|d| d.at > *fire && d.at < end)
            .map(|d| d.at.since(*fire).as_secs_f64())
        {
            Some(delay) => delays.push(delay),
            None => missed += 1,
        }
    }
    let check_secs = fires
        .iter()
        .zip(ends.iter())
        .map(|(f, e)| e.since(*f).as_secs_f64())
        .sum::<f64>()
        / fires.len().max(1) as f64;
    UserProberResult {
        delays: Summary::of(&delays).unwrap_or(Summary {
            count: 0,
            mean: f64::NAN,
            min: f64::NAN,
            max: f64::NAN,
            stddev: 0.0,
        }),
        missed,
        check_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_prober_detects_well_within_the_check() {
        // §III-B1: Tns_delay ≪ the 8e-2..1.3e-1 s kernel check duration.
        let r = measure(UserProberConfig {
            variant: ProberVariant::UserLevel,
            load_tasks: 0,
            trials: 5,
            seed: 81,
        });
        assert_eq!(r.missed, 0, "user prober missed a round on an idle system");
        assert!(
            r.delays.max < 5.97e-3,
            "Tns_delay {:.2e} above the paper's 5.97e-3 bound",
            r.delays.max
        );
        assert!(
            r.check_secs > 0.08,
            "full-kernel check only {:.3}s",
            r.check_secs
        );
    }

    #[test]
    fn load_hurts_user_prober_but_not_kprober() {
        let user_loaded = measure(UserProberConfig {
            variant: ProberVariant::UserLevel,
            load_tasks: 18, // three runnable CFS tasks per core
            trials: 5,
            seed: 82,
        });
        let kprober_loaded = measure(UserProberConfig {
            variant: ProberVariant::KProberII,
            load_tasks: 18,
            trials: 5,
            seed: 82,
        });
        assert_eq!(kprober_loaded.missed, 0, "KProber-II must shrug off load");
        assert!(
            kprober_loaded.delays.max < 3e-3,
            "KProber-II delay {:.2e}",
            kprober_loaded.delays.max
        );
        // The user prober degrades: slower detection or outright misses.
        let degraded =
            user_loaded.missed > 0 || user_loaded.delays.mean > 2.0 * kprober_loaded.delays.mean;
        assert!(
            degraded,
            "user prober should degrade under load: user {:?} vs kprober {:?}",
            user_loaded.delays, kprober_loaded.delays
        );
    }
}
