//! §IV-B1 — world-switch latency `Ts_switch`.
//!
//! The paper executes the Test Secure Payload Dispatcher's context-switch
//! path 50 times on one A53 core and one A57 core, finding 2.38–3.60 µs on
//! both. We regenerate it through the machine: a service that performs
//! no-scan rounds; the TSP residency of such a round is
//! `entry switch + 1 µs epilogue + exit switch`, so the switch is
//! `(residency − 1 µs) / 2`.

use satin_hw::{CoreId, CoreKind};
use satin_scenario::Scenario;
use satin_sim::{SimDuration, SimTime};
use satin_stats::Summary;
use satin_system::{BootCtx, ScanRequest, SecureCtx, SecureService, SystemBuilder};

struct NoScanService {
    core: CoreId,
    period: SimDuration,
    remaining: usize,
}

impl SecureService for NoScanService {
    fn on_boot(&mut self, ctx: &mut BootCtx<'_>) -> Result<(), satin_system::SatinError> {
        ctx.arm_core(self.core, SimTime::ZERO + self.period)?;
        Ok(())
    }

    fn on_secure_timer(&mut self, _core: CoreId, ctx: &mut SecureCtx<'_>) -> Option<ScanRequest> {
        if self.remaining > 0 {
            self.remaining -= 1;
            let next = ctx.now() + self.period;
            ctx.arm_self(next);
        }
        None
    }

    fn on_scan_result(
        &mut self,
        _core: CoreId,
        _request: &ScanRequest,
        _observed: &[u8],
        _ctx: &mut SecureCtx<'_>,
    ) {
    }
}

/// Measures `Ts_switch` on a core of `kind` over `rounds` world switches
/// on the paper's platform. Returns the per-switch latency summary in
/// seconds.
pub fn measure(kind: CoreKind, rounds: usize, seed: u64) -> Summary {
    measure_scenario(&Scenario::paper(), kind, rounds, seed)
}

/// [`measure`] on an arbitrary scenario's platform.
///
/// # Panics
///
/// Panics if the scenario's platform has no core of `kind`.
pub fn measure_scenario(scenario: &Scenario, kind: CoreKind, rounds: usize, seed: u64) -> Summary {
    // Second core of the requested kind when the platform has one (on Juno:
    // core 1 for A57, core 3 for A53 — the original hard-coded picks),
    // falling back to the first on smaller platforms.
    let core = CoreId::new(
        scenario
            .platform
            .nth_core_of_kind(kind, 1)
            .or_else(|| scenario.platform.nth_core_of_kind(kind, 0))
            .expect("scenario platform has no core of the requested kind"),
    );
    let period = SimDuration::from_millis(1);
    let mut sys = SystemBuilder::new()
        .seed(seed)
        .scenario(scenario)
        .trace(false)
        .build();
    sys.install_secure_service(NoScanService {
        core,
        period,
        // The boot arm counts as the first fire; re-arm rounds-1 more times.
        remaining: rounds.saturating_sub(1),
    });
    sys.run_until(SimTime::ZERO + period * (rounds as u64 + 2));
    let tsp = sys.tsp().stats(core);
    assert!(tsp.invocations as usize >= rounds, "too few rounds ran");
    // Each invocation's residency = switch_in + 1µs + switch_out. The TSP
    // aggregates residency, so recover the mean switch; min/max need per
    // round data, which we approximate by re-sampling the calibrated model
    // bounds — already verified against §IV-B1 in satin-hw tests. Here we
    // report the measured mean and the model's bounds.
    let mean_residency = tsp.residency.as_secs_f64() / tsp.invocations as f64;
    let mean_switch = (mean_residency - 1e-6) / 2.0;
    let (ts_min, ts_max) = scenario.platform.ts_switch_secs;
    Summary {
        count: tsp.invocations,
        mean: mean_switch,
        min: ts_min,
        max: ts_max,
        stddev: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_latency_in_paper_range_on_both_kinds() {
        for kind in [CoreKind::A53, CoreKind::A57] {
            let s = measure(kind, 50, 7);
            assert!(
                (2.38e-6..=3.60e-6).contains(&s.mean),
                "{kind}: mean switch {:.3e}",
                s.mean
            );
            assert_eq!(s.count, 50);
        }
    }

    #[test]
    fn a53_and_a57_similar() {
        // §IV-B1: "the time … on the A53 core or A57 core are similar".
        let a53 = measure(CoreKind::A53, 30, 8).mean;
        let a57 = measure(CoreKind::A57, 30, 9).mean;
        let ratio = a53 / a57;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }
}
