//! The hot-path performance trajectory: `repro bench --json BENCH_NNNN.json`.
//!
//! ROADMAP item 1 asks for committed `BENCH_*.json` snapshots so hot-path
//! performance becomes an auditable trajectory rather than folklore. This
//! module measures three groups in one process and emits one schema-stable
//! JSON document:
//!
//! - **`queue`** — event-queue churn: the timing-wheel [`EventQueue`]
//!   against the retained [`BaselineHeapQueue`] reference on the same
//!   push/pop program.
//! - **`hash_window`** — digesting a scan window: the slice-batched
//!   enum-dispatched path against the pre-refactor cost structure (a boxed
//!   `dyn KernelHasher` fed one byte per `update` call — the "virtual call
//!   per update, per-byte accounting" shape the refactor removed).
//! - **`seeds_per_sec`** — a synthetic seed model (fixed quanta of queue
//!   ops + window hashing per seed) measured in both cost structures, whose
//!   ratio is the headline speedup, plus a real end-to-end
//!   `detection::quick` campaign rate for the trajectory.
//!
//! The baseline sides are *models measured in the same binary*, not
//! checkouts of the old code: the heap queue is the literal pre-refactor
//! implementation, and the per-byte boxed hasher reproduces the old
//! per-byte recurrence behind the old dispatch mechanism. That makes every
//! number in one file comparable — same machine, same run, same compiler.
//!
//! This is the one module in the workspace that reads the wall clock
//! outside the vendored criterion stub; every read is an explicit
//! `lint:allow(wall-clock)` because real throughput is the measurand.

use crate::detection::{self, DetectionConfig};
use satin_hash::{HashAlgorithm, HasherKind};
use satin_sim::{BaselineHeapQueue, EventQueue, SimTime};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured benchmark: the median wall time of `samples` runs of a
/// fixed workload, normalized per inner unit.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Schema group: `queue`, `hash_window`, or `seeds_model`.
    pub group: &'static str,
    /// Entry name within the group.
    pub name: &'static str,
    /// Median nanoseconds per unit (per queue op, per byte, per seed).
    pub ns_per_unit: f64,
    /// Units per second (1e9 / `ns_per_unit`).
    pub per_sec: f64,
    /// The unit being counted.
    pub unit: &'static str,
    /// Number of timed samples the median was taken over.
    pub samples: usize,
}

/// The headline seeds/sec comparison plus the real campaign rate.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedsPerSec {
    /// Synthetic seed model on the pre-refactor cost structure
    /// (heap queue + boxed per-byte hashing).
    pub baseline_model: f64,
    /// The same model on the current hot path (wheel + batched hashing).
    pub current_model: f64,
    /// `current_model / baseline_model` — the acceptance-gate ratio.
    pub speedup: f64,
    /// Real seeds/sec of `detection::run(DetectionConfig::quick(..))`.
    pub campaign_quick: f64,
}

/// Host metadata stamped into a snapshot (schema 2+): which compiler and
/// machine produced the numbers, and how long the whole suite took. The
/// trajectory gate uses the `rustc` string as a host fingerprint — absolute
/// rates are only compared between snapshots whose fingerprints match.
#[derive(Debug, Clone, PartialEq)]
pub struct HostMeta {
    /// `rustc --version` of the compiler that built this binary, passed in
    /// by the caller (the library does not shell out).
    pub rustc: String,
    /// Total wall-clock the bench suite took, nanoseconds.
    pub wall_ns: u64,
    /// Number of measured entries (a quick consistency check for readers).
    pub entries: usize,
}

/// The full report written to `BENCH_NNNN.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Snapshot identifier (`BENCH_0007`).
    pub id: &'static str,
    /// Schema version for the CI validator.
    pub schema: u32,
    /// `true` when run in quick mode (smaller windows, fewer samples).
    pub quick: bool,
    /// Master seed the campaign measurement used.
    pub seed: u64,
    /// Host metadata (schema 2).
    pub host: HostMeta,
    /// All measured entries.
    pub entries: Vec<BenchEntry>,
    /// The headline numbers.
    pub seeds_per_sec: SeedsPerSec,
}

/// Snapshot id for this PR's committed trajectory point.
pub const SNAPSHOT_ID: &str = "BENCH_0007";

/// Schema version understood by `ci.sh`'s validator: 2 adds the `host`
/// object (rustc fingerprint, suite wall-clock, entry count).
pub const SCHEMA_VERSION: u32 = 2;

/// Median of `samples` timed runs of `f`, in nanoseconds per run. One
/// untimed warm-up call precedes the timed ones.
fn median_ns<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now(); // lint:allow(wall-clock) — bench harness measures real throughput
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// The queue churn program both implementations run: `n` pushes over a
/// spread of near/far times, then a full drain. Mirrors the engine's
/// traffic: dense near-term tick/dispatch events with occasional far-future
/// timers (the overflow level).
fn queue_program_wheel(n: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut acc = 0u64;
    for i in 0..n {
        let t = if i % 97 == 0 {
            // Far future: past the ~1 ms wheel window.
            10_000_000 + i * 1_000
        } else {
            (i * 37) % 60_000
        };
        q.push(SimTime::from_nanos(t), i);
    }
    while let Some((_, v)) = q.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

/// Identical program on the reference heap.
fn queue_program_heap(n: u64) -> u64 {
    let mut q: BaselineHeapQueue<u64> = BaselineHeapQueue::new();
    let mut acc = 0u64;
    for i in 0..n {
        let t = if i % 97 == 0 {
            10_000_000 + i * 1_000
        } else {
            (i * 37) % 60_000
        };
        q.push(SimTime::from_nanos(t), i);
    }
    while let Some((_, v)) = q.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

/// Current hash path: enum dispatch, slice-batched update.
fn hash_batched(window: &[u8]) -> u64 {
    let mut h = HasherKind::new(HashAlgorithm::Djb2);
    h.update(window);
    h.finish()
}

/// Pre-refactor cost structure: a boxed trait object taking one virtual
/// `update` call per byte (the per-byte scan-accounting shape).
fn hash_boxed_per_byte(window: &[u8]) -> u64 {
    let mut h = HashAlgorithm::Djb2.new_hasher();
    for b in window.chunks(1) {
        h.update(b);
    }
    h.finish()
}

/// One synthetic seed on the current hot path: a fixed quantum of queue
/// churn plus one window digest.
fn seed_model_current(window: &[u8]) -> u64 {
    queue_program_wheel(2_000).wrapping_add(hash_batched(window))
}

/// The same quantum on the pre-refactor cost structure.
fn seed_model_baseline(window: &[u8]) -> u64 {
    queue_program_heap(2_000).wrapping_add(hash_boxed_per_byte(window))
}

/// Runs the full suite. `quick` shrinks windows and sample counts (the CI
/// smoke path); `--full` sizes match the committed snapshot. `rustc` is the
/// compiler version string to stamp into the snapshot's host metadata —
/// callers obtain it (e.g. `rustc --version`) because this library does
/// not spawn processes.
pub fn run(quick: bool, seed: u64, rustc: &str) -> BenchReport {
    let suite_start = Instant::now(); // lint:allow(wall-clock) — host metadata records real suite wall-clock
    let samples = if quick { 5 } else { 15 };
    let queue_events: u64 = if quick { 10_000 } else { 50_000 };
    let window_len: usize = if quick { 64 * 1024 } else { 1 << 20 };
    // Deterministic non-trivial window contents.
    let window: Vec<u8> = (0..window_len)
        .map(|i| ((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 56) as u8)
        .collect();

    let mut entries = Vec::new();

    let wheel_ns = median_ns(samples, || queue_program_wheel(queue_events));
    let heap_ns = median_ns(samples, || queue_program_heap(queue_events));
    // Each event is one push + one pop.
    let ops = (queue_events * 2) as f64;
    entries.push(entry("queue", "wheel_churn", wheel_ns / ops, "op", samples));
    entries.push(entry("queue", "heap_churn", heap_ns / ops, "op", samples));

    let batched_ns = median_ns(samples, || hash_batched(&window));
    let boxed_ns = median_ns(samples, || hash_boxed_per_byte(&window));
    let bytes = window.len() as f64;
    entries.push(entry(
        "hash_window",
        "djb2_batched",
        batched_ns / bytes,
        "byte",
        samples,
    ));
    entries.push(entry(
        "hash_window",
        "djb2_boxed_per_byte",
        boxed_ns / bytes,
        "byte",
        samples,
    ));

    let current_ns = median_ns(samples, || seed_model_current(&window));
    let baseline_ns = median_ns(samples, || seed_model_baseline(&window));
    entries.push(entry("seeds_model", "current", current_ns, "seed", samples));
    entries.push(entry(
        "seeds_model",
        "baseline",
        baseline_ns,
        "seed",
        samples,
    ));

    // Real end-to-end rate: a quick detection campaign, one timed run
    // (its internal work dwarfs timer resolution).
    let campaign_samples = if quick { 1 } else { 3 };
    let campaign_ns = median_ns(campaign_samples, || {
        detection::run(DetectionConfig::quick(seed)).rounds
    });

    let host = HostMeta {
        rustc: rustc.to_string(),
        wall_ns: suite_start.elapsed().as_nanos() as u64,
        entries: entries.len(),
    };
    BenchReport {
        id: SNAPSHOT_ID,
        schema: SCHEMA_VERSION,
        quick,
        seed,
        host,
        entries,
        seeds_per_sec: SeedsPerSec {
            baseline_model: 1e9 / baseline_ns,
            current_model: 1e9 / current_ns,
            speedup: baseline_ns / current_ns,
            campaign_quick: 1e9 / campaign_ns,
        },
    }
}

fn entry(
    group: &'static str,
    name: &'static str,
    ns_per_unit: f64,
    unit: &'static str,
    samples: usize,
) -> BenchEntry {
    BenchEntry {
        group,
        name,
        ns_per_unit,
        per_sec: 1e9 / ns_per_unit,
        unit,
        samples,
    }
}

impl BenchReport {
    /// Serializes the report (hand-rolled, like the telemetry report — no
    /// serde in the workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"id\": \"{}\",", self.id);
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(
            out,
            "  \"host\": {{\"rustc\": \"{}\", \"wall_ns\": {}, \"entries\": {}}},",
            satin_telemetry::json_escape(&self.host.rustc),
            self.host.wall_ns,
            self.host.entries
        );
        let _ = writeln!(out, "  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"group\": \"{}\", \"name\": \"{}\", \"ns_per_unit\": {:.4}, \
                 \"per_sec\": {:.1}, \"unit\": \"{}\", \"samples\": {}}}{comma}",
                e.group, e.name, e.ns_per_unit, e.per_sec, e.unit, e.samples
            );
        }
        let _ = writeln!(out, "  ],");
        let s = &self.seeds_per_sec;
        let _ = writeln!(out, "  \"seeds_per_sec\": {{");
        let _ = writeln!(out, "    \"baseline_model\": {:.2},", s.baseline_model);
        let _ = writeln!(out, "    \"current_model\": {:.2},", s.current_model);
        let _ = writeln!(out, "    \"speedup\": {:.2},", s.speedup);
        let _ = writeln!(out, "    \"campaign_quick\": {:.3}", s.campaign_quick);
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }
}

impl std::fmt::Display for BenchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} ({} mode, seed {})",
            self.id,
            if self.quick { "quick" } else { "full" },
            self.seed
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "  {:<12} {:<22} {:>12.3} ns/{:<5} {:>16.0} {}/s",
                e.group, e.name, e.ns_per_unit, e.unit, e.per_sec, e.unit
            )?;
        }
        let s = &self.seeds_per_sec;
        writeln!(
            f,
            "  seeds/sec: baseline(model) {:.0}  current(model) {:.0}  speedup {:.2}x  campaign(quick) {:.2}",
            s.baseline_model, s.current_model, s.speedup, s.campaign_quick
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cost models agree on results (they are the same computation in
    /// two cost structures), so the speedup ratio measures dispatch and
    /// layout alone.
    #[test]
    fn models_compute_identical_results() {
        let window: Vec<u8> = (0u16..512).map(|i| (i % 251) as u8).collect();
        assert_eq!(queue_program_wheel(3_000), queue_program_heap(3_000));
        assert_eq!(hash_batched(&window), hash_boxed_per_byte(&window));
        assert_eq!(seed_model_current(&window), seed_model_baseline(&window));
    }

    #[test]
    fn json_is_schema_shaped() {
        let report = BenchReport {
            id: SNAPSHOT_ID,
            schema: SCHEMA_VERSION,
            quick: true,
            seed: 7,
            host: HostMeta {
                rustc: "rustc 1.0.0 (\"quoted\")".to_string(),
                wall_ns: 1_234_567,
                entries: 1,
            },
            entries: vec![super::entry("queue", "wheel_churn", 12.5, "op", 5)],
            seeds_per_sec: SeedsPerSec {
                baseline_model: 10.0,
                current_model: 40.0,
                speedup: 4.0,
                campaign_quick: 2.5,
            },
        };
        let json = report.to_json();
        for needle in [
            "\"id\": \"BENCH_0007\"",
            "\"schema\": 2",
            "\"host\": {\"rustc\": \"rustc 1.0.0 (\\\"quoted\\\")\", \"wall_ns\": 1234567, \"entries\": 1},",
            "\"entries\": [",
            "\"group\": \"queue\"",
            "\"seeds_per_sec\": {",
            "\"speedup\": 4.00",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }
}
