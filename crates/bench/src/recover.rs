//! §IV-B2 — trace-recovery time `Tns_recover`.
//!
//! The paper measures the rootkit's recovery 50 times per core kind:
//! A53 average 5.80e-3 s, A57 average 4.96e-3 s. We regenerate it through
//! the machine: trigger hides against a deployed rootkit pinned to a core of
//! each kind and measure detection→restore latency (which additionally
//! includes up to one 50 µs poll period — the attacker's real reaction
//! path).

use satin_attack::channel::EvaderChannel;
use satin_attack::rootkit::{deploy_rootkit, RootkitConfig};
use satin_hw::{CoreId, CoreKind};
use satin_scenario::Scenario;
use satin_sim::{SimDuration, SimTime};
use satin_stats::Summary;
use satin_system::SystemBuilder;

/// Measures `Tns_recover` on a core of `kind` over `rounds` hide cycles on
/// the paper's platform. Returns the recovery-latency summary in seconds.
pub fn measure(kind: CoreKind, rounds: usize, seed: u64) -> Summary {
    measure_scenario(&Scenario::paper(), kind, rounds, seed)
}

/// [`measure`] on an arbitrary scenario's platform.
///
/// # Panics
///
/// Panics if the scenario's platform has no core of `kind`.
pub fn measure_scenario(scenario: &Scenario, kind: CoreKind, rounds: usize, seed: u64) -> Summary {
    // On Juno the original picks were core 0 (first A57) and core 4 (third
    // A53); preserve them, falling back to the first core of the kind on
    // platforms with fewer cores.
    let nth = match kind {
        CoreKind::A57 => 0,
        CoreKind::A53 => 2,
    };
    let core = CoreId::new(
        scenario
            .platform
            .nth_core_of_kind(kind, nth)
            .or_else(|| scenario.platform.nth_core_of_kind(kind, 0))
            .expect("scenario platform has no core of the requested kind"),
    );
    let mut sys = SystemBuilder::new()
        .seed(seed)
        .scenario(scenario)
        .trace(false)
        .build();
    let channel = EvaderChannel::new();
    let config = RootkitConfig {
        quiet_before_reinstall: SimDuration::from_millis(5),
        // Pin recovery to the measured core so the sample is per-kind.
        multi_core_recovery: false,
        ..RootkitConfig::default()
    };
    let (_, handle) = deploy_rootkit(&mut sys, core, config, &channel, SimTime::ZERO);
    let mut samples = Vec::with_capacity(rounds);
    let mut t = SimTime::from_millis(2);
    for _ in 0..rounds {
        sys.run_until(t);
        assert!(handle.is_active(), "rootkit must be active before a hide");
        let detect_at = sys.now();
        channel.report_detection(detect_at, CoreId::new(0), SimDuration::from_millis(2));
        // Recovery ≤ 6.2 ms, reinstall after 5 ms quiet: 15 ms covers a cycle.
        t += SimDuration::from_millis(15);
        sys.run_until(t);
        let restored = handle.last_restore_at().expect("restore happened");
        samples.push(restored.since(detect_at).as_secs_f64());
        t += SimDuration::from_millis(10);
    }
    Summary::of(&samples).expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a53_recovery_matches_paper() {
        let s = measure(CoreKind::A53, 20, 5);
        // Paper: 5.80e-3 average; our path adds ≤ 50µs of poll latency.
        assert!(
            (5.4e-3..6.3e-3).contains(&s.mean),
            "A53 recovery mean {:.3e}",
            s.mean
        );
        assert!(s.max <= 6.3e-3, "max {:.3e}", s.max);
    }

    #[test]
    fn a57_recovers_faster_than_a53() {
        let a53 = measure(CoreKind::A53, 15, 6).mean;
        let a57 = measure(CoreKind::A57, 15, 7).mean;
        assert!(a57 < a53, "A57 {a57:.3e} vs A53 {a53:.3e}");
        // Paper: A57 average 4.96e-3.
        assert!((4.5e-3..5.5e-3).contains(&a57), "A57 mean {a57:.3e}");
    }
}
