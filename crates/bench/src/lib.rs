//! Experiment harness regenerating every table and figure of the SATIN
//! paper (DSN 2019).
//!
//! Each module regenerates one published result; the `repro` binary prints
//! them in the paper's format. See `DESIGN.md`'s per-experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured numbers.
//!
//! | Module | Paper result |
//! |---|---|
//! | [`table1`] | Table I — secure-world introspection time per byte |
//! | [`switch`] | §IV-B1 — world-switch latency `Ts_switch` |
//! | [`recover`] | §IV-B2 — trace-recovery time `Tns_recover` |
//! | [`table2`] | Table II / Figure 4 — probing thresholds vs period |
//! | [`race`] | §IV-C / Figure 3 — race-condition bound and timeline |
//! | [`detection`] | §VI-B1 — SATIN vs TZ-Evader detection campaign |
//! | [`fig7`] | Figure 7 — UnixBench overhead, 1-task and 6-task |
//! | [`ablation`] | Baseline comparisons and design-choice sweeps |
//! | [`userprober`] | §III-B1 — user-level prober capability and load sensitivity |
//! | [`analysis`] | `--analyze` — happens-before race detection + Eq.1/Eq.2 audit |
//! | [`scenario_grid`] | `grid` — the detection campaign swept over scenario profiles |
//!
//! [`runner`] is the shared harness: a [`CampaignRunner`] fans independent
//! seeded campaigns across threads (results in input order, so aggregates
//! don't depend on the job count), and a [`MetricsReport`] snapshots a
//! finished system's per-subsystem counters and trace health.
//! [`telemetry_report`] turns those snapshots into the `--metrics-json`
//! aggregate and runs the fully-traced race behind `--trace-out`.

pub mod ablation;
pub mod analysis;
pub mod detection;
pub mod fig7;
pub mod perf;
pub mod race;
pub mod recover;
pub mod runner;
pub mod scenario_grid;
pub mod switch;
pub mod table1;
pub mod table2;
pub mod telemetry_report;
pub mod threshold_sweep;
pub mod userprober;

pub use analysis::{analyze_campaign, AnalysisRun};
pub use runner::{CampaignRunner, MetricsReport, RetryPolicy, SeedOutcome};
pub use scenario_grid::{ScenarioGrid, ScenarioGridReport, ScenarioOutcome};
pub use telemetry_report::{
    run_traced_race, run_traced_race_scenario, TelemetryReport, TracedRace,
};

/// Default master seed for all experiments (override per run for variance
/// studies).
pub const DEFAULT_SEED: u64 = 0x5a71_2019;
