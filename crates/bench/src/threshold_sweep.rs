//! §VII-B — how the attacker's threshold choice trades false positives
//! against reaction latency.
//!
//! "If too low a threshold is chosen the prober misfires on ordinary
//! scheduling noise; too high and the evader reacts late." The paper says
//! the attacker must *learn* `Tns_threshold` from the victim; this sweep
//! shows why the learning matters: below the baseline staleness the rootkit
//! spends its life hiding from ghosts; far above it the reaction latency
//! eats the evasion margin.

use satin_attack::prober::{deploy_prober_threads, ProberConfig, ProberShared};
use satin_attack::{channel::EvaderChannel, TzEvader, TzEvaderConfig};
use satin_core::baseline::{BaselineConfig, NaiveIntrospection};
use satin_kernel::SchedClass;
use satin_sim::{SimDuration, SimTime};
use satin_system::SystemBuilder;

/// Outcome at one threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdPoint {
    /// The threshold under test, seconds.
    pub threshold_secs: f64,
    /// False-positive detection sessions per minute on a quiet system
    /// (no secure-world activity at all).
    pub false_sessions_per_min: f64,
    /// Against a periodic monolithic baseline: rounds that observed
    /// tampering (0 = perfect evasion).
    pub caught_rounds: u64,
    /// Introspection rounds run in the evasion phase.
    pub total_rounds: u64,
    /// Attack uptime fraction in the evasion phase.
    pub attack_uptime: f64,
}

/// Measures one threshold: a quiet-system FP phase, then an evasion phase
/// against a periodic monolithic baseline.
pub fn measure(threshold_secs: f64, seed: u64) -> ThresholdPoint {
    // Phase 1: quiet system — count detection sessions with no secure world.
    let quiet_secs = 30u64;
    let false_sessions = {
        let mut sys = SystemBuilder::new().seed(seed).trace(false).build();
        let channel = EvaderChannel::new();
        let shared = ProberShared::with_channel(channel.clone());
        let mut cfg = ProberConfig::paper_kprober();
        cfg.threshold = Some(SimDuration::from_secs_f64(threshold_secs));
        deploy_prober_threads(&mut sys, SchedClass::rt_max(), cfg, &shared, SimTime::ZERO);
        sys.run_until(SimTime::from_secs(quiet_secs));
        channel
            .distinct_sessions(SimDuration::from_millis(100))
            .len()
    };

    // Phase 2: evasion against a periodic full-kernel scan.
    let mut sys = SystemBuilder::new()
        .seed(seed ^ 0xfeed)
        .trace(false)
        .build();
    let (svc, defense) = NaiveIntrospection::new(BaselineConfig::periodic_fixed(
        SimDuration::from_millis(400),
    ));
    sys.install_secure_service(svc);
    let mut evader_cfg = TzEvaderConfig::paper_default();
    evader_cfg.prober_config.threshold = Some(SimDuration::from_secs_f64(threshold_secs));
    let evader = TzEvader::deploy(&mut sys, evader_cfg);
    sys.run_until(SimTime::from_secs(4));
    let uptime = evader.rootkit.active_time(sys.now()).as_secs_f64() / sys.now().as_secs_f64();

    ThresholdPoint {
        threshold_secs,
        false_sessions_per_min: false_sessions as f64 * 60.0 / quiet_secs as f64,
        caught_rounds: defense.tampered_rounds(),
        total_rounds: defense.rounds(),
        attack_uptime: uptime,
    }
}

/// Sweeps thresholds expressed as multiples of the paper's learned 1.8e-3.
pub fn sweep(factors: &[f64], seed: u64) -> Vec<ThresholdPoint> {
    factors
        .iter()
        .map(|f| measure(1.8e-3 * f, seed.wrapping_add((f * 100.0) as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learned_threshold_is_quiet_and_effective() {
        let p = measure(1.8e-3, 91);
        assert_eq!(
            p.false_sessions_per_min, 0.0,
            "the learned threshold must not misfire on a quiet system"
        );
        assert!(p.total_rounds >= 5);
        assert_eq!(p.caught_rounds, 0, "evasion must succeed at 1.8e-3");
        assert!(p.attack_uptime > 0.5, "uptime {}", p.attack_uptime);
    }

    #[test]
    fn too_low_threshold_misfires() {
        // Below the ~2.1e-4 baseline staleness, everything looks like an
        // introspection: the prober fires constantly.
        let p = measure(1.5e-4, 92);
        assert!(
            p.false_sessions_per_min > 10.0,
            "expected constant misfires, got {}/min",
            p.false_sessions_per_min
        );
        // The rootkit consequently spends its life hiding.
        assert!(
            p.attack_uptime < 0.7,
            "uptime {} should collapse under misfires",
            p.attack_uptime
        );
    }

    #[test]
    fn moderate_thresholds_still_evade_the_monolithic_scan() {
        // Even a sloppy 2x threshold evades a 130 ms monolithic scan: the
        // margin there is enormous (that is §IV-C's point).
        let p = measure(3.6e-3, 93);
        assert_eq!(p.caught_rounds, 0);
        assert!(p.false_sessions_per_min < 2.0);
    }
}
