//! Golden scenario snapshots: a non-Juno built-in scenario's detection
//! campaign and the built-in grid sweep's comparative report are pinned
//! byte for byte, so the scenario layer cannot silently drift.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p satin-bench --test scenario_golden
//! ```

use satin_bench::detection::{self, DetectionConfig};
use satin_bench::{CampaignRunner, ScenarioGrid};
use satin_sim::SimDuration;
use std::fmt::Write as _;
use std::path::PathBuf;

const SEED: u64 = 42;

/// One quick campaign (one sweep of the 19 areas) on the all-LITTLE
/// built-in: a platform the paper never ran, summarized as counts.
fn summarize_all_little() -> String {
    let sc = satin_scenario::builtin("all-little").expect("all-little is a built-in");
    let r = detection::run_scenario(
        &sc,
        DetectionConfig {
            rounds: 19,
            tgoal: SimDuration::from_millis(9_500),
            seed: SEED,
            trace: false,
            telemetry: false,
        },
    );
    let mut out = String::new();
    writeln!(out, "# scenario golden, all-little, seed {SEED}").unwrap();
    writeln!(out, "topology {}", sc.platform.topology_label()).unwrap();
    writeln!(out, "rounds {}", r.rounds).unwrap();
    writeln!(out, "area14_attacked_checks {}", r.area14_attacked_checks).unwrap();
    writeln!(out, "area14_detections {}", r.area14_detections).unwrap();
    writeln!(
        out,
        "area14_early_warning_checks {}",
        r.area14_early_warning_checks
    )
    .unwrap();
    writeln!(out, "prober_sessions {}", r.prober_sessions).unwrap();
    writeln!(out, "other_area_alarms {}", r.other_area_alarms).unwrap();
    out
}

/// The comparative report of the built-in grid, shrunk exactly like
/// `repro grid` quick mode: one sweep per seed, two seeds per scenario.
fn grid_report() -> String {
    let mut grid = ScenarioGrid::builtins(SEED);
    for sc in &mut grid.scenarios {
        sc.campaign.rounds = 19;
        sc.campaign.tgoal = SimDuration::from_millis(9_500);
        sc.campaign.seeds = 2;
    }
    grid.run(&CampaignRunner::serial()).to_string()
}

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, got: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir");
        std::fs::write(&path, got).expect("write snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(got, want, "{name} diverged from its snapshot");
}

#[test]
fn all_little_detection_matches_snapshot() {
    check("scenario_all_little_seed_42.snap", &summarize_all_little());
}

#[test]
fn builtin_grid_report_matches_snapshot() {
    check("scenario_grid_seed_42.snap", &grid_report());
}
