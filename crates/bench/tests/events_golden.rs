//! Golden event-stream snapshot: the canonical JSONL campaign stream for
//! the ISSUE's acceptance campaign — seeds {7, 42, 1009} under the
//! built-in `smoke` fault plan — is pinned byte for byte, and asserted
//! identical for a serial and a 4-worker runner, so the observability
//! layer can never introduce a `--jobs` dependence into the stream.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p satin-bench --test events_golden
//! ```

use satin_bench::detection::{self, DetectionConfig};
use satin_bench::CampaignRunner;
use satin_obs::CampaignObs;
use satin_scenario::{FaultPlan, Scenario};
use satin_sim::SimDuration;
use std::path::PathBuf;

const SEEDS: [u64; 3] = [7, 42, 1009];

/// One sweep of the 19 areas — long enough that the smoke plan's 3 s
/// publication drop and 6 s abort both land (same shape as fault_golden).
fn config() -> DetectionConfig {
    DetectionConfig {
        rounds: 19,
        tgoal: SimDuration::from_millis(9_500),
        seed: 0,
        trace: false,
        telemetry: false,
    }
}

/// Runs the observed acceptance campaign and returns the canonical stream
/// serialized as JSONL.
fn stream_jsonl(runner: &CampaignRunner) -> String {
    let mut sc = Scenario::paper();
    sc.faults = FaultPlan::smoke();
    let obs = CampaignObs::new("faults/smoke");
    let (_outcomes, stream) =
        detection::run_many_faulted_observed(&sc, config(), &SEEDS, runner, &obs);
    stream.to_jsonl()
}

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, got: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir");
        std::fs::write(&path, got).expect("write snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(got, want, "{name} diverged from its snapshot");
}

#[test]
fn event_stream_matches_snapshot_and_is_jobs_invariant() {
    let serial = stream_jsonl(&CampaignRunner::serial());
    let parallel = stream_jsonl(&CampaignRunner::new(4));
    assert_eq!(
        serial, parallel,
        "canonical event stream depends on worker count"
    );
    check("events_smoke.jsonl.snap", &serial);
}

#[test]
fn event_stream_is_valid_versioned_jsonl() {
    let jsonl = stream_jsonl(&CampaignRunner::serial());
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() >= 2 + SEEDS.len() * 2, "stream too short");
    for (i, line) in lines.iter().enumerate() {
        let doc = satin_obs::json::Json::parse(line)
            .unwrap_or_else(|e| panic!("line {i} is not valid JSON ({e}): {line}"));
        assert_eq!(
            doc.get("v").and_then(satin_obs::json::Json::as_u64),
            Some(u64::from(satin_obs::EVENT_SCHEMA_VERSION)),
            "line {i} schema version"
        );
        assert_eq!(
            doc.get("seq").and_then(satin_obs::json::Json::as_u64),
            Some(i as u64),
            "line {i} gapless seq"
        );
        assert!(
            doc.get("event").is_some(),
            "line {i} missing event kind: {line}"
        );
    }
    assert!(lines[0].contains("\"event\":\"campaign.started\""));
    assert!(lines
        .last()
        .expect("nonempty")
        .contains("\"event\":\"campaign.finished\""));
}
