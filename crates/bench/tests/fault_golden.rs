//! Golden fault-campaign snapshot: the ISSUE's acceptance campaign — seeds
//! {7, 42, 1009} under the built-in `smoke` plan (one dropped publication
//! for every seed, a worker abort that outlives its retries on seed 42) —
//! is pinned byte for byte, and the rendering is asserted identical for a
//! serial and a 4-worker runner, so fault injection can never introduce a
//! `--jobs` dependence or a panic.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p satin-bench --test fault_golden
//! ```

use satin_bench::detection::{self, DetectionConfig, DetectionResult};
use satin_bench::{CampaignRunner, SeedOutcome};
use satin_scenario::{FaultPlan, Scenario};
use satin_sim::SimDuration;
use std::fmt::Write as _;
use std::path::PathBuf;

const SEEDS: [u64; 3] = [7, 42, 1009];

/// One sweep of the 19 areas, like the other golden tests — long enough
/// that the smoke plan's 3 s publication drop and 6 s abort both land.
fn config() -> DetectionConfig {
    DetectionConfig {
        rounds: 19,
        tgoal: SimDuration::from_millis(9_500),
        seed: 0,
        trace: false,
        telemetry: false,
    }
}

/// Runs the acceptance campaign and renders every outcome — failed seeds
/// included — as a deterministic text block.
fn summarize(runner: &CampaignRunner) -> String {
    let mut sc = Scenario::paper();
    sc.faults = FaultPlan::smoke();
    let outcomes = detection::run_many_faulted(&sc, config(), &SEEDS, runner);
    render(&outcomes)
}

fn render(outcomes: &[SeedOutcome<DetectionResult>]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "# fault golden, paper scenario + smoke plan, seeds {SEEDS:?}"
    )
    .unwrap();
    for o in outcomes {
        match o.value() {
            Some(r) => writeln!(
                out,
                "seed {} ok attempts {} rounds {} detections {} faults {}",
                o.seed(),
                o.attempts(),
                r.rounds,
                r.area14_detections,
                r.metrics.faults_injected()
            )
            .unwrap(),
            None => writeln!(
                out,
                "seed {} FAILED attempts {} error {}",
                o.seed(),
                o.attempts(),
                o.error().expect("failed outcome has an error")
            )
            .unwrap(),
        }
    }
    out
}

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check(name: &str, got: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("snapshot dir")).expect("mkdir");
        std::fs::write(&path, got).expect("write snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(got, want, "{name} diverged from its snapshot");
}

#[test]
fn fault_campaign_matches_snapshot_and_is_jobs_invariant() {
    let serial = summarize(&CampaignRunner::serial());
    let parallel = summarize(&CampaignRunner::new(4));
    assert_eq!(serial, parallel, "fault campaign depends on worker count");
    check("fault_campaign_smoke.snap", &serial);
}

#[test]
fn abort_seed_salvages_as_failed_row() {
    let mut sc = Scenario::paper();
    sc.faults = FaultPlan::smoke();
    let outcomes = detection::run_many_faulted(&sc, config(), &SEEDS, &CampaignRunner::serial());
    assert_eq!(outcomes.len(), SEEDS.len());
    let failed: Vec<_> = outcomes.iter().filter(|o| o.is_failed()).collect();
    assert_eq!(failed.len(), 1, "exactly the abort seed fails");
    assert_eq!(failed[0].seed(), 42);
    // The smoke plan's abort outlives max_attempts, so both tries ran.
    assert_eq!(failed[0].attempts(), 2);
    assert!(
        failed[0].error().expect("error").contains("worker abort"),
        "error should name the injected fault: {:?}",
        failed[0].error()
    );
    // The surviving seeds still saw their dropped publication.
    for o in outcomes.iter().filter(|o| !o.is_failed()) {
        let r = o.value().expect("ok outcome");
        assert_eq!(r.metrics.fault_publications_dropped, 1, "seed {}", o.seed());
    }
}
