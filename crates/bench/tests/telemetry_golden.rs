//! Golden telemetry snapshots: the span taxonomy of a traced
//! SATIN-vs-TZ-Evader race is pinned per seed, and the merged
//! `--metrics-json` aggregate is byte-identical for any job count.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p satin-bench --test telemetry_golden
//! ```

use satin_bench::detection::{self, DetectionConfig};
use satin_bench::{run_traced_race, CampaignRunner, MetricsReport, TelemetryReport};
use satin_sim::SimDuration;
use std::fmt::Write as _;
use std::path::PathBuf;

const SEEDS: [u64; 3] = [7, 42, 1009];

/// The same race `repro --trace-out` runs in quick mode (8 simulated
/// seconds), summarized as counts only — durations are pinned by the
/// machine-level golden traces, so this snapshot stays readable.
fn summarize(seed: u64) -> String {
    let horizon = SimDuration::from_secs(8);
    let race = run_traced_race(seed, horizon);
    let tl = &race.timeline;
    let mut out = String::new();
    writeln!(out, "# telemetry golden, seed {seed}").unwrap();
    writeln!(out, "horizon_ns {}", horizon.as_nanos()).unwrap();
    writeln!(out, "spans {}", tl.len()).unwrap();
    writeln!(out, "instants {}", tl.instants().len()).unwrap();
    writeln!(out, "open {}", tl.open_count()).unwrap();
    writeln!(out, "dropped {}", tl.dropped()).unwrap();
    writeln!(out, "publications {}", race.metrics.publications).unwrap();
    writeln!(out, "alarms {}", race.metrics.alarms).unwrap();
    for (name, n) in tl.span_counts() {
        writeln!(out, "span.{name} {n}").unwrap();
    }
    writeln!(
        out,
        "hist.publication_delay.count {}",
        race.metrics.publication_delay_hist.count()
    )
    .unwrap();
    writeln!(
        out,
        "hist.hash_window.count {}",
        race.metrics.hash_window_hist.count()
    )
    .unwrap();
    writeln!(
        out,
        "hist.detection_latency.count {}",
        race.metrics.detection_latency_hist.count()
    )
    .unwrap();
    out
}

fn snapshot_path(seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("telemetry_seed_{seed}.snap"))
}

#[test]
fn telemetry_span_counts_match_snapshots() {
    let bless = std::env::var_os("GOLDEN_BLESS").is_some();
    for seed in SEEDS {
        let got = summarize(seed);
        let path = snapshot_path(seed);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing snapshot {} ({e}); run with GOLDEN_BLESS=1",
                path.display()
            )
        });
        assert_eq!(got, want, "seed {seed}: telemetry summary diverged");
    }
}

#[test]
fn chrome_trace_covers_every_session() {
    let race = run_traced_race(42, SimDuration::from_secs(8));
    let json = race.chrome_trace();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"));
    // One complete "X" event per session root — every introspection session
    // is on the exported timeline.
    let sessions = json.matches("\"name\":\"secure.session\"").count() as u64;
    assert_eq!(sessions, race.metrics.publications);
    assert_eq!(race.timeline.open_count(), 0);
}

#[test]
fn metrics_json_is_identical_for_any_job_count() {
    let base = DetectionConfig {
        rounds: 19,
        tgoal: SimDuration::from_millis(9_500),
        seed: 0,
        trace: false,
        telemetry: true,
    };
    let seeds = [42u64, 43];
    let report_for = |runner: &CampaignRunner| {
        let results = detection::run_many(base, &seeds, runner);
        let reports: Vec<MetricsReport> = results.iter().map(|r| r.metrics.clone()).collect();
        TelemetryReport::of(&reports).to_json()
    };
    let serial = report_for(&CampaignRunner::serial());
    let jobs4 = report_for(&CampaignRunner::new(4));
    assert_eq!(serial, jobs4, "--jobs 1 vs --jobs 4 diverged");
}
