//! Linux's nice-to-weight table for CFS vruntime accounting.
//!
//! Taken from `kernel/sched/core.c` (`sched_prio_to_weight`): each nice level
//! is ~1.25× the CPU share of the next. vruntime advances as
//! `delta_exec * NICE_0_WEIGHT / weight`, so low-nice (heavy) tasks accrue
//! vruntime slowly and get picked more often.

/// Weight of a nice-0 task.
pub const NICE_0_WEIGHT: u64 = 1024;

/// `sched_prio_to_weight` from the Linux kernel, indexed by `nice + 20`.
pub const SCHED_PRIO_TO_WEIGHT: [u64; 40] = [
    88761, 71755, 56483, 46273, 36291, // -20 .. -16
    29154, 23254, 18705, 14949, 11916, // -15 .. -11
    9548, 7620, 6100, 4904, 3906, // -10 .. -6
    3121, 2501, 1991, 1586, 1277, // -5 .. -1
    1024, 820, 655, 526, 423, // 0 .. 4
    335, 272, 215, 172, 137, // 5 .. 9
    110, 87, 70, 56, 45, // 10 .. 14
    36, 29, 23, 18, 15, // 15 .. 19
];

/// The CFS weight of a nice value.
///
/// # Panics
///
/// Panics if `nice` is outside `[-20, 19]`.
///
/// # Example
///
/// ```
/// assert_eq!(satin_kernel::weight::weight_of(0), 1024);
/// assert_eq!(satin_kernel::weight::weight_of(-20), 88761);
/// assert_eq!(satin_kernel::weight::weight_of(19), 15);
/// ```
pub fn weight_of(nice: i8) -> u64 {
    assert!((-20..=19).contains(&nice), "nice {nice} out of range");
    SCHED_PRIO_TO_WEIGHT[(nice + 20) as usize]
}

/// Scales an execution time (ns) into weighted vruntime delta.
///
/// # Example
///
/// ```
/// // A nice-0 task accrues vruntime at wall rate:
/// assert_eq!(satin_kernel::weight::vruntime_delta(1000, 0), 1000);
/// // A heavy task accrues more slowly:
/// assert!(satin_kernel::weight::vruntime_delta(1000, -10) < 1000);
/// // A light task accrues faster:
/// assert!(satin_kernel::weight::vruntime_delta(1000, 10) > 1000);
/// ```
pub fn vruntime_delta(exec_ns: u64, nice: i8) -> u64 {
    let w = weight_of(nice);
    // delta = exec * NICE_0 / weight, in u128 to avoid overflow.
    ((exec_ns as u128 * NICE_0_WEIGHT as u128) / w as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_monotone_decreasing() {
        for w in SCHED_PRIO_TO_WEIGHT.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn ratio_is_about_1_25() {
        for w in SCHED_PRIO_TO_WEIGHT.windows(2) {
            let ratio = w[0] as f64 / w[1] as f64;
            assert!((1.1..1.4).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn nice_zero_is_identity() {
        assert_eq!(vruntime_delta(123_456, 0), 123_456);
    }

    #[test]
    fn extremes() {
        assert_eq!(weight_of(-20), 88761);
        assert_eq!(weight_of(19), 15);
        // nice 19 task accrues ~68x faster than nice 0.
        let d = vruntime_delta(1000, 19);
        assert!((60_000..80_000).contains(&d), "{d}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_nice_rejected() {
        weight_of(20);
    }

    #[test]
    fn no_overflow_on_large_exec() {
        // A year of ns at nice -20 must not overflow.
        let year_ns: u64 = 365 * 24 * 3600 * 1_000_000_000;
        let _ = vruntime_delta(year_ns, -20);
    }
}
