//! Tasks: the unit of normal-world scheduling.

use satin_hw::CoreId;
use satin_sim::SimDuration;
use std::fmt;

/// Identifier of a kernel task (thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(u64);

impl TaskId {
    /// Wraps a raw id.
    pub const fn new(id: u64) -> Self {
        TaskId(id)
    }

    /// The raw id.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Scheduling class, mirroring Linux's class hierarchy: the RT class always
/// preempts the fair (CFS) class; within RT FIFO, higher priority wins and
/// equal priorities run to completion in FIFO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedClass {
    /// Completely Fair Scheduler with a nice value in `[-20, 19]`.
    Cfs {
        /// Nice value: lower is more CPU share.
        nice: i8,
    },
    /// `SCHED_FIFO` real-time class with priority `1..=99` (higher wins).
    /// KProber-II uses `sched_get_priority_max(SCHED_FIFO)` = 99 (§IV-A1).
    RtFifo {
        /// Real-time priority, 1..=99.
        priority: u8,
    },
}

impl SchedClass {
    /// The default CFS class (nice 0).
    pub const fn cfs() -> Self {
        SchedClass::Cfs { nice: 0 }
    }

    /// The maximum-priority `SCHED_FIFO` class KProber-II requests.
    pub const fn rt_max() -> Self {
        SchedClass::RtFifo { priority: 99 }
    }

    /// `true` for the real-time class.
    pub fn is_rt(self) -> bool {
        matches!(self, SchedClass::RtFifo { .. })
    }

    /// Validates class parameters.
    ///
    /// # Panics
    ///
    /// Panics if nice is outside `[-20, 19]` or RT priority outside `[1, 99]`.
    pub fn validate(self) {
        match self {
            SchedClass::Cfs { nice } => {
                assert!((-20..=19).contains(&nice), "nice {nice} out of range")
            }
            SchedClass::RtFifo { priority } => assert!(
                (1..=99).contains(&priority),
                "RT priority {priority} out of range"
            ),
        }
    }
}

/// CPU affinity mask.
///
/// The paper's probers pin one thread per core precisely so the OS cannot
/// migrate a paused thread off a core that entered the secure world
/// (§III-B1) — migration would destroy the side channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Affinity {
    mask: u64,
}

impl Affinity {
    /// Allows all of the first `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is 0 or greater than 64.
    pub fn any(num_cores: usize) -> Self {
        assert!((1..=64).contains(&num_cores), "bad core count {num_cores}");
        Affinity {
            mask: if num_cores == 64 {
                u64::MAX
            } else {
                (1u64 << num_cores) - 1
            },
        }
    }

    /// Pins to a single core.
    ///
    /// # Panics
    ///
    /// Panics if the core index is ≥ 64.
    pub fn pinned(core: CoreId) -> Self {
        assert!(core.index() < 64, "core index too large");
        Affinity {
            mask: 1u64 << core.index(),
        }
    }

    /// `true` if `core` is allowed.
    pub fn allows(self, core: CoreId) -> bool {
        core.index() < 64 && self.mask & (1 << core.index()) != 0
    }

    /// Iterates allowed core indices (ascending).
    pub fn cores(self) -> impl Iterator<Item = CoreId> {
        (0..64)
            .filter(move |i| self.mask & (1 << i) != 0)
            .map(CoreId::new)
    }

    /// Number of allowed cores.
    pub fn count(self) -> usize {
        self.mask.count_ones() as usize
    }
}

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Waiting on a runqueue.
    Runnable,
    /// Currently on a CPU.
    Running,
    /// Sleeping until a timer wake.
    Sleeping,
    /// Blocked on an event (no timer).
    Blocked,
    /// Finished.
    Exited,
}

/// A kernel task: bookkeeping only — the *behaviour* of a task is a
/// `ThreadBody` plugged in at the `satin-system` layer.
#[derive(Debug, Clone)]
pub struct Task {
    id: TaskId,
    name: String,
    class: SchedClass,
    affinity: Affinity,
    state: TaskState,
    /// CFS virtual runtime, weighted nanoseconds.
    vruntime: u64,
    /// Core the task last ran on (dirty-cache heuristic for wake placement).
    last_core: Option<CoreId>,
    /// Total CPU time consumed.
    cpu_time: SimDuration,
    /// Number of times the task has been woken.
    wakeups: u64,
}

impl Task {
    /// Creates a task in the [`TaskState::Blocked`] state (it becomes
    /// runnable when the scheduler wakes it).
    ///
    /// # Panics
    ///
    /// Panics if the scheduling class parameters are invalid.
    pub fn new(id: TaskId, name: impl Into<String>, class: SchedClass, affinity: Affinity) -> Self {
        class.validate();
        Task {
            id,
            name: name.into(),
            class,
            affinity,
            state: TaskState::Blocked,
            vruntime: 0,
            last_core: None,
            cpu_time: SimDuration::ZERO,
            wakeups: 0,
        }
    }

    /// Task id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Task name (for traces).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Scheduling class.
    pub fn class(&self) -> SchedClass {
        self.class
    }

    /// Affinity mask.
    pub fn affinity(&self) -> Affinity {
        self.affinity
    }

    /// Current state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    /// CFS virtual runtime.
    pub fn vruntime(&self) -> u64 {
        self.vruntime
    }

    /// Core the task last ran on.
    pub fn last_core(&self) -> Option<CoreId> {
        self.last_core
    }

    /// Total CPU time consumed.
    pub fn cpu_time(&self) -> SimDuration {
        self.cpu_time
    }

    /// Number of wakeups.
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    pub(crate) fn set_state(&mut self, state: TaskState) {
        self.state = state;
    }

    pub(crate) fn set_last_core(&mut self, core: CoreId) {
        self.last_core = Some(core);
    }

    pub(crate) fn add_vruntime(&mut self, delta: u64) {
        self.vruntime = self.vruntime.saturating_add(delta);
    }

    pub(crate) fn set_vruntime(&mut self, v: u64) {
        self.vruntime = v;
    }

    pub(crate) fn add_cpu_time(&mut self, d: SimDuration) {
        self.cpu_time += d;
    }

    pub(crate) fn count_wakeup(&mut self) {
        self.wakeups += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_any_and_pinned() {
        let a = Affinity::any(6);
        assert_eq!(a.count(), 6);
        assert!(a.allows(CoreId::new(0)));
        assert!(a.allows(CoreId::new(5)));
        assert!(!a.allows(CoreId::new(6)));
        let p = Affinity::pinned(CoreId::new(3));
        assert_eq!(p.count(), 1);
        assert!(p.allows(CoreId::new(3)));
        assert!(!p.allows(CoreId::new(2)));
        assert_eq!(p.cores().collect::<Vec<_>>(), vec![CoreId::new(3)]);
    }

    #[test]
    fn affinity_64_cores() {
        let a = Affinity::any(64);
        assert_eq!(a.count(), 64);
    }

    #[test]
    #[should_panic(expected = "bad core count")]
    fn affinity_zero_rejected() {
        Affinity::any(0);
    }

    #[test]
    fn class_validation() {
        SchedClass::Cfs { nice: -20 }.validate();
        SchedClass::RtFifo { priority: 99 }.validate();
        assert!(SchedClass::rt_max().is_rt());
        assert!(!SchedClass::cfs().is_rt());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rt_priority() {
        SchedClass::RtFifo { priority: 0 }.validate();
    }

    #[test]
    fn task_bookkeeping() {
        let mut t = Task::new(
            TaskId::new(1),
            "prober",
            SchedClass::rt_max(),
            Affinity::pinned(CoreId::new(2)),
        );
        assert_eq!(t.state(), TaskState::Blocked);
        assert_eq!(t.name(), "prober");
        t.set_state(TaskState::Runnable);
        t.count_wakeup();
        t.add_cpu_time(SimDuration::from_micros(5));
        t.add_vruntime(100);
        t.set_last_core(CoreId::new(2));
        assert_eq!(t.state(), TaskState::Runnable);
        assert_eq!(t.wakeups(), 1);
        assert_eq!(t.cpu_time(), SimDuration::from_micros(5));
        assert_eq!(t.vruntime(), 100);
        assert_eq!(t.last_core(), Some(CoreId::new(2)));
        assert_eq!(t.id().to_string(), "task1");
    }
}
