//! The system call table: the sample rootkit's hijack target.
//!
//! Paper §IV-A2: "we implement a kernel-level attack that can hijack the
//! GETTID system call. Successful system hijacking requires modifying an
//! entry of the system call table, and this attack modifies one 8-bytes
//! address of the system call table. Since the system call table is defined
//! as text kernel data, TrustZone-based introspection can detect the GETTID
//! system call is hijacked if the introspection scans and detects any of
//! these 8 bytes is modified."

use satin_mem::layout::{GETTID_NR, SYSCALL_ENTRY_SIZE};
use satin_mem::{KernelLayout, MemError, MemRange, PhysAddr, PhysMemory};

/// Well-known AArch64 syscall numbers used by the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Syscall {
    /// `gettid` (178) — the paper's sample hijack target.
    Gettid,
    /// `getpid` (172) — used as a control in tests.
    Getpid,
    /// `read` (63).
    Read,
    /// `write` (64).
    Write,
}

impl Syscall {
    /// The AArch64 syscall number.
    pub fn nr(self) -> u64 {
        match self {
            Syscall::Gettid => GETTID_NR,
            Syscall::Getpid => 172,
            Syscall::Read => 63,
            Syscall::Write => 64,
        }
    }
}

/// A view of the in-memory syscall table.
///
/// # Example
///
/// ```
/// use satin_kernel::syscall::{Syscall, SyscallTable};
/// use satin_mem::{KernelLayout, PhysMemory};
///
/// let layout = KernelLayout::paper();
/// let mem = PhysMemory::with_image(&layout, 42);
/// let table = SyscallTable::new(&layout);
/// let handler = table.handler(&mem, Syscall::Gettid).unwrap();
/// assert!(handler != 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallTable {
    base: PhysAddr,
    entries: u64,
}

impl SyscallTable {
    /// Locates the syscall table in `layout`.
    ///
    /// # Panics
    ///
    /// Panics if the layout has no syscall-table section.
    pub fn new(layout: &KernelLayout) -> Self {
        let s = layout.syscall_table();
        SyscallTable {
            base: s.range().start(),
            entries: s.range().len() / SYSCALL_ENTRY_SIZE,
        }
    }

    /// Base address of the table.
    pub fn base(&self) -> PhysAddr {
        self.base
    }

    /// Number of entries.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// The byte range of the whole table.
    pub fn range(&self) -> MemRange {
        MemRange::new(self.base, self.entries * SYSCALL_ENTRY_SIZE)
    }

    /// Address of entry `nr`.
    ///
    /// # Panics
    ///
    /// Panics if `nr` is beyond the table.
    pub fn entry_addr(&self, nr: u64) -> PhysAddr {
        assert!(nr < self.entries, "syscall {nr} beyond table");
        self.base + nr * SYSCALL_ENTRY_SIZE
    }

    /// Reads the handler pointer for `syscall` from memory — this is what
    /// the kernel "executes" on a syscall, so a hijacked entry means a
    /// hijacked syscall.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] if the table lies outside memory.
    pub fn handler(&self, mem: &PhysMemory, syscall: Syscall) -> Result<u64, MemError> {
        mem.read_u64(self.entry_addr(syscall.nr()))
    }

    /// Reads the raw 8 entry bytes for `nr`.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] if the entry lies outside memory.
    pub fn entry_bytes(&self, mem: &PhysMemory, nr: u64) -> Result<[u8; 8], MemError> {
        let bytes = mem.read(MemRange::new(self.entry_addr(nr), SYSCALL_ENTRY_SIZE))?;
        Ok(bytes.try_into().expect("8 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KernelLayout, PhysMemory, SyscallTable) {
        let layout = KernelLayout::paper();
        let mem = PhysMemory::with_image(&layout, 3);
        let table = SyscallTable::new(&layout);
        (layout, mem, table)
    }

    #[test]
    fn table_geometry() {
        let (layout, _, table) = setup();
        assert_eq!(table.entries(), 450);
        assert_eq!(table.range().len(), 3_600);
        assert_eq!(
            table.entry_addr(Syscall::Gettid.nr()),
            layout.syscall_entry_addr(GETTID_NR)
        );
    }

    #[test]
    fn handler_matches_entry_bytes() {
        let (_, mem, table) = setup();
        let h = table.handler(&mem, Syscall::Gettid).unwrap();
        let b = table.entry_bytes(&mem, Syscall::Gettid.nr()).unwrap();
        assert_eq!(h, u64::from_le_bytes(b));
    }

    #[test]
    fn hijack_changes_handler() {
        let (layout, mut mem, table) = setup();
        let before = table.handler(&mem, Syscall::Gettid).unwrap();
        let getpid_before = table.handler(&mem, Syscall::Getpid).unwrap();
        let evil = satin_mem::image::hijacked_entry_bytes(&layout, 7);
        mem.write_unchecked(table.entry_addr(GETTID_NR), &evil)
            .unwrap();
        let after = table.handler(&mem, Syscall::Gettid).unwrap();
        assert_ne!(before, after);
        assert_eq!(after, u64::from_le_bytes(evil));
        // Other syscalls untouched.
        let getpid = table.handler(&mem, Syscall::Getpid).unwrap();
        assert_eq!(getpid, getpid_before);
    }

    #[test]
    #[should_panic(expected = "beyond table")]
    fn out_of_table_entry() {
        let (_, _, table) = setup();
        table.entry_addr(450);
    }

    #[test]
    fn syscall_numbers() {
        assert_eq!(Syscall::Gettid.nr(), 178);
        assert_eq!(Syscall::Getpid.nr(), 172);
        assert_eq!(Syscall::Read.nr(), 63);
        assert_eq!(Syscall::Write.nr(), 64);
    }
}
