//! Per-core runqueues: an RT FIFO class over a CFS class.

use crate::task::TaskId;
use std::collections::{BTreeMap, BTreeSet};

/// One core's runqueue pair.
///
/// The RT queue is keyed `(99 - priority, arrival)` so iteration order is
/// highest-priority-first, FIFO within a priority — `SCHED_FIFO` semantics.
/// The CFS queue is keyed `(vruntime, id)` so the leftmost (smallest
/// vruntime) task is picked, like the kernel's red-black tree.
///
/// # Example
///
/// ```
/// use satin_kernel::runqueue::CoreRunQueue;
/// use satin_kernel::TaskId;
///
/// let mut rq = CoreRunQueue::new();
/// rq.enqueue_cfs(100, TaskId::new(1));
/// rq.enqueue_rt(50, TaskId::new(2));
/// // RT always beats CFS:
/// assert_eq!(rq.pick_next(), Some(TaskId::new(2)));
/// assert_eq!(rq.pick_next(), Some(TaskId::new(1)));
/// assert_eq!(rq.pick_next(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoreRunQueue {
    rt: BTreeMap<(u8, u64), TaskId>,
    cfs: BTreeSet<(u64, TaskId)>,
    arrival: u64,
    min_vruntime: u64,
}

impl CoreRunQueue {
    /// An empty runqueue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an RT task at `priority` (1..=99, higher wins).
    ///
    /// # Panics
    ///
    /// Panics if `priority` is outside `1..=99`.
    pub fn enqueue_rt(&mut self, priority: u8, task: TaskId) {
        assert!((1..=99).contains(&priority), "bad RT priority {priority}");
        let key = (99 - priority, self.arrival);
        self.arrival += 1;
        self.rt.insert(key, task);
    }

    /// Enqueues a CFS task at `vruntime`.
    pub fn enqueue_cfs(&mut self, vruntime: u64, task: TaskId) {
        self.cfs.insert((vruntime, task));
    }

    /// Picks (and removes) the next task: the highest-priority RT task if
    /// any, else the smallest-vruntime CFS task.
    pub fn pick_next(&mut self) -> Option<TaskId> {
        if let Some((&key, &tid)) = self.rt.iter().next() {
            self.rt.remove(&key);
            return Some(tid);
        }
        if let Some(&(v, tid)) = self.cfs.iter().next() {
            self.cfs.remove(&(v, tid));
            self.min_vruntime = self.min_vruntime.max(v);
            return Some(tid);
        }
        None
    }

    /// The task `pick_next` would return, without removing it.
    pub fn peek_next(&self) -> Option<TaskId> {
        self.rt
            .values()
            .next()
            .or_else(|| self.cfs.iter().next().map(|(_, t)| t))
            .copied()
    }

    /// The priority of the best queued RT task, if any.
    pub fn best_rt_priority(&self) -> Option<u8> {
        self.rt.keys().next().map(|(inv, _)| 99 - inv)
    }

    /// Removes a specific task from whichever queue holds it.
    /// Returns `true` if it was queued.
    pub fn remove(&mut self, task: TaskId) -> bool {
        if let Some(key) = self.rt.iter().find(|(_, t)| **t == task).map(|(k, _)| *k) {
            self.rt.remove(&key);
            return true;
        }
        if let Some(key) = self.cfs.iter().find(|(_, t)| *t == task).copied() {
            self.cfs.remove(&key);
            return true;
        }
        false
    }

    /// Number of queued (runnable, not running) tasks.
    pub fn len(&self) -> usize {
        self.rt.len() + self.cfs.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.rt.is_empty() && self.cfs.is_empty()
    }

    /// Number of queued RT tasks.
    pub fn rt_len(&self) -> usize {
        self.rt.len()
    }

    /// Number of queued CFS tasks.
    pub fn cfs_len(&self) -> usize {
        self.cfs.len()
    }

    /// The queue's monotone minimum vruntime — new arrivals are floored here
    /// so long sleepers cannot starve everyone on wake.
    pub fn min_vruntime(&self) -> u64 {
        self.min_vruntime
    }

    /// Raises the queue's minimum vruntime (called as tasks execute).
    pub fn advance_min_vruntime(&mut self, v: u64) {
        self.min_vruntime = self.min_vruntime.max(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rt_priority_order() {
        let mut rq = CoreRunQueue::new();
        rq.enqueue_rt(10, TaskId::new(1));
        rq.enqueue_rt(99, TaskId::new(2));
        rq.enqueue_rt(50, TaskId::new(3));
        assert_eq!(rq.best_rt_priority(), Some(99));
        assert_eq!(rq.pick_next(), Some(TaskId::new(2)));
        assert_eq!(rq.pick_next(), Some(TaskId::new(3)));
        assert_eq!(rq.pick_next(), Some(TaskId::new(1)));
    }

    #[test]
    fn rt_fifo_within_priority() {
        let mut rq = CoreRunQueue::new();
        for i in 0..5 {
            rq.enqueue_rt(40, TaskId::new(i));
        }
        for i in 0..5 {
            assert_eq!(rq.pick_next(), Some(TaskId::new(i)));
        }
    }

    #[test]
    fn cfs_vruntime_order() {
        let mut rq = CoreRunQueue::new();
        rq.enqueue_cfs(300, TaskId::new(1));
        rq.enqueue_cfs(100, TaskId::new(2));
        rq.enqueue_cfs(200, TaskId::new(3));
        assert_eq!(rq.pick_next(), Some(TaskId::new(2)));
        assert_eq!(rq.pick_next(), Some(TaskId::new(3)));
        assert_eq!(rq.pick_next(), Some(TaskId::new(1)));
    }

    #[test]
    fn min_vruntime_advances_with_picks() {
        let mut rq = CoreRunQueue::new();
        rq.enqueue_cfs(500, TaskId::new(1));
        assert_eq!(rq.min_vruntime(), 0);
        rq.pick_next();
        assert_eq!(rq.min_vruntime(), 500);
        rq.advance_min_vruntime(300); // cannot regress
        assert_eq!(rq.min_vruntime(), 500);
    }

    #[test]
    fn remove_from_either_queue() {
        let mut rq = CoreRunQueue::new();
        rq.enqueue_rt(10, TaskId::new(1));
        rq.enqueue_cfs(5, TaskId::new(2));
        assert!(rq.remove(TaskId::new(2)));
        assert!(rq.remove(TaskId::new(1)));
        assert!(!rq.remove(TaskId::new(3)));
        assert!(rq.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut rq = CoreRunQueue::new();
        rq.enqueue_cfs(1, TaskId::new(7));
        assert_eq!(rq.peek_next(), Some(TaskId::new(7)));
        assert_eq!(rq.len(), 1);
    }

    proptest! {
        /// Invariant 2 (DESIGN.md): an RT task is never picked after a CFS
        /// task that was enqueued at the same time.
        #[test]
        fn prop_rt_always_beats_cfs(
            rt in proptest::collection::vec(1u8..=99, 0..20),
            cfs in proptest::collection::vec(0u64..1000, 0..20),
        ) {
            let mut rq = CoreRunQueue::new();
            let rt_count = rt.len();
            for (i, p) in rt.iter().enumerate() {
                rq.enqueue_rt(*p, TaskId::new(i as u64));
            }
            for (i, v) in cfs.iter().enumerate() {
                rq.enqueue_cfs(*v, TaskId::new(1000 + i as u64));
            }
            let mut picked = Vec::new();
            while let Some(t) = rq.pick_next() {
                picked.push(t);
            }
            prop_assert_eq!(picked.len(), rt.len() + cfs.len());
            // All RT ids (< 1000) come before all CFS ids (>= 1000).
            let first_cfs = picked.iter().position(|t| t.value() >= 1000);
            if let Some(pos) = first_cfs {
                prop_assert!(picked[pos..].iter().all(|t| t.value() >= 1000));
                prop_assert_eq!(pos, rt_count);
            }
        }

        /// RT picks are sorted by descending priority.
        #[test]
        fn prop_rt_sorted_by_priority(prios in proptest::collection::vec(1u8..=99, 1..30)) {
            let mut rq = CoreRunQueue::new();
            for (i, p) in prios.iter().enumerate() {
                rq.enqueue_rt(*p, TaskId::new(i as u64));
            }
            let mut last = 100u8;
            while rq.rt_len() > 0 {
                let best = rq.best_rt_priority().unwrap();
                prop_assert!(best <= last);
                last = best;
                rq.pick_next();
            }
        }
    }
}
