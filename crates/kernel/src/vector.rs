//! The AArch64 exception vector table: KProber-I's hijack point.
//!
//! Paper §IV-A1: "In ARMv8-A architecture, the address of the original timer
//! interrupt address is saved in the IRQ Exception Vector, which can be
//! located in the AArch64 Exception Vector Table. The table's starting
//! address is saved in the Vector Based Address Registers `VBAR_ELi`. After
//! locating the timer interrupt, we modify its corresponding table entry to
//! redirect it to our hijacking code." The vector table lives in the
//! monitored kernel image, so the redirect leaves 128 modified bytes for the
//! introspection to find — the extra attack surface the paper notes makes
//! KProber-I easier to detect than KProber-II (§III-C1).

use satin_mem::{KernelLayout, MemError, MemRange, PhysAddr, PhysMemory};

/// Size of one vector table entry (0x80 bytes of instructions).
pub const VECTOR_ENTRY_SIZE: u64 = 0x80;

/// Number of entries in the AArch64 table (4 exception types × 4 sources).
pub const VECTOR_ENTRIES: u64 = 16;

/// The exception vector slots relevant to the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum VectorSlot {
    /// IRQ from current EL with SPx — the timer-interrupt path KProber-I
    /// redirects (index 6 in the AArch64 layout).
    IrqCurrentElSpx,
    /// Synchronous exception from current EL with SPx (index 4).
    SyncCurrentElSpx,
    /// IRQ from lower EL, AArch64 (index 10).
    IrqLowerEl,
}

impl VectorSlot {
    /// The entry index in the table.
    pub fn index(self) -> u64 {
        match self {
            VectorSlot::SyncCurrentElSpx => 4,
            VectorSlot::IrqCurrentElSpx => 6,
            VectorSlot::IrqLowerEl => 10,
        }
    }
}

/// A view of the in-memory exception vector table (the address `VBAR_EL1`
/// points to).
///
/// # Example
///
/// ```
/// use satin_kernel::vector::{VectorSlot, VectorTable};
/// use satin_mem::{KernelLayout, PhysMemory};
///
/// let layout = KernelLayout::paper();
/// let mem = PhysMemory::with_image(&layout, 42);
/// let vbar = VectorTable::new(&layout).unwrap();
/// let entry = vbar.entry_range(VectorSlot::IrqCurrentElSpx);
/// assert_eq!(entry.len(), 0x80);
/// let _code = mem.read(entry).unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorTable {
    vbar: PhysAddr,
}

impl VectorTable {
    /// Locates the vector table in `layout`, or `None` if the layout has no
    /// vector section.
    pub fn new(layout: &KernelLayout) -> Option<Self> {
        layout.vector_table().map(|s| VectorTable {
            vbar: s.range().start(),
        })
    }

    /// The `VBAR_EL1` value.
    pub fn vbar(&self) -> PhysAddr {
        self.vbar
    }

    /// The byte range of one vector entry.
    pub fn entry_range(&self, slot: VectorSlot) -> MemRange {
        MemRange::new(
            self.vbar + slot.index() * VECTOR_ENTRY_SIZE,
            VECTOR_ENTRY_SIZE,
        )
    }

    /// The whole table's range.
    pub fn range(&self) -> MemRange {
        MemRange::new(self.vbar, VECTOR_ENTRIES * VECTOR_ENTRY_SIZE)
    }

    /// Overwrites a vector entry with redirect code — KProber-I's hijack.
    /// Returns the replaced bytes so the attacker can restore them.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] (including [`MemError::WriteProtected`] if
    /// the AP bits still protect the page — the attacker must run the
    /// write-what-where exploit first, §VII-A).
    pub fn hijack(
        &self,
        mem: &mut PhysMemory,
        slot: VectorSlot,
        redirect_code: &[u8],
    ) -> Result<Vec<u8>, MemError> {
        assert!(
            redirect_code.len() as u64 <= VECTOR_ENTRY_SIZE,
            "redirect code larger than a vector entry"
        );
        let range = self.entry_range(slot);
        let rec = mem.write(range.start(), redirect_code)?;
        Ok(rec.old)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KernelLayout, PhysMemory, VectorTable) {
        let layout = KernelLayout::paper();
        let mem = PhysMemory::with_image(&layout, 9);
        let vt = VectorTable::new(&layout).unwrap();
        (layout, mem, vt)
    }

    #[test]
    fn geometry() {
        let (layout, _, vt) = setup();
        assert_eq!(vt.range().len(), 2048);
        assert_eq!(
            vt.vbar(),
            layout.section("vectors").unwrap().range().start()
        );
        let irq = vt.entry_range(VectorSlot::IrqCurrentElSpx);
        assert_eq!(irq.start(), vt.vbar() + 6 * 0x80);
    }

    #[test]
    fn hijack_and_restore() {
        let (_, mut mem, vt) = setup();
        let redirect = vec![0x14u8; 16]; // a branch-looking stub
        let old = vt
            .hijack(&mut mem, VectorSlot::IrqCurrentElSpx, &redirect)
            .unwrap();
        assert_eq!(old.len(), 16);
        let now = mem
            .read(MemRange::new(
                vt.entry_range(VectorSlot::IrqCurrentElSpx).start(),
                16,
            ))
            .unwrap();
        assert_eq!(now, &redirect[..]);
        // Restore.
        mem.write_unchecked(vt.entry_range(VectorSlot::IrqCurrentElSpx).start(), &old)
            .unwrap();
    }

    #[test]
    fn hijack_respects_write_protection() {
        let (_, mut mem, vt) = setup();
        mem.perms_mut().protect(vt.range());
        let err = vt
            .hijack(&mut mem, VectorSlot::IrqCurrentElSpx, &[0u8; 8])
            .unwrap_err();
        assert!(matches!(err, MemError::WriteProtected { .. }));
        // After the write-what-where exploit the hijack goes through.
        mem.perms_mut()
            .exploit_write_what_where(vt.entry_range(VectorSlot::IrqCurrentElSpx).start());
        assert!(vt
            .hijack(&mut mem, VectorSlot::IrqCurrentElSpx, &[0u8; 8])
            .is_ok());
    }

    #[test]
    fn missing_vector_table() {
        let layout = KernelLayout::from_segments(
            PhysAddr::new(0),
            &[vec![("only", satin_mem::SectionKind::Text, 4096)]],
        );
        assert!(VectorTable::new(&layout).is_none());
    }

    #[test]
    #[should_panic(expected = "larger than a vector entry")]
    fn oversized_redirect_rejected() {
        let (_, mut mem, vt) = setup();
        let _ = vt.hijack(&mut mem, VectorSlot::IrqLowerEl, &[0u8; 0x81]);
    }
}
