//! The scheduler tick with `CONFIG_NO_HZ_IDLE` semantics.
//!
//! Paper §III-C1: "Linux kernel is typically configured as the
//! `CONFIG_NO_HZ_IDLE` mode, which means when the core is not in the IDLE
//! state, the per-core timer raises the timer interrupt for scheduling-clock
//! ticks periodically with the frequency of HZ. … To avoid any core entering
//! the idle mode, KProber-I keeps running a user-level multi-threads program
//! on each core." The tick model here captures exactly that dependence:
//! a busy core ticks at HZ; an idle core's tick is suppressed.

use crate::config::KernelConfig;
use satin_sim::{SimDuration, SimTime};

/// Per-core tick state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickState {
    period: SimDuration,
    nohz_idle: bool,
    /// Total ticks delivered.
    delivered: u64,
    /// Ticks suppressed because the core was idle.
    suppressed: u64,
}

impl TickState {
    /// Tick state for a kernel configuration.
    pub fn new(config: &KernelConfig) -> Self {
        TickState {
            period: config.tick_period(),
            nohz_idle: config.nohz_idle,
            delivered: 0,
            suppressed: 0,
        }
    }

    /// The tick period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The next tick boundary strictly after `now` (ticks are aligned to
    /// multiples of the period, like a periodic hardware timer).
    pub fn next_boundary(&self, now: SimTime) -> SimTime {
        let p = self.period.as_nanos();
        let n = now.as_nanos() / p + 1;
        SimTime::from_nanos(n * p)
    }

    /// Processes a tick boundary: returns `true` if the tick is delivered
    /// (the core is busy, or NO_HZ_IDLE is off), `false` if suppressed.
    pub fn on_boundary(&mut self, core_idle: bool) -> bool {
        if core_idle && self.nohz_idle {
            self.suppressed += 1;
            false
        } else {
            self.delivered += 1;
            true
        }
    }

    /// Ticks delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Ticks suppressed so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> TickState {
        TickState::new(&KernelConfig::lsk_4_4())
    }

    #[test]
    fn boundary_alignment() {
        let t = state(); // HZ=250 → 4ms period
        assert_eq!(t.next_boundary(SimTime::ZERO), SimTime::from_millis(4));
        assert_eq!(
            t.next_boundary(SimTime::from_millis(4)),
            SimTime::from_millis(8)
        );
        assert_eq!(
            t.next_boundary(SimTime::from_nanos(3_999_999)),
            SimTime::from_millis(4)
        );
    }

    #[test]
    fn idle_suppression() {
        let mut t = state();
        assert!(t.on_boundary(false));
        assert!(!t.on_boundary(true));
        assert_eq!(t.delivered(), 1);
        assert_eq!(t.suppressed(), 1);
    }

    #[test]
    fn periodic_mode_always_ticks() {
        let mut cfg = KernelConfig::lsk_4_4();
        cfg.nohz_idle = false;
        let mut t = TickState::new(&cfg);
        assert!(t.on_boundary(true));
        assert_eq!(t.suppressed(), 0);
    }

    #[test]
    fn hz_1000_period() {
        let mut cfg = KernelConfig::lsk_4_4();
        cfg.hz = 1000;
        let t = TickState::new(&cfg);
        assert_eq!(t.period(), SimDuration::from_millis(1));
    }
}
