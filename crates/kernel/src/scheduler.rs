//! The cross-core scheduler: task table, wake placement, preemption policy.

use crate::config::KernelConfig;
use crate::runqueue::CoreRunQueue;
use crate::task::{Affinity, SchedClass, Task, TaskId, TaskState};
use crate::weight;
use satin_hw::CoreId;
use satin_sim::SimDuration;

/// The rich OS scheduler over `n` cores.
///
/// This is a pure state machine: it decides *which* task runs *where*; the
/// `satin-system` event loop decides *when* by sampling dispatch latencies
/// and driving ticks. The semantics mirror what the paper's probers rely on:
///
/// - affinity-pinned tasks are never migrated (§III-B1: "we fix the CPU
///   affinity of each thread. Thus, when one core enters the secure world,
///   the attached thread will be paused and cannot be migrated");
/// - `SCHED_FIFO` tasks preempt CFS tasks immediately on wake (§III-C2);
/// - CFS picks the smallest-vruntime task and round-robins via timeslices.
///
/// # Example
///
/// ```
/// use satin_kernel::{Scheduler, SchedClass, Affinity, KernelConfig};
/// use satin_hw::CoreId;
///
/// let mut s = Scheduler::new(2, KernelConfig::lsk_4_4());
/// let t = s.spawn("worker", SchedClass::cfs(), Affinity::any(2));
/// let core = s.wake(t).unwrap();
/// assert!(core.index() < 2);
/// let picked = s.pick_next(core).unwrap();
/// assert_eq!(picked, t);
/// s.start_running(core, t);
/// assert_eq!(s.current(core), Some(t));
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    tasks: Vec<Task>,
    queues: Vec<CoreRunQueue>,
    current: Vec<Option<TaskId>>,
    config: KernelConfig,
}

impl Scheduler {
    /// A scheduler for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores == 0`.
    pub fn new(num_cores: usize, config: KernelConfig) -> Self {
        assert!(num_cores > 0, "scheduler needs at least one core");
        config.validate();
        Scheduler {
            tasks: Vec::new(),
            queues: vec![CoreRunQueue::new(); num_cores],
            current: vec![None; num_cores],
            config,
        }
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.queues.len()
    }

    /// Creates a task (initially [`TaskState::Blocked`]; wake it to run).
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        class: SchedClass,
        affinity: Affinity,
    ) -> TaskId {
        let id = TaskId::new(self.tasks.len() as u64);
        self.tasks.push(Task::new(id, name, class, affinity));
        id
    }

    /// The task with id `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` was not spawned by this scheduler.
    pub fn task(&self, tid: TaskId) -> &Task {
        &self.tasks[tid.value() as usize]
    }

    fn task_mut(&mut self, tid: TaskId) -> &mut Task {
        &mut self.tasks[tid.value() as usize]
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The task currently running on `core` (if any).
    pub fn current(&self, core: CoreId) -> Option<TaskId> {
        self.current[core.index()]
    }

    /// Queued-runnable count on `core` (excludes the running task).
    pub fn queue_len(&self, core: CoreId) -> usize {
        self.queues[core.index()].len()
    }

    /// Total load on `core`: queued + running.
    pub fn load(&self, core: CoreId) -> usize {
        self.queue_len(core) + usize::from(self.current(core).is_some())
    }

    /// CFS timeslice for the current contention on `core`.
    pub fn timeslice(&self, core: CoreId) -> SimDuration {
        self.config.cfs_timeslice(self.load(core))
    }

    /// Wakes `tid`: places it on a runqueue and returns the chosen core.
    ///
    /// Placement: the least-loaded allowed core, preferring the task's last
    /// core on ties (cache warmth). Pinned tasks always land on their core —
    /// even if that core is currently unavailable to the normal world, which
    /// is exactly the property the prober's side channel needs.
    ///
    /// Returns `None` if the task is already runnable/running or has exited.
    pub fn wake(&mut self, tid: TaskId) -> Option<CoreId> {
        let (state, affinity, class, last) = {
            let t = self.task(tid);
            (t.state(), t.affinity(), t.class(), t.last_core())
        };
        match state {
            TaskState::Blocked | TaskState::Sleeping => {}
            _ => return None,
        }
        let core = self.place(affinity, last);
        // Floor a woken CFS task's vruntime at the queue minimum so sleepers
        // do not monopolise the CPU on wake.
        if let SchedClass::Cfs { .. } = class {
            let floor = self.queues[core.index()].min_vruntime();
            if self.task(tid).vruntime() < floor {
                self.task_mut(tid).set_vruntime(floor);
            }
        }
        self.enqueue(core, tid);
        let t = self.task_mut(tid);
        t.set_state(TaskState::Runnable);
        t.count_wakeup();
        Some(core)
    }

    /// Whether the task just woken on `core` should preempt the running task:
    /// RT beats CFS; higher RT priority beats lower; CFS never preempts on
    /// wake (it waits for the tick).
    pub fn should_preempt(&self, core: CoreId, woken: TaskId) -> bool {
        let Some(cur) = self.current(core) else {
            return true; // idle core: "preempt" the idle loop
        };
        match (self.task(woken).class(), self.task(cur).class()) {
            (SchedClass::RtFifo { priority: wp }, SchedClass::RtFifo { priority: cp }) => wp > cp,
            (SchedClass::RtFifo { .. }, SchedClass::Cfs { .. }) => true,
            (SchedClass::Cfs { .. }, _) => false,
        }
    }

    /// Picks (and dequeues) the next task to run on `core`.
    pub fn pick_next(&mut self, core: CoreId) -> Option<TaskId> {
        self.queues[core.index()].pick_next()
    }

    /// The task `pick_next` would choose, without dequeuing.
    pub fn peek_next(&self, core: CoreId) -> Option<TaskId> {
        self.queues[core.index()].peek_next()
    }

    /// Marks `tid` as running on `core`.
    ///
    /// # Panics
    ///
    /// Panics if another task is already running on `core`.
    pub fn start_running(&mut self, core: CoreId, tid: TaskId) {
        assert!(
            self.current[core.index()].is_none(),
            "{core} already has a running task"
        );
        self.current[core.index()] = Some(tid);
        let t = self.task_mut(tid);
        t.set_state(TaskState::Running);
        t.set_last_core(core);
    }

    /// Accounts `ran_for` of execution to the running task on `core` and
    /// removes it from the CPU, transitioning it to `next_state`.
    ///
    /// If `next_state` is [`TaskState::Runnable`] the task is re-enqueued
    /// (yield/preemption); otherwise it leaves the scheduler's runnable set.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not the task running on `core`, or if
    /// `next_state` is [`TaskState::Running`].
    pub fn stop_running(
        &mut self,
        core: CoreId,
        tid: TaskId,
        ran_for: SimDuration,
        next_state: TaskState,
    ) {
        assert_eq!(
            self.current[core.index()],
            Some(tid),
            "{tid} is not running on {core}"
        );
        assert!(
            next_state != TaskState::Running,
            "stop_running cannot leave the task Running"
        );
        self.current[core.index()] = None;
        let class = self.task(tid).class();
        {
            let t = self.task_mut(tid);
            t.add_cpu_time(ran_for);
            if let SchedClass::Cfs { nice } = class {
                t.add_vruntime(weight::vruntime_delta(ran_for.as_nanos(), nice));
            }
            t.set_state(next_state);
        }
        if let SchedClass::Cfs { .. } = class {
            let v = self.task(tid).vruntime();
            self.queues[core.index()].advance_min_vruntime(v);
        }
        if next_state == TaskState::Runnable {
            self.enqueue(core, tid);
        }
    }

    /// Forcibly removes a queued task (e.g. on exit while runnable).
    /// Returns `true` if it was queued somewhere.
    pub fn dequeue(&mut self, tid: TaskId) -> bool {
        let found = self.queues.iter_mut().any(|q| q.remove(tid));
        if found {
            self.task_mut(tid).set_state(TaskState::Blocked);
        }
        found
    }

    /// Marks a non-running task's state (e.g. Sleeping→Blocked transitions
    /// managed by the system layer).
    ///
    /// # Panics
    ///
    /// Panics if the task is currently running (use
    /// [`Scheduler::stop_running`]) or the new state is `Running`.
    pub fn set_state(&mut self, tid: TaskId, state: TaskState) {
        assert!(state != TaskState::Running, "use start_running");
        assert!(
            self.task(tid).state() != TaskState::Running,
            "task is running; use stop_running"
        );
        self.task_mut(tid).set_state(state);
    }

    fn enqueue(&mut self, core: CoreId, tid: TaskId) {
        let (class, vruntime) = {
            let t = self.task(tid);
            (t.class(), t.vruntime())
        };
        let q = &mut self.queues[core.index()];
        match class {
            SchedClass::RtFifo { priority } => q.enqueue_rt(priority, tid),
            SchedClass::Cfs { .. } => q.enqueue_cfs(vruntime, tid),
        }
    }

    fn place(&self, affinity: Affinity, last: Option<CoreId>) -> CoreId {
        let mut best: Option<(usize, CoreId)> = None;
        for core in affinity.cores() {
            if core.index() >= self.queues.len() {
                break;
            }
            let load = self.load(core);
            let better = match best {
                None => true,
                Some((bl, bc)) => {
                    load < bl || (load == bl && Some(core) == last && Some(bc) != last)
                }
            };
            if better {
                best = Some((load, core));
            }
        }
        best.expect("affinity allows no core on this machine").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sched(cores: usize) -> Scheduler {
        Scheduler::new(cores, KernelConfig::lsk_4_4())
    }

    #[test]
    fn pinned_task_lands_on_its_core() {
        let mut s = sched(4);
        let t = s.spawn("p", SchedClass::rt_max(), Affinity::pinned(CoreId::new(3)));
        assert_eq!(s.wake(t), Some(CoreId::new(3)));
        assert_eq!(s.pick_next(CoreId::new(3)), Some(t));
        assert_eq!(s.pick_next(CoreId::new(0)), None);
    }

    #[test]
    fn wake_prefers_least_loaded_core() {
        let mut s = sched(2);
        // Load core 0 with a running task.
        let a = s.spawn("a", SchedClass::cfs(), Affinity::pinned(CoreId::new(0)));
        s.wake(a);
        let a = s.pick_next(CoreId::new(0)).unwrap();
        s.start_running(CoreId::new(0), a);
        // An any-core task should now go to core 1.
        let b = s.spawn("b", SchedClass::cfs(), Affinity::any(2));
        assert_eq!(s.wake(b), Some(CoreId::new(1)));
    }

    #[test]
    fn rt_preempts_cfs_only() {
        let mut s = sched(1);
        let cfs = s.spawn("cfs", SchedClass::cfs(), Affinity::any(1));
        let rt = s.spawn("rt", SchedClass::rt_max(), Affinity::any(1));
        s.wake(cfs);
        let c = s.pick_next(CoreId::new(0)).unwrap();
        s.start_running(CoreId::new(0), c);
        s.wake(rt);
        assert!(s.should_preempt(CoreId::new(0), rt));
        // A CFS wake never preempts.
        let cfs2 = s.spawn("cfs2", SchedClass::cfs(), Affinity::any(1));
        s.wake(cfs2);
        assert!(!s.should_preempt(CoreId::new(0), cfs2));
    }

    #[test]
    fn rt_priority_preemption() {
        let mut s = sched(1);
        let low = s.spawn("low", SchedClass::RtFifo { priority: 10 }, Affinity::any(1));
        let high = s.spawn(
            "high",
            SchedClass::RtFifo { priority: 90 },
            Affinity::any(1),
        );
        s.wake(low);
        let l = s.pick_next(CoreId::new(0)).unwrap();
        s.start_running(CoreId::new(0), l);
        s.wake(high);
        assert!(s.should_preempt(CoreId::new(0), high));
        // Equal priority does not preempt (FIFO runs to completion).
        let equal = s.spawn("eq", SchedClass::RtFifo { priority: 90 }, Affinity::any(1));
        s.stop_running(
            CoreId::new(0),
            l,
            SimDuration::from_micros(1),
            TaskState::Blocked,
        );
        let h = s.pick_next(CoreId::new(0)).unwrap();
        assert_eq!(h, high);
        s.start_running(CoreId::new(0), h);
        s.wake(equal);
        assert!(!s.should_preempt(CoreId::new(0), equal));
    }

    #[test]
    fn vruntime_accrues_for_cfs_only() {
        let mut s = sched(1);
        let c = s.spawn("c", SchedClass::cfs(), Affinity::any(1));
        let r = s.spawn("r", SchedClass::rt_max(), Affinity::any(1));
        for (tid, expect_vruntime) in [(c, true), (r, false)] {
            s.wake(tid);
            // The RT task is picked first even though woken second; handle both.
            let picked = s.pick_next(CoreId::new(0)).unwrap();
            s.start_running(CoreId::new(0), picked);
            s.stop_running(
                CoreId::new(0),
                picked,
                SimDuration::from_micros(100),
                TaskState::Blocked,
            );
            let _ = (tid, expect_vruntime);
        }
        assert!(s.task(c).vruntime() > 0);
        assert_eq!(s.task(r).vruntime(), 0);
        assert_eq!(s.task(c).cpu_time(), SimDuration::from_micros(100));
    }

    #[test]
    fn double_wake_is_noop() {
        let mut s = sched(1);
        let t = s.spawn("t", SchedClass::cfs(), Affinity::any(1));
        assert!(s.wake(t).is_some());
        assert!(s.wake(t).is_none());
        assert_eq!(s.queue_len(CoreId::new(0)), 1);
    }

    #[test]
    fn sleeping_task_can_wake() {
        let mut s = sched(1);
        let t = s.spawn("t", SchedClass::cfs(), Affinity::any(1));
        s.wake(t);
        let t2 = s.pick_next(CoreId::new(0)).unwrap();
        s.start_running(CoreId::new(0), t2);
        s.stop_running(CoreId::new(0), t2, SimDuration::ZERO, TaskState::Sleeping);
        assert_eq!(s.task(t).state(), TaskState::Sleeping);
        assert!(s.wake(t).is_some());
    }

    #[test]
    fn woken_cfs_task_floored_at_min_vruntime() {
        let mut s = sched(1);
        let hog = s.spawn("hog", SchedClass::cfs(), Affinity::any(1));
        let sleeper = s.spawn("sleeper", SchedClass::cfs(), Affinity::any(1));
        s.wake(hog);
        let h = s.pick_next(CoreId::new(0)).unwrap();
        s.start_running(CoreId::new(0), h);
        s.stop_running(
            CoreId::new(0),
            h,
            SimDuration::from_millis(50),
            TaskState::Runnable,
        );
        // Sleeper wakes with vruntime 0 but must be floored to the queue min.
        s.wake(sleeper);
        assert!(s.task(sleeper).vruntime() >= s.task(hog).vruntime() / 2);
    }

    #[test]
    #[should_panic(expected = "already has a running task")]
    fn double_start_running_panics() {
        let mut s = sched(1);
        let a = s.spawn("a", SchedClass::cfs(), Affinity::any(1));
        let b = s.spawn("b", SchedClass::cfs(), Affinity::any(1));
        s.wake(a);
        s.wake(b);
        s.start_running(CoreId::new(0), a);
        s.start_running(CoreId::new(0), b);
    }

    #[test]
    fn dequeue_removes_queued_task() {
        let mut s = sched(1);
        let t = s.spawn("t", SchedClass::cfs(), Affinity::any(1));
        s.wake(t);
        assert!(s.dequeue(t));
        assert!(!s.dequeue(t));
        assert_eq!(s.queue_len(CoreId::new(0)), 0);
    }

    proptest! {
        /// Invariant 2 (DESIGN.md): pinned tasks always wake on their core,
        /// regardless of system load.
        #[test]
        fn prop_pinned_never_migrates(
            pin_core in 0usize..4,
            load in proptest::collection::vec(0usize..4, 0..12),
        ) {
            let mut s = sched(4);
            // Create load on various cores.
            for (i, c) in load.iter().enumerate() {
                let t = s.spawn(format!("load{i}"), SchedClass::cfs(), Affinity::pinned(CoreId::new(*c)));
                s.wake(t);
            }
            let p = s.spawn("pinned", SchedClass::rt_max(), Affinity::pinned(CoreId::new(pin_core)));
            prop_assert_eq!(s.wake(p), Some(CoreId::new(pin_core)));
        }

        /// At most one task runs per core, ever.
        #[test]
        fn prop_one_running_per_core(ops in proptest::collection::vec(0u8..3, 1..60)) {
            let mut s = sched(2);
            let mut spawned = Vec::new();
            for op in ops {
                match op {
                    0 => {
                        let t = s.spawn("t", SchedClass::cfs(), Affinity::any(2));
                        spawned.push(t);
                        s.wake(t);
                    }
                    1 => {
                        for core in [CoreId::new(0), CoreId::new(1)] {
                            if s.current(core).is_none() {
                                if let Some(t) = s.pick_next(core) {
                                    s.start_running(core, t);
                                }
                            }
                        }
                    }
                    _ => {
                        for core in [CoreId::new(0), CoreId::new(1)] {
                            if let Some(t) = s.current(core) {
                                s.stop_running(core, t, SimDuration::from_micros(10), TaskState::Runnable);
                            }
                        }
                    }
                }
                // Invariant: running tasks are exactly the per-core currents.
                let running = s.tasks().iter().filter(|t| t.state() == TaskState::Running).count();
                let currents = (0..2).filter(|i| s.current(CoreId::new(*i)).is_some()).count();
                prop_assert_eq!(running, currents);
            }
        }
    }
}
