//! Kernel configuration knobs.

use satin_sim::SimDuration;

/// Tunables of the simulated rich OS, defaulting to the lsk-4.4 values the
/// paper's board ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelConfig {
    /// Scheduler tick frequency. "For most versions of the Linux kernel,
    /// 100 ≤ HZ ≤ 1000" (§III-C1); ARM defconfigs commonly use 250.
    pub hz: u32,
    /// `CONFIG_NO_HZ_IDLE`: the per-core tick stops while the core idles
    /// (§III-C1) — which is why KProber-I must keep every core busy.
    pub nohz_idle: bool,
    /// CFS scheduling latency target (`sysctl_sched_latency`).
    pub sched_latency: SimDuration,
    /// CFS minimum preemption granularity.
    pub min_granularity: SimDuration,
}

impl KernelConfig {
    /// The configuration of the paper's rich OS.
    pub fn lsk_4_4() -> Self {
        KernelConfig {
            hz: 250,
            nohz_idle: true,
            sched_latency: SimDuration::from_millis(6),
            min_granularity: SimDuration::from_micros(750),
        }
    }

    /// Tick period (`1/HZ`).
    ///
    /// # Panics
    ///
    /// Panics if `hz == 0`.
    pub fn tick_period(&self) -> SimDuration {
        assert!(self.hz > 0, "HZ must be positive");
        SimDuration::from_nanos(1_000_000_000 / u64::from(self.hz))
    }

    /// CFS timeslice for a queue of `nr_running` tasks: latency divided by
    /// the number of runnable tasks, floored at the minimum granularity.
    pub fn cfs_timeslice(&self, nr_running: usize) -> SimDuration {
        if nr_running == 0 {
            return self.sched_latency;
        }
        let slice = self.sched_latency / nr_running as u64;
        if slice < self.min_granularity {
            self.min_granularity
        } else {
            slice
        }
    }

    /// Validates the configuration against the paper's stated HZ range.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is outside `[100, 1000]`.
    pub fn validate(&self) {
        assert!(
            (100..=1000).contains(&self.hz),
            "HZ {} outside the paper's 100..=1000 range",
            self.hz
        );
    }
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self::lsk_4_4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = KernelConfig::lsk_4_4();
        c.validate();
        assert_eq!(c.hz, 250);
        assert_eq!(c.tick_period(), SimDuration::from_millis(4));
        assert!(c.nohz_idle);
    }

    #[test]
    fn timeslice_scaling() {
        let c = KernelConfig::lsk_4_4();
        assert_eq!(c.cfs_timeslice(0), SimDuration::from_millis(6));
        assert_eq!(c.cfs_timeslice(1), SimDuration::from_millis(6));
        assert_eq!(c.cfs_timeslice(3), SimDuration::from_millis(2));
        // Heavily loaded: floors at min granularity.
        assert_eq!(c.cfs_timeslice(100), SimDuration::from_micros(750));
    }

    #[test]
    #[should_panic(expected = "outside the paper")]
    fn hz_range_enforced() {
        let mut c = KernelConfig::lsk_4_4();
        c.hz = 50;
        c.validate();
    }
}
