#![warn(missing_docs)]
//! Rich OS substrate: the normal-world kernel the paper's attack lives in.
//!
//! The TZ-Evader attack is built from scheduler and interrupt artifacts of
//! the Linux kernel running in EL1 (paper §III–IV): a user-level prober
//! scheduled by CFS, KProber-II riding the `SCHED_FIFO` real-time class, and
//! KProber-I injected into the timer-interrupt path found through the
//! exception vector table. This crate reproduces those semantics:
//!
//! - [`task`]: tasks with CPU affinity, scheduling class, and state;
//! - [`weight`]: Linux's nice-to-weight table for CFS vruntime accounting;
//! - [`runqueue`] / [`scheduler`]: per-core runqueues with an RT FIFO class
//!   that always beats the CFS class, affinity-respecting wake placement,
//!   and vruntime-ordered CFS picks;
//! - [`tick`]: periodic scheduler ticks at `HZ` with `CONFIG_NO_HZ_IDLE`
//!   semantics (the tick stops on idle cores — which is why KProber-I keeps
//!   a spinner on every core, §III-C1);
//! - [`syscall`]: the syscall table the sample rootkit hijacks (GETTID);
//! - [`vector`]: the AArch64 exception vector table KProber-I redirects.

pub mod config;
pub mod runqueue;
pub mod scheduler;
pub mod syscall;
pub mod task;
pub mod tick;
pub mod vector;
pub mod weight;

pub use config::KernelConfig;
pub use scheduler::Scheduler;
pub use task::{Affinity, SchedClass, Task, TaskId, TaskState};
