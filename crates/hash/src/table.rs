//! The authorized hash table the paper stores in secure memory (§VI-A2).
//!
//! "During the booting time, SATIN hashes these 19 areas and then saves these
//! hash values into an authorized hash table stored in the secure world."

use crate::HashAlgorithm;
use std::collections::BTreeMap;

/// Result of verifying an area's digest against its authorized value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Digest matched the authorized value.
    Clean,
    /// Digest did not match: the area has been modified.
    Tampered {
        /// The authorized digest recorded at boot.
        expected: u64,
        /// The digest computed from current memory.
        observed: u64,
    },
    /// The area id was never enrolled, which is a configuration error.
    Unknown,
}

impl VerifyOutcome {
    /// `true` for [`VerifyOutcome::Tampered`].
    pub fn is_tampered(self) -> bool {
        matches!(self, VerifyOutcome::Tampered { .. })
    }
}

/// Boot-time table of authorized digests, keyed by area id.
///
/// # Example
///
/// ```
/// use satin_hash::{AuthorizedHashTable, HashAlgorithm, VerifyOutcome, hash_bytes};
/// let mut table = AuthorizedHashTable::new(HashAlgorithm::Djb2);
/// table.enroll(14, hash_bytes(HashAlgorithm::Djb2, b"syscall table"));
/// assert_eq!(
///     table.verify(14, hash_bytes(HashAlgorithm::Djb2, b"syscall table")),
///     VerifyOutcome::Clean
/// );
/// assert!(table.verify(14, 0xdead).is_tampered());
/// assert_eq!(table.verify(99, 0), VerifyOutcome::Unknown);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthorizedHashTable {
    algorithm: HashAlgorithm,
    digests: BTreeMap<usize, u64>,
}

impl AuthorizedHashTable {
    /// Creates an empty table for `algorithm`.
    pub fn new(algorithm: HashAlgorithm) -> Self {
        AuthorizedHashTable {
            algorithm,
            digests: BTreeMap::new(),
        }
    }

    /// The algorithm all digests were computed with.
    pub fn algorithm(&self) -> HashAlgorithm {
        self.algorithm
    }

    /// Records (or overwrites) the authorized digest for `area`.
    /// Returns the previously enrolled digest, if any.
    pub fn enroll(&mut self, area: usize, digest: u64) -> Option<u64> {
        self.digests.insert(area, digest)
    }

    /// The authorized digest for `area`, if enrolled.
    pub fn digest(&self, area: usize) -> Option<u64> {
        self.digests.get(&area).copied()
    }

    /// Number of enrolled areas.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// `true` if no areas are enrolled.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// Verifies an observed digest against the authorized value.
    pub fn verify(&self, area: usize, observed: u64) -> VerifyOutcome {
        match self.digests.get(&area) {
            None => VerifyOutcome::Unknown,
            Some(&expected) if expected == observed => VerifyOutcome::Clean,
            Some(&expected) => VerifyOutcome::Tampered { expected, observed },
        }
    }

    /// Iterates enrolled `(area, digest)` pairs in area order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.digests.iter().map(|(a, d)| (*a, *d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_bytes;

    #[test]
    fn enroll_verify_cycle() {
        let mut t = AuthorizedHashTable::new(HashAlgorithm::Djb2);
        assert!(t.is_empty());
        let d = hash_bytes(HashAlgorithm::Djb2, b"area zero");
        assert_eq!(t.enroll(0, d), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.digest(0), Some(d));
        assert_eq!(t.verify(0, d), VerifyOutcome::Clean);
    }

    #[test]
    fn tampered_reports_both_digests() {
        let mut t = AuthorizedHashTable::new(HashAlgorithm::Djb2);
        t.enroll(3, 111);
        match t.verify(3, 222) {
            VerifyOutcome::Tampered { expected, observed } => {
                assert_eq!(expected, 111);
                assert_eq!(observed, 222);
            }
            other => panic!("expected tampered, got {other:?}"),
        }
    }

    #[test]
    fn unknown_area() {
        let t = AuthorizedHashTable::new(HashAlgorithm::Fnv1a);
        assert_eq!(t.verify(7, 0), VerifyOutcome::Unknown);
        assert!(!t.verify(7, 0).is_tampered());
    }

    #[test]
    fn re_enroll_returns_previous() {
        let mut t = AuthorizedHashTable::new(HashAlgorithm::Sdbm);
        t.enroll(1, 10);
        assert_eq!(t.enroll(1, 20), Some(10));
        assert_eq!(t.digest(1), Some(20));
    }

    #[test]
    fn iter_in_area_order() {
        let mut t = AuthorizedHashTable::new(HashAlgorithm::Djb2);
        t.enroll(5, 50);
        t.enroll(1, 10);
        t.enroll(3, 30);
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(1, 10), (3, 30), (5, 50)]);
    }
}
