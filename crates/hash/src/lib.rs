#![warn(missing_docs)]
//! Kernel-integrity hash functions and authorized hash tables.
//!
//! The SATIN prototype hashes normal-world kernel memory with **djb2**
//! (paper §IV-B1, citing Bernstein's hash collection) and compares digests
//! against pre-computed authorized values stored in secure memory
//! (paper §VI-A2). This crate provides djb2 plus two alternatives from the
//! same family (sdbm, FNV-1a) for ablation, an incremental [`KernelHasher`]
//! trait, and the [`AuthorizedHashTable`] used by SATIN's integrity checking
//! module.
//!
//! These are *integrity-check* hashes as used by the paper, not
//! collision-resistant cryptographic hashes; the paper's threat model gives
//! the checker a trusted golden value and the attacker no opportunity to
//! craft collisions offline (any modification of the monitored bytes is a
//! detection target regardless of digest behaviour).

pub mod table;

pub use table::{AuthorizedHashTable, VerifyOutcome};

/// Incremental hasher over kernel bytes.
///
/// Object-safe so introspection strategies can be configured at runtime.
///
/// # Example
///
/// ```
/// use satin_hash::{Djb2, KernelHasher};
/// let mut h = Djb2::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let incremental = h.finish();
/// assert_eq!(incremental, satin_hash::hash_bytes(satin_hash::HashAlgorithm::Djb2, b"hello world"));
/// ```
pub trait KernelHasher {
    /// Resets to the initial state.
    fn reset(&mut self);
    /// Feeds bytes into the hash state.
    fn update(&mut self, bytes: &[u8]);
    /// Returns the current digest without resetting.
    fn finish(&self) -> u64;
    /// Stable algorithm name.
    fn algorithm(&self) -> HashAlgorithm;
}

/// The hash algorithms available to the integrity checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum HashAlgorithm {
    /// Bernstein's djb2 — the paper's choice.
    #[default]
    Djb2,
    /// The sdbm hash from the same collection.
    Sdbm,
    /// 64-bit FNV-1a.
    Fnv1a,
}

impl HashAlgorithm {
    /// All supported algorithms.
    pub const ALL: [HashAlgorithm; 3] = [
        HashAlgorithm::Djb2,
        HashAlgorithm::Sdbm,
        HashAlgorithm::Fnv1a,
    ];

    /// Creates a boxed hasher for this algorithm. Prefer
    /// [`HashAlgorithm::kind`] on hot paths — it allocates nothing and
    /// dispatches without a vtable.
    pub fn new_hasher(self) -> Box<dyn KernelHasher> {
        match self {
            HashAlgorithm::Djb2 => Box::new(Djb2::new()),
            HashAlgorithm::Sdbm => Box::new(Sdbm::new()),
            HashAlgorithm::Fnv1a => Box::new(Fnv1a::new()),
        }
    }

    /// Creates an enum-dispatched hasher for this algorithm (no allocation,
    /// no virtual call).
    pub fn kind(self) -> HasherKind {
        HasherKind::new(self)
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            HashAlgorithm::Djb2 => "djb2",
            HashAlgorithm::Sdbm => "sdbm",
            HashAlgorithm::Fnv1a => "fnv1a",
        }
    }
}

impl std::fmt::Display for HashAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One-shot hash of a byte slice. Allocation-free: dispatches through
/// [`HasherKind`], not a boxed trait object.
pub fn hash_bytes(algorithm: HashAlgorithm, bytes: &[u8]) -> u64 {
    let mut h = HasherKind::new(algorithm);
    h.update(bytes);
    h.finish()
}

/// `m^n` with wrapping multiplication — the batching constants below.
const fn pow_wrapping(m: u64, n: u32) -> u64 {
    let mut acc = 1u64;
    let mut i = 0;
    while i < n {
        acc = acc.wrapping_mul(m);
        i += 1;
    }
    acc
}

/// Word-at-a-time update for the affine recurrence `h' = h·M + b`.
///
/// Eight affine steps compose into one affine step with multiplier `M⁸`
/// exactly (everything is mod 2^64 with wrapping arithmetic), so this
/// produces bit-identical digests to the per-byte loop while touching the
/// state once per 8 bytes. The tail shorter than a word falls back to the
/// per-byte recurrence, preserving byte order for unaligned lengths.
#[inline]
fn affine_update<const M: u64>(state: &mut u64, bytes: &[u8]) {
    // `M` is a const generic, so these fold to compile-time constants in
    // each monomorphization.
    let m2 = pow_wrapping(M, 2);
    let m3 = pow_wrapping(M, 3);
    let m4 = pow_wrapping(M, 4);
    let m5 = pow_wrapping(M, 5);
    let m6 = pow_wrapping(M, 6);
    let m7 = pow_wrapping(M, 7);
    let m8 = pow_wrapping(M, 8);
    let mut h = *state;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let &[b0, b1, b2, b3, b4, b5, b6, b7] = chunk else {
            continue; // unreachable: chunks_exact(8) yields 8-byte slices
        };
        h = h
            .wrapping_mul(m8)
            .wrapping_add(u64::from(b0).wrapping_mul(m7))
            .wrapping_add(u64::from(b1).wrapping_mul(m6))
            .wrapping_add(u64::from(b2).wrapping_mul(m5))
            .wrapping_add(u64::from(b3).wrapping_mul(m4))
            .wrapping_add(u64::from(b4).wrapping_mul(m3))
            .wrapping_add(u64::from(b5).wrapping_mul(m2))
            .wrapping_add(u64::from(b6).wrapping_mul(M))
            .wrapping_add(u64::from(b7));
    }
    for &b in chunks.remainder() {
        h = h.wrapping_mul(M).wrapping_add(u64::from(b));
    }
    *state = h;
}

/// Enum-dispatched hasher: the same contract as [`KernelHasher`] without
/// the per-call allocation or vtable indirection of `Box<dyn KernelHasher>`.
/// This is what every hot path (scan-window digesting, integrity rounds)
/// uses; the boxed form remains for runtime-configured strategy objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HasherKind {
    /// Bernstein's djb2 — the paper's choice.
    Djb2(Djb2),
    /// The sdbm hash from the same collection.
    Sdbm(Sdbm),
    /// 64-bit FNV-1a.
    Fnv1a(Fnv1a),
}

impl HasherKind {
    /// Creates a hasher in the initial state for `algorithm`.
    pub fn new(algorithm: HashAlgorithm) -> Self {
        match algorithm {
            HashAlgorithm::Djb2 => HasherKind::Djb2(Djb2::new()),
            HashAlgorithm::Sdbm => HasherKind::Sdbm(Sdbm::new()),
            HashAlgorithm::Fnv1a => HasherKind::Fnv1a(Fnv1a::new()),
        }
    }

    /// Resets to the initial state.
    pub fn reset(&mut self) {
        match self {
            HasherKind::Djb2(h) => KernelHasher::reset(h),
            HasherKind::Sdbm(h) => KernelHasher::reset(h),
            HasherKind::Fnv1a(h) => KernelHasher::reset(h),
        }
    }

    /// Feeds bytes into the hash state.
    pub fn update(&mut self, bytes: &[u8]) {
        match self {
            HasherKind::Djb2(h) => KernelHasher::update(h, bytes),
            HasherKind::Sdbm(h) => KernelHasher::update(h, bytes),
            HasherKind::Fnv1a(h) => KernelHasher::update(h, bytes),
        }
    }

    /// Returns the current digest without resetting.
    pub fn finish(&self) -> u64 {
        match self {
            HasherKind::Djb2(h) => KernelHasher::finish(h),
            HasherKind::Sdbm(h) => KernelHasher::finish(h),
            HasherKind::Fnv1a(h) => KernelHasher::finish(h),
        }
    }

    /// Stable algorithm name.
    pub fn algorithm(&self) -> HashAlgorithm {
        match self {
            HasherKind::Djb2(_) => HashAlgorithm::Djb2,
            HasherKind::Sdbm(_) => HashAlgorithm::Sdbm,
            HasherKind::Fnv1a(_) => HashAlgorithm::Fnv1a,
        }
    }
}

impl KernelHasher for HasherKind {
    fn reset(&mut self) {
        HasherKind::reset(self);
    }
    fn update(&mut self, bytes: &[u8]) {
        HasherKind::update(self, bytes);
    }
    fn finish(&self) -> u64 {
        HasherKind::finish(self)
    }
    fn algorithm(&self) -> HashAlgorithm {
        HasherKind::algorithm(self)
    }
}

/// Bernstein's djb2 hash (`h = h * 33 + b`, seed 5381), 64-bit state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Djb2 {
    state: u64,
}

impl Djb2 {
    const SEED: u64 = 5381;
    const M: u64 = 33;

    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Djb2 { state: Self::SEED }
    }
}

impl Default for Djb2 {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelHasher for Djb2 {
    fn reset(&mut self) {
        self.state = Self::SEED;
    }
    // The recurrence `h' = h·33 + b` is affine, so eight steps compose into
    // one exactly (mod 2^64): `h' = h·33⁸ + Σ bᵢ·33^(7-i)`. Same digest as
    // the per-byte loop, one multiply chain per 8 bytes.
    fn update(&mut self, bytes: &[u8]) {
        affine_update::<{ Self::M }>(&mut self.state, bytes);
    }
    fn finish(&self) -> u64 {
        self.state
    }
    fn algorithm(&self) -> HashAlgorithm {
        HashAlgorithm::Djb2
    }
}

/// The sdbm hash (`h = b + (h << 6) + (h << 16) - h`), 64-bit state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sdbm {
    state: u64,
}

impl Sdbm {
    /// `(h << 6) + (h << 16) - h` is `h · 65599`; naming the multiplier is
    /// what lets the batched loop treat sdbm like djb2.
    const M: u64 = 65599;

    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sdbm { state: 0 }
    }
}

impl KernelHasher for Sdbm {
    fn reset(&mut self) {
        self.state = 0;
    }
    // Affine like djb2 (`h' = h·65599 + b`), so the same exact 8-byte
    // composition applies.
    fn update(&mut self, bytes: &[u8]) {
        affine_update::<{ Self::M }>(&mut self.state, bytes);
    }
    fn finish(&self) -> u64 {
        self.state
    }
    fn algorithm(&self) -> HashAlgorithm {
        HashAlgorithm::Sdbm
    }
}

/// 64-bit FNV-1a.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Fnv1a {
            state: Self::OFFSET,
        }
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelHasher for Fnv1a {
    fn reset(&mut self) {
        self.state = Self::OFFSET;
    }
    // FNV-1a's xor-then-multiply is not affine in `h`, so unlike djb2/sdbm
    // the steps cannot be composed algebraically. The win here is purely an
    // unrolled loop: one bounds check per 8 bytes and no loop-carried
    // branch, byte order untouched.
    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let &[b0, b1, b2, b3, b4, b5, b6, b7] = chunk else {
                continue; // unreachable: chunks_exact(8) yields 8-byte slices
            };
            h = (h ^ u64::from(b0)).wrapping_mul(Self::PRIME);
            h = (h ^ u64::from(b1)).wrapping_mul(Self::PRIME);
            h = (h ^ u64::from(b2)).wrapping_mul(Self::PRIME);
            h = (h ^ u64::from(b3)).wrapping_mul(Self::PRIME);
            h = (h ^ u64::from(b4)).wrapping_mul(Self::PRIME);
            h = (h ^ u64::from(b5)).wrapping_mul(Self::PRIME);
            h = (h ^ u64::from(b6)).wrapping_mul(Self::PRIME);
            h = (h ^ u64::from(b7)).wrapping_mul(Self::PRIME);
        }
        for &b in chunks.remainder() {
            h = (h ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
        self.state = h;
    }
    fn finish(&self) -> u64 {
        self.state
    }
    fn algorithm(&self) -> HashAlgorithm {
        HashAlgorithm::Fnv1a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn djb2_known_vectors() {
        // Classic 32-bit djb2 value for "hello" is 0x0f923099; our 64-bit
        // state agrees on short inputs where no 32-bit overflow occurs... it
        // does overflow, so instead check the recurrence directly.
        let mut expected: u64 = 5381;
        for &b in b"hello" {
            expected = expected.wrapping_mul(33).wrapping_add(u64::from(b));
        }
        assert_eq!(hash_bytes(HashAlgorithm::Djb2, b"hello"), expected);
    }

    #[test]
    fn empty_input_gives_seed() {
        assert_eq!(hash_bytes(HashAlgorithm::Djb2, b""), 5381);
        assert_eq!(hash_bytes(HashAlgorithm::Sdbm, b""), 0);
        assert_eq!(hash_bytes(HashAlgorithm::Fnv1a, b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn fnv1a_known_vector() {
        // Standard FNV-1a 64 test vector: "a" -> 0xaf63dc4c8601ec8c.
        assert_eq!(
            hash_bytes(HashAlgorithm::Fnv1a, b"a"),
            0xaf63_dc4c_8601_ec8c
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        for alg in HashAlgorithm::ALL {
            let mut h = alg.new_hasher();
            h.update(b"garbage");
            h.reset();
            h.update(b"x");
            assert_eq!(h.finish(), hash_bytes(alg, b"x"), "{alg}");
        }
    }

    #[test]
    fn algorithms_disagree_on_typical_input() {
        let input = b"kernel text segment";
        let d = hash_bytes(HashAlgorithm::Djb2, input);
        let s = hash_bytes(HashAlgorithm::Sdbm, input);
        let f = hash_bytes(HashAlgorithm::Fnv1a, input);
        assert_ne!(d, s);
        assert_ne!(d, f);
        assert_ne!(s, f);
    }

    #[test]
    fn display_names() {
        assert_eq!(HashAlgorithm::Djb2.to_string(), "djb2");
        assert_eq!(HashAlgorithm::Sdbm.to_string(), "sdbm");
        assert_eq!(HashAlgorithm::Fnv1a.to_string(), "fnv1a");
    }

    /// The pre-batching per-byte recurrences, kept verbatim as the reference
    /// the word-batched loops must reproduce bit-for-bit.
    fn per_byte_reference(alg: HashAlgorithm, bytes: &[u8]) -> u64 {
        match alg {
            HashAlgorithm::Djb2 => {
                let mut h: u64 = 5381;
                for &b in bytes {
                    h = h.wrapping_mul(33).wrapping_add(u64::from(b));
                }
                h
            }
            HashAlgorithm::Sdbm => {
                let mut h: u64 = 0;
                for &b in bytes {
                    h = u64::from(b)
                        .wrapping_add(h << 6)
                        .wrapping_add(h << 16)
                        .wrapping_sub(h);
                }
                h
            }
            HashAlgorithm::Fnv1a => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for &b in bytes {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
                h
            }
        }
    }

    /// Satellite: word-batched digests equal the per-byte reference for all
    /// three algorithms — empty slice, sub-word inputs, word-multiple
    /// inputs, and every unaligned head/tail length around the 8-byte
    /// batching boundary.
    #[test]
    fn batched_equals_per_byte_reference() {
        let data: Vec<u8> = (0u16..257)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for alg in HashAlgorithm::ALL {
            assert_eq!(
                hash_bytes(alg, b""),
                per_byte_reference(alg, b""),
                "{alg} empty"
            );
            for len in 0..=64 {
                for start in 0..8.min(data.len() - len) {
                    let window = &data[start..start + len];
                    assert_eq!(
                        hash_bytes(alg, window),
                        per_byte_reference(alg, window),
                        "{alg} start={start} len={len}"
                    );
                }
            }
            // A window far larger than one unroll, at an odd offset.
            let window = &data[3..250];
            assert_eq!(
                hash_bytes(alg, window),
                per_byte_reference(alg, window),
                "{alg} large"
            );
        }
    }

    /// Boxed trait-object dispatch and enum dispatch agree (they share the
    /// concrete hashers, but the boxed path must not drift).
    #[test]
    fn kind_matches_boxed_hasher() {
        let input = b"secure-world scan window";
        for alg in HashAlgorithm::ALL {
            let mut boxed = alg.new_hasher();
            boxed.update(input);
            let mut kind = alg.kind();
            kind.update(input);
            assert_eq!(boxed.finish(), kind.finish(), "{alg}");
            assert_eq!(kind.algorithm(), alg);
            kind.reset();
            kind.update(b"x");
            assert_eq!(kind.finish(), hash_bytes(alg, b"x"), "{alg} reset");
        }
    }

    proptest! {
        /// Incremental hashing over arbitrary chunk boundaries equals one-shot.
        #[test]
        fn prop_incremental_equals_oneshot(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            split in 0usize..512,
        ) {
            let split = split.min(data.len());
            for alg in HashAlgorithm::ALL {
                let mut h = alg.new_hasher();
                h.update(&data[..split]);
                h.update(&data[split..]);
                prop_assert_eq!(h.finish(), hash_bytes(alg, &data));
            }
        }

        /// A single flipped byte changes the digest (detection property the
        /// integrity checker relies on). djb2/sdbm are not collision-free in
        /// general, but single-byte substitutions at the same position always
        /// change the digest because the per-byte mixing is injective in the
        /// final addition.
        #[test]
        fn prop_single_byte_flip_detected(
            mut data in proptest::collection::vec(any::<u8>(), 1..256),
            idx in 0usize..256,
            delta in 1u8..=255,
        ) {
            let idx = idx % data.len();
            for alg in HashAlgorithm::ALL {
                let before = hash_bytes(alg, &data);
                data[idx] = data[idx].wrapping_add(delta);
                let after = hash_bytes(alg, &data);
                data[idx] = data[idx].wrapping_sub(delta);
                prop_assert_ne!(before, after, "{} missed a byte flip", alg);
            }
        }
    }
}
