#![warn(missing_docs)]
//! Kernel-integrity hash functions and authorized hash tables.
//!
//! The SATIN prototype hashes normal-world kernel memory with **djb2**
//! (paper §IV-B1, citing Bernstein's hash collection) and compares digests
//! against pre-computed authorized values stored in secure memory
//! (paper §VI-A2). This crate provides djb2 plus two alternatives from the
//! same family (sdbm, FNV-1a) for ablation, an incremental [`KernelHasher`]
//! trait, and the [`AuthorizedHashTable`] used by SATIN's integrity checking
//! module.
//!
//! These are *integrity-check* hashes as used by the paper, not
//! collision-resistant cryptographic hashes; the paper's threat model gives
//! the checker a trusted golden value and the attacker no opportunity to
//! craft collisions offline (any modification of the monitored bytes is a
//! detection target regardless of digest behaviour).

pub mod table;

pub use table::{AuthorizedHashTable, VerifyOutcome};

/// Incremental hasher over kernel bytes.
///
/// Object-safe so introspection strategies can be configured at runtime.
///
/// # Example
///
/// ```
/// use satin_hash::{Djb2, KernelHasher};
/// let mut h = Djb2::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let incremental = h.finish();
/// assert_eq!(incremental, satin_hash::hash_bytes(satin_hash::HashAlgorithm::Djb2, b"hello world"));
/// ```
pub trait KernelHasher {
    /// Resets to the initial state.
    fn reset(&mut self);
    /// Feeds bytes into the hash state.
    fn update(&mut self, bytes: &[u8]);
    /// Returns the current digest without resetting.
    fn finish(&self) -> u64;
    /// Stable algorithm name.
    fn algorithm(&self) -> HashAlgorithm;
}

/// The hash algorithms available to the integrity checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum HashAlgorithm {
    /// Bernstein's djb2 — the paper's choice.
    #[default]
    Djb2,
    /// The sdbm hash from the same collection.
    Sdbm,
    /// 64-bit FNV-1a.
    Fnv1a,
}

impl HashAlgorithm {
    /// All supported algorithms.
    pub const ALL: [HashAlgorithm; 3] = [
        HashAlgorithm::Djb2,
        HashAlgorithm::Sdbm,
        HashAlgorithm::Fnv1a,
    ];

    /// Creates a boxed hasher for this algorithm.
    pub fn new_hasher(self) -> Box<dyn KernelHasher> {
        match self {
            HashAlgorithm::Djb2 => Box::new(Djb2::new()),
            HashAlgorithm::Sdbm => Box::new(Sdbm::new()),
            HashAlgorithm::Fnv1a => Box::new(Fnv1a::new()),
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            HashAlgorithm::Djb2 => "djb2",
            HashAlgorithm::Sdbm => "sdbm",
            HashAlgorithm::Fnv1a => "fnv1a",
        }
    }
}

impl std::fmt::Display for HashAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One-shot hash of a byte slice.
pub fn hash_bytes(algorithm: HashAlgorithm, bytes: &[u8]) -> u64 {
    let mut h = algorithm.new_hasher();
    h.update(bytes);
    h.finish()
}

/// Bernstein's djb2 hash (`h = h * 33 + b`, seed 5381), 64-bit state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Djb2 {
    state: u64,
}

impl Djb2 {
    const SEED: u64 = 5381;

    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Djb2 { state: Self::SEED }
    }
}

impl Default for Djb2 {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelHasher for Djb2 {
    fn reset(&mut self) {
        self.state = Self::SEED;
    }
    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h = h.wrapping_mul(33).wrapping_add(u64::from(b));
        }
        self.state = h;
    }
    fn finish(&self) -> u64 {
        self.state
    }
    fn algorithm(&self) -> HashAlgorithm {
        HashAlgorithm::Djb2
    }
}

/// The sdbm hash (`h = b + (h << 6) + (h << 16) - h`), 64-bit state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sdbm {
    state: u64,
}

impl Sdbm {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sdbm { state: 0 }
    }
}

impl KernelHasher for Sdbm {
    fn reset(&mut self) {
        self.state = 0;
    }
    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h = u64::from(b)
                .wrapping_add(h << 6)
                .wrapping_add(h << 16)
                .wrapping_sub(h);
        }
        self.state = h;
    }
    fn finish(&self) -> u64 {
        self.state
    }
    fn algorithm(&self) -> HashAlgorithm {
        HashAlgorithm::Sdbm
    }
}

/// 64-bit FNV-1a.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Fnv1a {
            state: Self::OFFSET,
        }
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelHasher for Fnv1a {
    fn reset(&mut self) {
        self.state = Self::OFFSET;
    }
    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.state = h;
    }
    fn finish(&self) -> u64 {
        self.state
    }
    fn algorithm(&self) -> HashAlgorithm {
        HashAlgorithm::Fnv1a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn djb2_known_vectors() {
        // Classic 32-bit djb2 value for "hello" is 0x0f923099; our 64-bit
        // state agrees on short inputs where no 32-bit overflow occurs... it
        // does overflow, so instead check the recurrence directly.
        let mut expected: u64 = 5381;
        for &b in b"hello" {
            expected = expected.wrapping_mul(33).wrapping_add(u64::from(b));
        }
        assert_eq!(hash_bytes(HashAlgorithm::Djb2, b"hello"), expected);
    }

    #[test]
    fn empty_input_gives_seed() {
        assert_eq!(hash_bytes(HashAlgorithm::Djb2, b""), 5381);
        assert_eq!(hash_bytes(HashAlgorithm::Sdbm, b""), 0);
        assert_eq!(hash_bytes(HashAlgorithm::Fnv1a, b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn fnv1a_known_vector() {
        // Standard FNV-1a 64 test vector: "a" -> 0xaf63dc4c8601ec8c.
        assert_eq!(
            hash_bytes(HashAlgorithm::Fnv1a, b"a"),
            0xaf63_dc4c_8601_ec8c
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        for alg in HashAlgorithm::ALL {
            let mut h = alg.new_hasher();
            h.update(b"garbage");
            h.reset();
            h.update(b"x");
            assert_eq!(h.finish(), hash_bytes(alg, b"x"), "{alg}");
        }
    }

    #[test]
    fn algorithms_disagree_on_typical_input() {
        let input = b"kernel text segment";
        let d = hash_bytes(HashAlgorithm::Djb2, input);
        let s = hash_bytes(HashAlgorithm::Sdbm, input);
        let f = hash_bytes(HashAlgorithm::Fnv1a, input);
        assert_ne!(d, s);
        assert_ne!(d, f);
        assert_ne!(s, f);
    }

    #[test]
    fn display_names() {
        assert_eq!(HashAlgorithm::Djb2.to_string(), "djb2");
        assert_eq!(HashAlgorithm::Sdbm.to_string(), "sdbm");
        assert_eq!(HashAlgorithm::Fnv1a.to_string(), "fnv1a");
    }

    proptest! {
        /// Incremental hashing over arbitrary chunk boundaries equals one-shot.
        #[test]
        fn prop_incremental_equals_oneshot(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            split in 0usize..512,
        ) {
            let split = split.min(data.len());
            for alg in HashAlgorithm::ALL {
                let mut h = alg.new_hasher();
                h.update(&data[..split]);
                h.update(&data[split..]);
                prop_assert_eq!(h.finish(), hash_bytes(alg, &data));
            }
        }

        /// A single flipped byte changes the digest (detection property the
        /// integrity checker relies on). djb2/sdbm are not collision-free in
        /// general, but single-byte substitutions at the same position always
        /// change the digest because the per-byte mixing is injective in the
        /// final addition.
        #[test]
        fn prop_single_byte_flip_detected(
            mut data in proptest::collection::vec(any::<u8>(), 1..256),
            idx in 0usize..256,
            delta in 1u8..=255,
        ) {
            let idx = idx % data.len();
            for alg in HashAlgorithm::ALL {
                let before = hash_bytes(alg, &data);
                data[idx] = data[idx].wrapping_add(delta);
                let after = hash_bytes(alg, &data);
                data[idx] = data[idx].wrapping_sub(delta);
                prop_assert_ne!(before, after, "{} missed a byte flip", alg);
            }
        }
    }
}
