//! Starting an introspection scan over normal-world memory.
//!
//! Table I of the paper compares two scan strategies (direct hash vs
//! snapshot-then-hash). Both *read the normal world sequentially at a
//! per-byte rate*, so both are subject to the same TOCTTOU race while the
//! bytes are being read; the snapshot strategy additionally pays for the copy
//! and the secure-memory footprint. [`begin_scan`] captures the shared part:
//! it snapshots the range as of scan start and returns the
//! [`satin_mem::ScanWindow`] that resolves the race.

use satin_hw::timing::{ByteRate, ScanStrategy};
use satin_mem::{MemError, MemRange, PhysMemory, ScanWindow};
use satin_sim::SimTime;

/// Memory cost of a scan, for the Table I comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanCost {
    /// Secure-memory bytes consumed (the snapshot buffer, if any).
    pub secure_memory_bytes: u64,
}

/// Begins a sequential scan of `range` starting at `start` with the given
/// per-byte `rate`, returning the in-flight window plus its memory cost.
///
/// # Errors
///
/// Propagates [`MemError`] if `range` lies outside memory.
///
/// # Example
///
/// ```
/// use satin_hw::timing::{ByteRate, ScanStrategy};
/// use satin_mem::{KernelLayout, PhysMemory};
/// use satin_secure::scanner::begin_scan;
/// use satin_sim::SimTime;
///
/// let layout = KernelLayout::paper();
/// let mem = PhysMemory::with_image(&layout, 42);
/// let area = layout.segment_range(0);
/// let (window, cost) = begin_scan(
///     &mem, area, SimTime::ZERO, ByteRate::new(6.67e-9), ScanStrategy::DirectHash,
/// ).unwrap();
/// assert_eq!(window.range(), area);
/// assert_eq!(cost.secure_memory_bytes, 0); // direct hash copies nothing
/// ```
pub fn begin_scan(
    mem: &PhysMemory,
    range: MemRange,
    start: SimTime,
    rate: ByteRate,
    strategy: ScanStrategy,
) -> Result<(ScanWindow, ScanCost), MemError> {
    let snapshot = mem.read(range)?.to_vec();
    let cost = ScanCost {
        secure_memory_bytes: match strategy {
            ScanStrategy::DirectHash => 0,
            ScanStrategy::SnapshotThenHash => range.len(),
        },
    };
    Ok((
        ScanWindow::begin(range, start, rate.secs_per_byte(), snapshot),
        cost,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_hash::HashAlgorithm;
    use satin_mem::KernelLayout;

    #[test]
    fn scan_of_pristine_area_matches_direct_hash() {
        let layout = KernelLayout::paper();
        let mem = PhysMemory::with_image(&layout, 3);
        let area = layout.segment_range(2);
        let (w, _) = begin_scan(
            &mem,
            area,
            SimTime::from_secs(1),
            ByteRate::new(1.07e-8),
            ScanStrategy::DirectHash,
        )
        .unwrap();
        let direct = satin_hash::hash_bytes(HashAlgorithm::Djb2, mem.read(area).unwrap());
        assert_eq!(w.observed_digest(HashAlgorithm::Djb2), direct);
    }

    #[test]
    fn snapshot_strategy_costs_secure_memory() {
        let layout = KernelLayout::paper();
        let mem = PhysMemory::with_image(&layout, 3);
        let area = layout.segment_range(1);
        let (_, direct) = begin_scan(
            &mem,
            area,
            SimTime::ZERO,
            ByteRate::new(1e-8),
            ScanStrategy::DirectHash,
        )
        .unwrap();
        let (_, snap) = begin_scan(
            &mem,
            area,
            SimTime::ZERO,
            ByteRate::new(1e-8),
            ScanStrategy::SnapshotThenHash,
        )
        .unwrap();
        assert_eq!(direct.secure_memory_bytes, 0);
        assert_eq!(snap.secure_memory_bytes, area.len());
    }

    #[test]
    fn out_of_bounds_scan_rejected() {
        let layout = KernelLayout::paper();
        let mem = PhysMemory::with_image(&layout, 3);
        let bogus = MemRange::new(layout.range().end(), 16);
        assert!(begin_scan(
            &mem,
            bogus,
            SimTime::ZERO,
            ByteRate::new(1e-8),
            ScanStrategy::DirectHash,
        )
        .is_err());
    }
}
