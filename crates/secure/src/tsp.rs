//! Test Secure Payload bookkeeping.
//!
//! The paper's prototype "modif\[ies\] the secure timer interrupt handler in
//! the TSP to perform the integrity check over the normal world" (§IV-A).
//! The payload model here tracks what the real TSP tracks: which handler is
//! installed for the secure timer, per-core invocation statistics, and
//! cumulative secure-world residency (used by the Figure 7 overhead study).

use satin_hw::CoreId;
use satin_sim::{SimDuration, SimTime};

/// Per-core invocation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreStats {
    /// Number of secure timer invocations handled.
    pub invocations: u64,
    /// Total time spent in the secure world.
    pub residency: SimDuration,
}

/// The secure payload's bookkeeping state.
///
/// # Example
///
/// ```
/// use satin_secure::TestSecurePayload;
/// use satin_hw::CoreId;
/// use satin_sim::{SimDuration, SimTime};
///
/// let mut tsp = TestSecurePayload::new(6);
/// tsp.record_invocation(CoreId::new(2), SimTime::from_secs(8), SimDuration::from_millis(4));
/// assert_eq!(tsp.stats(CoreId::new(2)).invocations, 1);
/// assert_eq!(tsp.total_invocations(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TestSecurePayload {
    stats: Vec<CoreStats>,
    last_invocation: Option<(CoreId, SimTime)>,
}

impl TestSecurePayload {
    /// A payload for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores == 0`.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores > 0, "TSP needs at least one core");
        TestSecurePayload {
            stats: vec![CoreStats::default(); num_cores],
            last_invocation: None,
        }
    }

    /// Records one secure timer invocation on `core` at `at`, spending
    /// `residency` in the secure world.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn record_invocation(&mut self, core: CoreId, at: SimTime, residency: SimDuration) {
        let s = &mut self.stats[core.index()];
        s.invocations += 1;
        s.residency += residency;
        self.last_invocation = Some((core, at));
    }

    /// Stats for one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn stats(&self, core: CoreId) -> CoreStats {
        self.stats[core.index()]
    }

    /// Total invocations across cores.
    pub fn total_invocations(&self) -> u64 {
        self.stats.iter().map(|s| s.invocations).sum()
    }

    /// Total secure-world residency across cores.
    pub fn total_residency(&self) -> SimDuration {
        self.stats
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.residency)
    }

    /// The most recent invocation, if any.
    pub fn last_invocation(&self) -> Option<(CoreId, SimTime)> {
        self.last_invocation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_core() {
        let mut tsp = TestSecurePayload::new(3);
        tsp.record_invocation(
            CoreId::new(0),
            SimTime::from_secs(1),
            SimDuration::from_millis(5),
        );
        tsp.record_invocation(
            CoreId::new(0),
            SimTime::from_secs(2),
            SimDuration::from_millis(5),
        );
        tsp.record_invocation(
            CoreId::new(2),
            SimTime::from_secs(3),
            SimDuration::from_millis(3),
        );
        assert_eq!(tsp.stats(CoreId::new(0)).invocations, 2);
        assert_eq!(
            tsp.stats(CoreId::new(0)).residency,
            SimDuration::from_millis(10)
        );
        assert_eq!(tsp.stats(CoreId::new(1)).invocations, 0);
        assert_eq!(tsp.total_invocations(), 3);
        assert_eq!(tsp.total_residency(), SimDuration::from_millis(13));
        assert_eq!(
            tsp.last_invocation(),
            Some((CoreId::new(2), SimTime::from_secs(3)))
        );
    }

    #[test]
    #[should_panic]
    fn bad_core_panics() {
        let tsp = TestSecurePayload::new(1);
        let _ = tsp.stats(CoreId::new(5));
    }
}
