//! Test Secure Payload bookkeeping.
//!
//! The paper's prototype "modif\[ies\] the secure timer interrupt handler in
//! the TSP to perform the integrity check over the normal world" (§IV-A).
//! The payload model here tracks what the real TSP tracks: which handler is
//! installed for the secure timer, per-core invocation statistics, and
//! cumulative secure-world residency (used by the Figure 7 overhead study).

use crate::storage::MeasurementSlots;
use satin_hw::{CoreId, World};
use satin_sim::{SimDuration, SimTime};
use std::num::NonZeroUsize;

/// How many recent invocation records the TSP's fixed slot region keeps.
const RECENT_SLOTS: usize = 32;

/// Per-core invocation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreStats {
    /// Number of secure timer invocations handled.
    pub invocations: u64,
    /// Total time spent in the secure world.
    pub residency: SimDuration,
}

/// The secure payload's bookkeeping state.
///
/// # Example
///
/// ```
/// use satin_secure::TestSecurePayload;
/// use satin_hw::CoreId;
/// use satin_sim::{SimDuration, SimTime};
///
/// let mut tsp = TestSecurePayload::new(6);
/// tsp.record_invocation(CoreId::new(2), SimTime::from_secs(8), SimDuration::from_millis(4));
/// assert_eq!(tsp.stats(CoreId::new(2)).invocations, 1);
/// assert_eq!(tsp.total_invocations(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TestSecurePayload {
    stats: Vec<CoreStats>,
    last_invocation: Option<(CoreId, SimTime)>,
    recent: MeasurementSlots<(CoreId, SimTime)>,
}

impl TestSecurePayload {
    /// A payload for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores == 0`.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores > 0, "TSP needs at least one core");
        TestSecurePayload {
            stats: vec![CoreStats::default(); num_cores],
            last_invocation: None,
            recent: MeasurementSlots::new(
                "recent invocation slots",
                NonZeroUsize::new(RECENT_SLOTS).expect("RECENT_SLOTS is non-zero"),
            ),
        }
    }

    /// Records one secure timer invocation on `core` at `at`, spending
    /// `residency` in the secure world.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn record_invocation(&mut self, core: CoreId, at: SimTime, residency: SimDuration) {
        let s = &mut self.stats[core.index()];
        s.invocations += 1;
        s.residency += residency;
        self.last_invocation = Some((core, at));
        // The TSP itself runs in the secure world; once the fixed slot
        // region fills, the oldest record is evicted (a typed outcome,
        // not a panic — long campaigns keep a sliding window).
        let _ = self.recent.push(World::Secure, (core, at));
    }

    /// The bounded log of recent invocations (secure-world only).
    pub fn recent_invocations(&self) -> &MeasurementSlots<(CoreId, SimTime)> {
        &self.recent
    }

    /// Stats for one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn stats(&self, core: CoreId) -> CoreStats {
        self.stats[core.index()]
    }

    /// Total invocations across cores.
    pub fn total_invocations(&self) -> u64 {
        self.stats.iter().map(|s| s.invocations).sum()
    }

    /// Total secure-world residency across cores.
    pub fn total_residency(&self) -> SimDuration {
        self.stats
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.residency)
    }

    /// The most recent invocation, if any.
    pub fn last_invocation(&self) -> Option<(CoreId, SimTime)> {
        self.last_invocation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_core() {
        let mut tsp = TestSecurePayload::new(3);
        tsp.record_invocation(
            CoreId::new(0),
            SimTime::from_secs(1),
            SimDuration::from_millis(5),
        );
        tsp.record_invocation(
            CoreId::new(0),
            SimTime::from_secs(2),
            SimDuration::from_millis(5),
        );
        tsp.record_invocation(
            CoreId::new(2),
            SimTime::from_secs(3),
            SimDuration::from_millis(3),
        );
        assert_eq!(tsp.stats(CoreId::new(0)).invocations, 2);
        assert_eq!(
            tsp.stats(CoreId::new(0)).residency,
            SimDuration::from_millis(10)
        );
        assert_eq!(tsp.stats(CoreId::new(1)).invocations, 0);
        assert_eq!(tsp.total_invocations(), 3);
        assert_eq!(tsp.total_residency(), SimDuration::from_millis(13));
        assert_eq!(
            tsp.last_invocation(),
            Some((CoreId::new(2), SimTime::from_secs(3)))
        );
        let recent: Vec<_> = tsp
            .recent_invocations()
            .read(World::Secure)
            .unwrap()
            .copied()
            .collect();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[2], (CoreId::new(2), SimTime::from_secs(3)));
    }

    #[test]
    fn recent_log_slides_instead_of_overflowing() {
        let mut tsp = TestSecurePayload::new(1);
        for s in 0..100 {
            tsp.record_invocation(
                CoreId::new(0),
                SimTime::from_secs(s),
                SimDuration::from_millis(1),
            );
        }
        let slots = tsp.recent_invocations();
        assert_eq!(slots.len(), slots.capacity().get());
        assert_eq!(slots.evictions(), 100 - slots.capacity().get() as u64);
        let oldest = slots.read(World::Secure).unwrap().next().copied().unwrap();
        assert_eq!(
            oldest.1,
            SimTime::from_secs(100 - slots.capacity().get() as u64)
        );
    }

    #[test]
    #[should_panic]
    fn bad_core_panics() {
        let tsp = TestSecurePayload::new(1);
        let _ = tsp.stats(CoreId::new(5));
    }
}
