//! Boot-time measurement: enrolling the authorized hash table.
//!
//! Paper §VI-A2: "During the booting time, SATIN hashes these 19 areas and
//! then saves these hash values into an authorized hash table stored in the
//! secure world." Measurement happens during trusted boot, before any
//! normal-world code has run, so the digests describe the pristine kernel.

use satin_hash::{AuthorizedHashTable, HashAlgorithm};
use satin_hw::World;
use satin_mem::{MemError, MemRange, PhysMemory};

use crate::storage::SecureStorage;

/// Measures `areas` of `mem` and returns the authorized table wrapped in
/// secure storage.
///
/// # Errors
///
/// Propagates [`MemError`] if an area lies outside memory.
///
/// # Example
///
/// ```
/// use satin_hash::HashAlgorithm;
/// use satin_hw::World;
/// use satin_mem::{KernelLayout, PhysMemory};
/// use satin_secure::measurement::measure_at_boot;
///
/// let layout = KernelLayout::paper();
/// let mem = PhysMemory::with_image(&layout, 42);
/// let table = measure_at_boot(&mem, &layout.segment_ranges(), HashAlgorithm::Djb2).unwrap();
/// assert_eq!(table.read(World::Secure).unwrap().len(), 19);
/// assert!(table.read(World::Normal).is_err());
/// ```
pub fn measure_at_boot(
    mem: &PhysMemory,
    areas: &[MemRange],
    algorithm: HashAlgorithm,
) -> Result<SecureStorage<AuthorizedHashTable>, MemError> {
    let mut table = AuthorizedHashTable::new(algorithm);
    for (idx, area) in areas.iter().enumerate() {
        // One bounds check per area, then a slice-batched digest.
        table.enroll(idx, mem.view(*area)?.digest(algorithm));
    }
    Ok(SecureStorage::new("authorized hash table", table))
}

/// Re-measures one area against the enrolled digest (out-of-band check used
/// by tests and the boot self-test; the *runtime* check goes through the
/// scan-window path because it must model the race).
///
/// # Errors
///
/// Propagates [`MemError`] if the area lies outside memory.
pub fn verify_area_now(
    mem: &PhysMemory,
    area: MemRange,
    idx: usize,
    table: &SecureStorage<AuthorizedHashTable>,
) -> Result<satin_hash::VerifyOutcome, MemError> {
    let t = table
        .read(World::Secure)
        .expect("verify_area_now runs in the secure world");
    let digest = mem.view(area)?.digest(t.algorithm());
    Ok(t.verify(idx, digest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_hash::VerifyOutcome;
    use satin_mem::KernelLayout;

    fn setup() -> (KernelLayout, PhysMemory, SecureStorage<AuthorizedHashTable>) {
        let layout = KernelLayout::paper();
        let mem = PhysMemory::with_image(&layout, 11);
        let table = measure_at_boot(&mem, &layout.segment_ranges(), HashAlgorithm::Djb2).unwrap();
        (layout, mem, table)
    }

    #[test]
    fn pristine_kernel_verifies_clean() {
        let (layout, mem, table) = setup();
        for (idx, area) in layout.segment_ranges().iter().enumerate() {
            assert_eq!(
                verify_area_now(&mem, *area, idx, &table).unwrap(),
                VerifyOutcome::Clean,
                "area {idx}"
            );
        }
    }

    #[test]
    fn tampering_detected_in_exactly_one_area() {
        let (layout, mut mem, table) = setup();
        let addr = layout.syscall_entry_addr(satin_mem::layout::GETTID_NR);
        let evil = satin_mem::image::hijacked_entry_bytes(&layout, 5);
        mem.write_unchecked(addr, &evil).unwrap();
        let mut tampered = Vec::new();
        for (idx, area) in layout.segment_ranges().iter().enumerate() {
            if verify_area_now(&mem, *area, idx, &table)
                .unwrap()
                .is_tampered()
            {
                tampered.push(idx);
            }
        }
        assert_eq!(tampered, vec![satin_mem::PAPER_SYSCALL_AREA]);
    }

    #[test]
    fn restore_returns_to_clean() {
        let (layout, mut mem, table) = setup();
        let addr = layout.syscall_entry_addr(satin_mem::layout::GETTID_NR);
        let area = layout.segment_range(satin_mem::PAPER_SYSCALL_AREA);
        let original = mem.read(MemRange::new(addr, 8)).unwrap().to_vec();
        let evil = satin_mem::image::hijacked_entry_bytes(&layout, 5);
        mem.write_unchecked(addr, &evil).unwrap();
        assert!(
            verify_area_now(&mem, area, satin_mem::PAPER_SYSCALL_AREA, &table)
                .unwrap()
                .is_tampered()
        );
        mem.write_unchecked(addr, &original).unwrap();
        assert_eq!(
            verify_area_now(&mem, area, satin_mem::PAPER_SYSCALL_AREA, &table).unwrap(),
            VerifyOutcome::Clean
        );
    }

    #[test]
    fn table_is_secure_only() {
        let (_, _, table) = setup();
        assert!(table.read(World::Normal).is_err());
    }
}
