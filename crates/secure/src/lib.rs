#![warn(missing_docs)]
//! Secure-world substrate: the Test Secure Payload environment SATIN runs in.
//!
//! The paper's prototype modifies ARM Trusted Firmware's Test Secure Payload
//! (TSP) at S-EL1 to host the introspection modules (§IV-A, §VI-A). This
//! crate models the pieces the defense builds on:
//!
//! - [`storage::SecureStorage`] — secure memory the normal world structurally
//!   cannot read (the authorized hash table and wake-up time queue live in
//!   such cells);
//! - [`measurement`] — boot-time measurement: hashing the pristine kernel
//!   areas into an authorized table (§VI-A2);
//! - [`scanner`] — starting a sequential introspection scan over normal
//!   memory, producing the [`satin_mem::ScanWindow`] the race resolves on;
//! - [`tsp`] — the secure payload bookkeeping: per-core invocation counts and
//!   handler registration.

pub mod measurement;
pub mod scanner;
pub mod storage;
pub mod tsp;

pub use storage::{MeasurementSlots, SecureStorage, SlotWrite};
pub use tsp::TestSecurePayload;
