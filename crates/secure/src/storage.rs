//! Secure memory cells: data the normal world structurally cannot reach.
//!
//! SATIN's security argument leans on two pieces of state living in secure
//! memory: the authorized hash table (§VI-A2) and the wake-up time queue
//! (§V-D — "SATIN stores the wake-up time of each core in the wake-up time
//! queue", protected so the normal world cannot learn the wake-up pattern).
//! [`SecureStorage`] enforces that with the type system: every access takes a
//! [`World`] witness, and normal-world accesses get an error, never data.

use satin_hw::{HwError, World};
use std::collections::VecDeque;
use std::num::NonZeroUsize;

/// A privilege-checked container for secure-world data.
///
/// # Example
///
/// ```
/// use satin_secure::SecureStorage;
/// use satin_hw::World;
///
/// let mut cell = SecureStorage::new("wake-up queue", vec![1u64, 2, 3]);
/// assert!(cell.read(World::Normal).is_err());     // attacker sees nothing
/// assert_eq!(cell.read(World::Secure).unwrap()[0], 1);
/// cell.write(World::Secure).unwrap().push(4);
/// assert_eq!(cell.read(World::Secure).unwrap().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SecureStorage<T> {
    /// Human-readable resource name used in access-denied errors.
    resource: &'static str,
    value: T,
    denied_accesses: u64,
}

impl<T> SecureStorage<T> {
    /// Wraps `value` in secure storage labelled `resource`.
    pub fn new(resource: &'static str, value: T) -> Self {
        SecureStorage {
            resource,
            value,
            denied_accesses: 0,
        }
    }

    /// Reads the value.
    ///
    /// # Errors
    ///
    /// [`HwError::SecureAccessDenied`] if `from` is the normal world.
    pub fn read(&self, from: World) -> Result<&T, HwError> {
        if from.is_secure() {
            Ok(&self.value)
        } else {
            Err(HwError::SecureAccessDenied {
                from,
                resource: self.resource,
            })
        }
    }

    /// Mutable access to the value.
    ///
    /// # Errors
    ///
    /// [`HwError::SecureAccessDenied`] if `from` is the normal world.
    pub fn write(&mut self, from: World) -> Result<&mut T, HwError> {
        if from.is_secure() {
            Ok(&mut self.value)
        } else {
            self.denied_accesses += 1;
            Err(HwError::SecureAccessDenied {
                from,
                resource: self.resource,
            })
        }
    }

    /// Attempts a normal-world read and records it — used by tests and by
    /// attack models probing for misconfigured storage.
    pub fn probe_from_normal_world(&mut self) -> Result<&T, HwError> {
        self.denied_accesses += 1;
        Err(HwError::SecureAccessDenied {
            from: World::Normal,
            resource: self.resource,
        })
    }

    /// How many normal-world accesses were denied.
    pub fn denied_accesses(&self) -> u64 {
        self.denied_accesses
    }

    /// Consumes the cell, returning the value (secure-world only, for boot
    /// handoff).
    ///
    /// # Errors
    ///
    /// [`HwError::SecureAccessDenied`] if `from` is the normal world.
    pub fn into_inner(self, from: World) -> Result<T, HwError> {
        if from.is_secure() {
            Ok(self.value)
        } else {
            Err(HwError::SecureAccessDenied {
                from,
                resource: self.resource,
            })
        }
    }
}

/// The outcome of storing a measurement into a bounded slot set.
#[derive(Debug, Clone, PartialEq, Eq)]
#[must_use = "an eviction may need to be audited"]
pub enum SlotWrite<T> {
    /// The measurement took a free slot.
    Stored,
    /// All slots were full; the oldest measurement was evicted to make
    /// room. Overflow used to be a panic — it is now this typed outcome,
    /// so long campaigns degrade to a sliding window instead of aborting.
    Evicted(T),
}

/// A bounded, secure-world-only set of measurement slots.
///
/// Models the fixed-size region of secure memory the TSP reserves for
/// recent measurement records: capacity is set once (non-zero by type),
/// writes past capacity evict the oldest entry and report it, and every
/// access takes a [`World`] witness exactly like [`SecureStorage`].
///
/// # Example
///
/// ```
/// use satin_secure::storage::{MeasurementSlots, SlotWrite};
/// use satin_hw::World;
/// use std::num::NonZeroUsize;
///
/// let mut slots = MeasurementSlots::new("recent digests", NonZeroUsize::new(2).unwrap());
/// assert_eq!(slots.push(World::Secure, 10u64).unwrap(), SlotWrite::Stored);
/// assert_eq!(slots.push(World::Secure, 11).unwrap(), SlotWrite::Stored);
/// // A third measurement evicts the oldest instead of panicking.
/// assert_eq!(slots.push(World::Secure, 12).unwrap(), SlotWrite::Evicted(10));
/// assert!(slots.push(World::Normal, 13).is_err()); // attacker writes nothing
/// ```
#[derive(Debug, Clone)]
pub struct MeasurementSlots<T> {
    resource: &'static str,
    capacity: NonZeroUsize,
    slots: VecDeque<T>,
    evictions: u64,
    denied_accesses: u64,
}

impl<T> MeasurementSlots<T> {
    /// Empty slots labelled `resource` holding at most `capacity` entries.
    pub fn new(resource: &'static str, capacity: NonZeroUsize) -> Self {
        MeasurementSlots {
            resource,
            capacity,
            slots: VecDeque::with_capacity(capacity.get()),
            evictions: 0,
            denied_accesses: 0,
        }
    }

    fn denied(&mut self, from: World) -> HwError {
        self.denied_accesses += 1;
        HwError::SecureAccessDenied {
            from,
            resource: self.resource,
        }
    }

    /// Stores `value`, evicting the oldest entry if all slots are full.
    ///
    /// # Errors
    ///
    /// [`HwError::SecureAccessDenied`] if `from` is the normal world
    /// (nothing is stored and nothing is evicted).
    pub fn push(&mut self, from: World, value: T) -> Result<SlotWrite<T>, HwError> {
        if !from.is_secure() {
            return Err(self.denied(from));
        }
        let outcome = if self.slots.len() == self.capacity.get() {
            self.evictions += 1;
            // Non-panicking even if the invariant above ever broke:
            // an empty deque simply yields `Stored`.
            match self.slots.pop_front() {
                Some(old) => SlotWrite::Evicted(old),
                None => SlotWrite::Stored,
            }
        } else {
            SlotWrite::Stored
        };
        self.slots.push_back(value);
        Ok(outcome)
    }

    /// Reads the retained measurements, oldest first.
    ///
    /// # Errors
    ///
    /// [`HwError::SecureAccessDenied`] if `from` is the normal world.
    pub fn read(&self, from: World) -> Result<impl Iterator<Item = &T>, HwError> {
        if from.is_secure() {
            Ok(self.slots.iter())
        } else {
            Err(HwError::SecureAccessDenied {
                from,
                resource: self.resource,
            })
        }
    }

    /// Number of retained measurements (not secret: the attacker knows
    /// the TSP's slot count from its binary).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if no measurements are retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The fixed slot capacity.
    pub fn capacity(&self) -> NonZeroUsize {
        self.capacity
    }

    /// How many measurements have been evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// How many normal-world accesses were denied.
    pub fn denied_accesses(&self) -> u64 {
        self.denied_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normal_world_denied() {
        let mut cell = SecureStorage::new("hash table", 42u64);
        assert!(cell.read(World::Normal).is_err());
        assert!(cell.write(World::Normal).is_err());
        assert!(cell.probe_from_normal_world().is_err());
        assert_eq!(cell.denied_accesses(), 2);
        assert!(cell.into_inner(World::Normal).is_err());
    }

    #[test]
    fn secure_world_full_access() {
        let mut cell = SecureStorage::new("queue", vec![0u8]);
        cell.write(World::Secure).unwrap().push(1);
        assert_eq!(cell.read(World::Secure).unwrap(), &vec![0, 1]);
        assert_eq!(cell.into_inner(World::Secure).unwrap(), vec![0, 1]);
    }

    #[test]
    fn error_names_resource() {
        let cell = SecureStorage::new("wake-up queue", ());
        let err = cell.read(World::Normal).unwrap_err();
        assert!(err.to_string().contains("wake-up queue"));
    }

    #[test]
    fn slots_evict_oldest_on_overflow() {
        let mut slots = MeasurementSlots::new("digests", NonZeroUsize::new(3).unwrap());
        for v in 0..3u32 {
            assert_eq!(slots.push(World::Secure, v).unwrap(), SlotWrite::Stored);
        }
        assert_eq!(slots.push(World::Secure, 3).unwrap(), SlotWrite::Evicted(0));
        assert_eq!(slots.push(World::Secure, 4).unwrap(), SlotWrite::Evicted(1));
        let kept: Vec<u32> = slots.read(World::Secure).unwrap().copied().collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(slots.evictions(), 2);
        assert_eq!(slots.len(), 3);
    }

    #[test]
    fn slots_deny_normal_world() {
        let mut slots = MeasurementSlots::new("digests", NonZeroUsize::new(2).unwrap());
        assert_eq!(slots.push(World::Secure, 1u8).unwrap(), SlotWrite::Stored);
        assert!(slots.push(World::Normal, 2).is_err());
        assert!(slots.read(World::Normal).is_err());
        assert_eq!(slots.denied_accesses(), 1);
        let kept: Vec<u8> = slots.read(World::Secure).unwrap().copied().collect();
        assert_eq!(kept, vec![1], "denied push must store nothing");
    }

    proptest! {
        /// Whatever the capacity and push count, the slot set never
        /// overflows, never panics, retains exactly the most recent
        /// pushes in order, and accounts for every eviction.
        #[test]
        fn prop_slots_bounded_and_fifo(cap in 1usize..64, pushes in 0usize..256) {
            let capacity = NonZeroUsize::new(cap).unwrap();
            let mut slots = MeasurementSlots::new("prop", capacity);
            for v in 0..pushes {
                match slots.push(World::Secure, v).unwrap() {
                    SlotWrite::Evicted(old) => {
                        prop_assert_eq!(old, v - cap, "FIFO eviction order");
                    }
                    SlotWrite::Stored => prop_assert!(v < cap, "free slot implies under capacity"),
                }
                prop_assert!(slots.len() <= cap);
            }
            prop_assert_eq!(slots.len(), pushes.min(cap));
            prop_assert_eq!(slots.evictions(), pushes.saturating_sub(cap) as u64);
            let kept: Vec<usize> = slots.read(World::Secure).unwrap().copied().collect();
            let expect: Vec<usize> = (pushes.saturating_sub(cap)..pushes).collect();
            prop_assert_eq!(kept, expect, "retained = most recent pushes, oldest first");
        }
    }
}
