//! Secure memory cells: data the normal world structurally cannot reach.
//!
//! SATIN's security argument leans on two pieces of state living in secure
//! memory: the authorized hash table (§VI-A2) and the wake-up time queue
//! (§V-D — "SATIN stores the wake-up time of each core in the wake-up time
//! queue", protected so the normal world cannot learn the wake-up pattern).
//! [`SecureStorage`] enforces that with the type system: every access takes a
//! [`World`] witness, and normal-world accesses get an error, never data.

use satin_hw::{HwError, World};

/// A privilege-checked container for secure-world data.
///
/// # Example
///
/// ```
/// use satin_secure::SecureStorage;
/// use satin_hw::World;
///
/// let mut cell = SecureStorage::new("wake-up queue", vec![1u64, 2, 3]);
/// assert!(cell.read(World::Normal).is_err());     // attacker sees nothing
/// assert_eq!(cell.read(World::Secure).unwrap()[0], 1);
/// cell.write(World::Secure).unwrap().push(4);
/// assert_eq!(cell.read(World::Secure).unwrap().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SecureStorage<T> {
    /// Human-readable resource name used in access-denied errors.
    resource: &'static str,
    value: T,
    denied_accesses: u64,
}

impl<T> SecureStorage<T> {
    /// Wraps `value` in secure storage labelled `resource`.
    pub fn new(resource: &'static str, value: T) -> Self {
        SecureStorage {
            resource,
            value,
            denied_accesses: 0,
        }
    }

    /// Reads the value.
    ///
    /// # Errors
    ///
    /// [`HwError::SecureAccessDenied`] if `from` is the normal world.
    pub fn read(&self, from: World) -> Result<&T, HwError> {
        if from.is_secure() {
            Ok(&self.value)
        } else {
            Err(HwError::SecureAccessDenied {
                from,
                resource: self.resource,
            })
        }
    }

    /// Mutable access to the value.
    ///
    /// # Errors
    ///
    /// [`HwError::SecureAccessDenied`] if `from` is the normal world.
    pub fn write(&mut self, from: World) -> Result<&mut T, HwError> {
        if from.is_secure() {
            Ok(&mut self.value)
        } else {
            self.denied_accesses += 1;
            Err(HwError::SecureAccessDenied {
                from,
                resource: self.resource,
            })
        }
    }

    /// Attempts a normal-world read and records it — used by tests and by
    /// attack models probing for misconfigured storage.
    pub fn probe_from_normal_world(&mut self) -> Result<&T, HwError> {
        self.denied_accesses += 1;
        Err(HwError::SecureAccessDenied {
            from: World::Normal,
            resource: self.resource,
        })
    }

    /// How many normal-world accesses were denied.
    pub fn denied_accesses(&self) -> u64 {
        self.denied_accesses
    }

    /// Consumes the cell, returning the value (secure-world only, for boot
    /// handoff).
    ///
    /// # Errors
    ///
    /// [`HwError::SecureAccessDenied`] if `from` is the normal world.
    pub fn into_inner(self, from: World) -> Result<T, HwError> {
        if from.is_secure() {
            Ok(self.value)
        } else {
            Err(HwError::SecureAccessDenied {
                from,
                resource: self.resource,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_world_denied() {
        let mut cell = SecureStorage::new("hash table", 42u64);
        assert!(cell.read(World::Normal).is_err());
        assert!(cell.write(World::Normal).is_err());
        assert!(cell.probe_from_normal_world().is_err());
        assert_eq!(cell.denied_accesses(), 2);
        assert!(cell.into_inner(World::Normal).is_err());
    }

    #[test]
    fn secure_world_full_access() {
        let mut cell = SecureStorage::new("queue", vec![0u8]);
        cell.write(World::Secure).unwrap().push(1);
        assert_eq!(cell.read(World::Secure).unwrap(), &vec![0, 1]);
        assert_eq!(cell.into_inner(World::Secure).unwrap(), vec![0, 1]);
    }

    #[test]
    fn error_names_resource() {
        let cell = SecureStorage::new("wake-up queue", ());
        let err = cell.read(World::Normal).unwrap_err();
        assert!(err.to_string().contains("wake-up queue"));
    }
}
