#![warn(missing_docs)]
//! SATIN: Secure and Trustworthy Asynchronous Introspection (the paper's
//! contribution, §V–VI).
//!
//! SATIN defeats TZ-Evader by winning the race condition: it minimizes the
//! running time of each introspection round and maximizes the attacker's
//! probing delay. Three techniques combine (§V):
//!
//! 1. **Divide and conquer** ([`areas`]): the kernel is divided along
//!    `System.map` segment boundaries into areas, each smaller than the
//!    safety bound `(Tns_delay + Tns_recover − Ts_switch) / Ts_1byte`, so a
//!    round always finishes before the attacker can finish cleaning.
//! 2. **Random self-activation** ([`activation`]): a secure timer the normal
//!    world cannot touch wakes the secure world at `tp ± td` with `td`
//!    uniform in `[−tp, tp]`, so the next round can start at any moment.
//! 3. **Multi-core collaboration** ([`queue`]): a wake-up time queue in
//!    secure memory hands each waking core a randomly assigned next wake
//!    time, so neither the next core nor the next time leaks to the normal
//!    world.
//!
//! [`satin::Satin`] packages the three as a
//! [`satin_system::SecureService`]; [`baseline`] provides the naive
//! introspection services the paper attacks, for comparison.

pub mod activation;
pub mod areas;
pub mod baseline;
pub mod error;
pub mod golden;
pub mod integrity;
pub mod queue;
pub mod satin;
pub mod sync;

pub use areas::{Area, AreaPlan, KernelAreaSet};
pub use error::PlanError;
pub use integrity::{Alarm, IntegrityChecker};
pub use satin::{CorePolicy, Satin, SatinConfig, SatinHandle};
