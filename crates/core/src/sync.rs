//! Synchronous introspection (§VII-A, §VII-C): the TZ-RKP/SPROBES layer that
//! SATIN complements.
//!
//! "Samsung TIMA deploys a synchronous introspection mechanism called
//! Real-time Kernel Protection (RKP) … and deploys an asynchronous
//! introspection mechanism called Periodical Kernel Measurement (PKM) in
//! TrustZone" (§VII-C). Synchronous protection marks invariant kernel pages
//! non-writable so every write traps to the secure world for inspection —
//! but §VII-A explains the two ways attackers get past it: hooking is
//! incomplete (some state is never protected, e.g. the RT scheduler's
//! configuration), and write-what-where bugs let the attacker flip the AP
//! bits without a trap.
//!
//! [`SyncProtection`] models the deployed layer: it protects configured
//! ranges at boot and records every trapped write attempt. Together with
//! SATIN it demonstrates the paper's layered-defense argument: the
//! synchronous layer blocks naive writes, the exploit bypasses it silently,
//! and the asynchronous layer is what ultimately catches the persistent
//! modification.

use satin_mem::{KernelLayout, MemRange, PhysAddr, PhysMemory, SectionKind};
use satin_sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// A write attempt that faulted on a protected page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrappedWrite {
    /// When the trap fired.
    pub at: SimTime,
    /// The faulting address.
    pub addr: PhysAddr,
    /// Length of the attempted write.
    pub len: u64,
}

#[derive(Debug, Default)]
struct Inner {
    traps: Vec<TrappedWrite>,
    protected: Vec<MemRange>,
}

/// The deployed synchronous-protection layer.
///
/// # Example
///
/// ```
/// use satin_core::sync::SyncProtection;
/// use satin_mem::{KernelLayout, PhysMemory};
///
/// let layout = KernelLayout::paper();
/// let mut mem = PhysMemory::with_image(&layout, 1);
/// let sync = SyncProtection::deploy_invariant(&layout, &mut mem);
/// // A naive write to the syscall table now faults…
/// let addr = layout.syscall_entry_addr(178);
/// let err = mem.write(addr, &[0u8; 8]).unwrap_err();
/// sync.record_trap(satin_sim::SimTime::ZERO, addr, 8);
/// assert_eq!(sync.trap_count(), 1);
/// # let _ = err;
/// ```
#[derive(Debug, Clone, Default)]
pub struct SyncProtection {
    inner: Rc<RefCell<Inner>>,
}

impl SyncProtection {
    /// Deploys protection over the kernel's invariant sections (text,
    /// read-only data, the vector table, and the syscall table) — the
    /// TZ-RKP/SPROBES coverage the paper describes.
    pub fn deploy_invariant(layout: &KernelLayout, mem: &mut PhysMemory) -> SyncProtection {
        let p = SyncProtection::default();
        for s in layout.sections() {
            let invariant = matches!(
                s.kind(),
                SectionKind::Text
                    | SectionKind::RoData
                    | SectionKind::VectorTable
                    | SectionKind::SyscallTable
            );
            if invariant {
                mem.perms_mut().protect(s.range());
                p.inner.borrow_mut().protected.push(s.range());
            }
        }
        p
    }

    /// Records a trapped (blocked) write — called by whoever observed the
    /// [`satin_mem::MemError::WriteProtected`] fault.
    pub fn record_trap(&self, at: SimTime, addr: PhysAddr, len: u64) {
        self.inner
            .borrow_mut()
            .traps
            .push(TrappedWrite { at, addr, len });
    }

    /// All trapped writes so far.
    pub fn traps(&self) -> Vec<TrappedWrite> {
        self.inner.borrow().traps.clone()
    }

    /// Number of trapped writes.
    pub fn trap_count(&self) -> usize {
        self.inner.borrow().traps.len()
    }

    /// The ranges under protection.
    pub fn protected_ranges(&self) -> Vec<MemRange> {
        self.inner.borrow().protected.clone()
    }

    /// `true` if `addr` falls inside a protected range — i.e. a write there
    /// *should* trap, so a successful silent write indicates the AP bits
    /// were flipped behind the layer's back (the §VII-A bypass).
    pub fn covers(&self, addr: PhysAddr) -> bool {
        self.inner
            .borrow()
            .protected
            .iter()
            .any(|r| r.contains(addr))
    }

    /// Audit: verify that every protected range is still non-writable in
    /// the page tables. Returns the addresses whose AP bits no longer match
    /// the deployed policy — the tell-tale residue of a write-what-where
    /// bypass (something a more thorough asynchronous checker could scan
    /// for, as §III-C1 suggests for KProber-I's traces).
    pub fn audit_ap_bits(&self, mem: &PhysMemory) -> Vec<PhysAddr> {
        let mut violations = Vec::new();
        for r in self.inner.borrow().protected.iter() {
            let mut a = r.start();
            while a < r.end() {
                if mem.perms().is_writable(a) {
                    violations.push(a);
                }
                a = a + satin_mem::perms::PAGE_SIZE;
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_mem::layout::GETTID_NR;

    fn setup() -> (KernelLayout, PhysMemory, SyncProtection) {
        let layout = KernelLayout::paper();
        let mut mem = PhysMemory::with_image(&layout, 4);
        let sync = SyncProtection::deploy_invariant(&layout, &mut mem);
        (layout, mem, sync)
    }

    #[test]
    fn invariant_sections_protected_data_still_writable() {
        let (layout, mut mem, sync) = setup();
        // Writes to text fault…
        let text = layout.section(".text").unwrap().range().start();
        assert!(mem.write(text, &[0]).is_err());
        assert!(sync.covers(text));
        // …writes to mutable data do not (synchronous protection cannot
        // cover everything — §VII-A's "incomplete hooking").
        let data = layout.section(".data.part0").unwrap().range().start();
        assert!(mem.write(data, &[0]).is_ok());
        assert!(!sync.covers(data));
    }

    #[test]
    fn naive_rootkit_blocked_and_logged() {
        let (layout, mut mem, sync) = setup();
        let addr = layout.syscall_entry_addr(GETTID_NR);
        let evil = satin_mem::image::hijacked_entry_bytes(&layout, 9);
        let err = mem.write(addr, &evil);
        assert!(err.is_err(), "synchronous layer must block the naive write");
        sync.record_trap(SimTime::from_millis(5), addr, 8);
        assert_eq!(sync.trap_count(), 1);
        assert_eq!(sync.traps()[0].addr, addr);
    }

    #[test]
    fn write_what_where_bypasses_silently_but_leaves_ap_residue() {
        let (layout, mut mem, sync) = setup();
        let addr = layout.syscall_entry_addr(GETTID_NR);
        // Before the exploit: clean audit.
        assert!(sync.audit_ap_bits(&mem).is_empty());
        // The §VII-A bypass: flip AP bits, then write without any trap.
        assert!(mem.perms_mut().exploit_write_what_where(addr));
        let evil = satin_mem::image::hijacked_entry_bytes(&layout, 9);
        assert!(mem.write(addr, &evil).is_ok());
        assert_eq!(sync.trap_count(), 0, "the bypass must be silent");
        // But the flipped page is auditable after the fact.
        let residue = sync.audit_ap_bits(&mem);
        assert_eq!(residue.len(), 1);
        assert!(sync.covers(residue[0]));
    }

    #[test]
    fn layered_defense_catches_what_sync_missed() {
        use crate::integrity::IntegrityChecker;
        use satin_hash::HashAlgorithm;
        use satin_hw::CoreId;

        let (layout, mut mem, sync) = setup();
        let plan = crate::areas::AreaPlan::from_segments(&layout);
        let mut checker =
            IntegrityChecker::measure_at_boot(&mem, &plan, HashAlgorithm::Djb2).unwrap();
        // The attacker bypasses the synchronous layer…
        let addr = layout.syscall_entry_addr(GETTID_NR);
        mem.perms_mut().exploit_write_what_where(addr);
        let evil = satin_mem::image::hijacked_entry_bytes(&layout, 9);
        mem.write(addr, &evil).unwrap();
        assert_eq!(sync.trap_count(), 0);
        // …but the asynchronous layer (SATIN's checker) still catches it.
        let area = satin_mem::PAPER_SYSCALL_AREA;
        let bytes = mem.read(plan.area(area).range).unwrap().to_vec();
        let out = checker.check_round(SimTime::from_secs(8), CoreId::new(0), area, &bytes);
        assert!(out.is_tampered(), "the asynchronous layer is the backstop");
    }
}
