//! The assembled SATIN secure service.

use crate::activation::WakePolicy;
use crate::areas::{max_safe_area_size, AreaPlan, KernelAreaSet};
use crate::error::PlanError;
use crate::integrity::{Alarm, AreaCoverage, IntegrityChecker};
use crate::queue::WakeQueue;
use satin_hash::HashAlgorithm;
use satin_hw::timing::ScanStrategy;
use satin_hw::{CoreId, TimingModel, World};
use satin_mem::KernelLayout;
use satin_secure::SecureStorage;
use satin_sim::{SimDuration, SimTime};
use satin_system::{BootCtx, SatinError, ScanRequest, SecureCtx, SecureService};
use std::cell::RefCell;
use std::rc::Rc;

/// Which cores perform introspection rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorePolicy {
    /// Every core takes turns in a random, queue-coordinated order (§V-D) —
    /// the design the paper adopts.
    AllRandom,
    /// Only one fixed core introspects — the predictable-affinity ablation
    /// that §IV-B2 shows is ~4× easier to probe.
    Fixed(CoreId),
}

/// How the kernel is divided into areas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AreaPolicy {
    /// One area per `System.map` segment (the paper's 19 areas).
    Segments,
    /// Greedy packing under an explicit bound (ablation).
    Greedy {
        /// Maximum area size in bytes.
        max_size: u64,
    },
    /// One monolithic area (the insecure baseline; fails safety validation).
    Monolithic,
}

/// SATIN configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SatinConfig {
    /// Full-coverage goal `Tgoal`; `tp = Tgoal / m` (§V-C).
    pub tgoal: SimDuration,
    /// Digest algorithm (djb2 in the paper).
    pub algorithm: HashAlgorithm,
    /// Scan strategy (direct hash in the paper; Table I's comparison).
    pub strategy: ScanStrategy,
    /// Randomize wake intervals with `td ∈ [−tp, tp]`?
    pub randomize_wake: bool,
    /// Core selection policy.
    pub core_policy: CorePolicy,
    /// Area division policy.
    pub area_policy: AreaPolicy,
    /// Assumed attacker probing delay `Tns_delay` for the safety bound
    /// (the paper uses `Tns_sched + Tns_threshold = 2e-4 + 1.8e-3`).
    pub tns_delay_secs: f64,
    /// Refuse to boot if any area exceeds the safety bound.
    pub enforce_safety: bool,
    /// On an alarm, repair the tampered area's invariant sections from a
    /// boot-time golden copy (an RKP-style extension beyond the paper's
    /// report-only SATIN; costs ~3.5 MB of secure memory).
    pub remediate: bool,
}

impl SatinConfig {
    /// The paper's evaluated configuration: `Tgoal = 152 s` (tp = 8 s over
    /// 19 areas), djb2, direct hash, randomized wake, all cores.
    pub fn paper() -> Self {
        SatinConfig {
            tgoal: SimDuration::from_secs(152),
            algorithm: HashAlgorithm::Djb2,
            strategy: ScanStrategy::DirectHash,
            randomize_wake: true,
            core_policy: CorePolicy::AllRandom,
            area_policy: AreaPolicy::Segments,
            tns_delay_secs: 2e-4 + 1.8e-3,
            enforce_safety: true,
            remediate: false,
        }
    }

    /// The configuration a scenario's defense profile describes.
    /// `from_profile(&Scenario::paper().defense)` equals [`SatinConfig::paper`]
    /// exactly — the juno-r1 profile is the source of the paper defaults.
    pub fn from_profile(profile: &satin_scenario::DefenseProfile) -> Self {
        use satin_scenario::{AreaPolicySpec, CorePolicySpec};
        SatinConfig {
            tgoal: profile.tgoal,
            algorithm: profile.algorithm,
            strategy: profile.strategy,
            randomize_wake: profile.randomize_wake,
            core_policy: match profile.core_policy {
                CorePolicySpec::AllRandom => CorePolicy::AllRandom,
                CorePolicySpec::Fixed(core) => CorePolicy::Fixed(CoreId::new(core)),
            },
            area_policy: match profile.area_policy {
                AreaPolicySpec::Segments => AreaPolicy::Segments,
                AreaPolicySpec::Greedy(max_size) => AreaPolicy::Greedy { max_size },
                AreaPolicySpec::Monolithic => AreaPolicy::Monolithic,
            },
            tns_delay_secs: profile.tns_delay_secs,
            enforce_safety: profile.enforce_safety,
            remediate: profile.remediate,
        }
    }

    /// Builds the area plan this configuration implies for `layout`.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from greedy packing.
    pub fn build_plan(&self, layout: &KernelLayout) -> Result<AreaPlan, PlanError> {
        match self.area_policy {
            AreaPolicy::Segments => Ok(AreaPlan::from_segments(layout)),
            AreaPolicy::Greedy { max_size } => AreaPlan::greedy(layout, max_size),
            AreaPolicy::Monolithic => Ok(AreaPlan::monolithic(layout)),
        }
    }

    /// Validates the configuration against a layout and timing model
    /// without building the service.
    ///
    /// # Errors
    ///
    /// [`PlanError`] describing the violated constraint.
    pub fn validate(&self, layout: &KernelLayout, timing: &TimingModel) -> Result<(), PlanError> {
        let plan = self.build_plan(layout)?;
        if self.enforce_safety {
            let bound = max_safe_area_size(timing, self.tns_delay_secs);
            plan.validate(bound)?;
        } else if plan.is_empty() {
            return Err(PlanError::EmptyPlan);
        }
        Ok(())
    }
}

/// One completed introspection round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRecord {
    /// When the round's secure timer fired (round start).
    pub fired: SimTime,
    /// When the round's verification completed.
    pub at: SimTime,
    /// The core that performed it.
    pub core: CoreId,
    /// The scanned area.
    pub area: usize,
    /// Whether the area was found tampered.
    pub tampered: bool,
}

#[derive(Debug)]
struct Inner {
    plan: Option<AreaPlan>,
    checker: Option<IntegrityChecker>,
    set: Option<KernelAreaSet>,
    queue: Option<SecureStorage<WakeQueue>>,
    policy: Option<WakePolicy>,
    rounds: Vec<RoundRecord>,
    golden: Option<crate::golden::GoldenStore>,
    repairs: u64,
}

/// Inspection handle shared with experiment code.
#[derive(Debug, Clone)]
pub struct SatinHandle {
    inner: Rc<RefCell<Inner>>,
}

impl SatinHandle {
    /// All completed rounds, in time order.
    pub fn rounds(&self) -> Vec<RoundRecord> {
        self.inner.borrow().rounds.clone()
    }

    /// Number of completed rounds.
    pub fn round_count(&self) -> usize {
        self.inner.borrow().rounds.len()
    }

    /// All raised alarms.
    pub fn alarms(&self) -> Vec<Alarm> {
        self.inner
            .borrow()
            .checker
            .as_ref()
            .map(|c| c.alarms().to_vec())
            .unwrap_or_default()
    }

    /// Complete kernel sweeps so far.
    pub fn full_sweeps(&self) -> u64 {
        self.inner
            .borrow()
            .checker
            .as_ref()
            .map(|c| c.full_sweeps())
            .unwrap_or(0)
    }

    /// Coverage of one area.
    ///
    /// # Panics
    ///
    /// Panics if SATIN has not booted or `area` is out of range.
    pub fn coverage(&self, area: usize) -> AreaCoverage {
        self.inner
            .borrow()
            .checker
            .as_ref()
            .expect("SATIN booted")
            .coverage(area)
    }

    /// Mean gap between consecutive checks of `area`, seconds.
    pub fn mean_check_gap_secs(&self, area: usize) -> Option<f64> {
        self.inner
            .borrow()
            .checker
            .as_ref()
            .and_then(|c| c.mean_check_gap_secs(area))
    }

    /// Remediation writes performed (0 unless `remediate` is enabled).
    pub fn repairs(&self) -> u64 {
        self.inner.borrow().repairs
    }

    /// Number of areas in the plan.
    ///
    /// # Panics
    ///
    /// Panics if SATIN has not booted.
    pub fn num_areas(&self) -> usize {
        self.inner
            .borrow()
            .plan
            .as_ref()
            .expect("SATIN booted")
            .len()
    }
}

/// The SATIN secure service. Install with
/// [`satin_system::System::install_secure_service`].
#[derive(Debug)]
pub struct Satin {
    config: SatinConfig,
    inner: Rc<RefCell<Inner>>,
}

impl Satin {
    /// Creates the service and its inspection handle.
    pub fn new(config: SatinConfig) -> (Satin, SatinHandle) {
        let inner = Rc::new(RefCell::new(Inner {
            plan: None,
            checker: None,
            set: None,
            queue: None,
            policy: None,
            rounds: Vec::new(),
            golden: None,
            repairs: 0,
        }));
        (
            Satin {
                config,
                inner: inner.clone(),
            },
            SatinHandle { inner },
        )
    }

    /// The configuration.
    pub fn config(&self) -> &SatinConfig {
        &self.config
    }
}

impl SecureService for Satin {
    fn on_boot(&mut self, ctx: &mut BootCtx<'_>) -> Result<(), SatinError> {
        // Every boot failure surfaces as a structured SatinError so a
        // misconfigured or fault-injected campaign seed reports a failed
        // row instead of aborting the whole batch.
        let plan = self.config.build_plan(ctx.layout())?;
        if self.config.enforce_safety {
            let bound = max_safe_area_size(ctx.timing(), self.config.tns_delay_secs);
            plan.validate(bound)?;
        }
        let checker = IntegrityChecker::measure_at_boot(ctx.mem(), &plan, self.config.algorithm)?;
        let policy =
            WakePolicy::from_goal(self.config.tgoal, plan.len(), self.config.randomize_wake);

        // Initial wake sequence (trusted boot): one slot per participating
        // core, assigned in a random order the normal world never sees.
        let participants: Vec<CoreId> = match self.config.core_policy {
            CorePolicy::AllRandom => (0..ctx.num_cores()).map(CoreId::new).collect(),
            CorePolicy::Fixed(core) => vec![core],
        };
        let mut queue = WakeQueue::new(SimTime::ZERO, participants.len(), &policy, ctx.rng());
        let mut order = participants.clone();
        ctx.rng().shuffle(&mut order);
        for core in order {
            let at = queue.extract(SimTime::ZERO, &policy, ctx.rng());
            ctx.arm_core(core, at)?;
        }

        let golden = if self.config.remediate {
            Some(crate::golden::GoldenStore::capture_at_boot(
                ctx.layout(),
                ctx.mem(),
            )?)
        } else {
            None
        };

        let mut inner = self.inner.borrow_mut();
        inner.set = Some(KernelAreaSet::new(plan.len()));
        inner.plan = Some(plan);
        inner.checker = Some(checker);
        inner.policy = Some(policy);
        inner.queue = Some(SecureStorage::new("wake-up time queue", queue));
        inner.golden = golden;
        Ok(())
    }

    fn on_secure_timer(&mut self, _core: CoreId, ctx: &mut SecureCtx<'_>) -> Option<ScanRequest> {
        let mut inner = self.inner.borrow_mut();
        let Inner {
            plan: Some(plan),
            set: Some(set),
            ..
        } = &mut *inner
        else {
            return None;
        };
        let area_id = set.pick(ctx.rng());
        let range = plan.area(area_id).range;
        Some(ScanRequest {
            area_id,
            range,
            strategy: self.config.strategy,
        })
    }

    fn on_scan_result(
        &mut self,
        core: CoreId,
        request: &ScanRequest,
        observed: &[u8],
        ctx: &mut SecureCtx<'_>,
    ) {
        let mut inner = self.inner.borrow_mut();
        let now = ctx.now();
        let outcome = inner.checker.as_mut().expect("SATIN booted").check_round(
            now,
            core,
            request.area_id,
            observed,
        );
        if outcome.is_tampered() {
            ctx.raise_alarm(format!("area {} tampered on {core}", request.area_id));
            // Remediation (extension): write the golden invariant bytes back
            // over the tampered area, from the secure world.
            if let Some(golden) = inner.golden.as_ref() {
                let mut n = 0u64;
                for (range, bytes) in golden.repairs_for(request.range) {
                    ctx.repair_normal_memory(range.start(), &bytes)
                        .expect("repair range inside memory");
                    n += 1;
                }
                inner.repairs += n;
            }
        }
        inner.rounds.push(RoundRecord {
            fired: ctx.fired(),
            at: now,
            core,
            area: request.area_id,
            tampered: outcome.is_tampered(),
        });
        // Self activation: take the next wake time from the secure queue and
        // arm this core's own timer.
        let policy = *inner.policy.as_ref().expect("SATIN booted");
        let queue = inner
            .queue
            .as_mut()
            .expect("SATIN booted")
            .write(World::Secure)
            .expect("secure world access");
        let next = queue.extract(now, &policy, ctx.rng());
        drop(inner);
        ctx.arm_self(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_system::SystemBuilder;

    #[test]
    fn paper_profile_equals_paper_config() {
        // The juno-r1 defense profile is the source of truth for the paper
        // defaults; drifting apart would silently change every campaign.
        let from_profile = SatinConfig::from_profile(&satin_scenario::Scenario::paper().defense);
        assert_eq!(from_profile, SatinConfig::paper());
    }

    #[test]
    fn profile_policies_map_through() {
        use satin_scenario::{AreaPolicySpec, CorePolicySpec};
        let mut profile = satin_scenario::Scenario::paper().defense;
        profile.core_policy = CorePolicySpec::Fixed(2);
        profile.area_policy = AreaPolicySpec::Greedy(500_000);
        let cfg = SatinConfig::from_profile(&profile);
        assert_eq!(cfg.core_policy, CorePolicy::Fixed(CoreId::new(2)));
        assert_eq!(cfg.area_policy, AreaPolicy::Greedy { max_size: 500_000 });
    }

    #[test]
    fn validates_paper_config() {
        let layout = KernelLayout::paper();
        let timing = TimingModel::paper_calibrated();
        SatinConfig::paper().validate(&layout, &timing).unwrap();
        // The monolithic ablation must fail the safety check.
        let mut bad = SatinConfig::paper();
        bad.area_policy = AreaPolicy::Monolithic;
        assert!(matches!(
            bad.validate(&layout, &timing),
            Err(PlanError::AreaTooLarge { .. })
        ));
        // …unless safety enforcement is disabled (for ablation runs).
        bad.enforce_safety = false;
        bad.validate(&layout, &timing).unwrap();
    }

    #[test]
    fn boots_and_runs_rounds() {
        // Short Tgoal so a few rounds fit in a short test run.
        let mut config = SatinConfig::paper();
        config.tgoal = SimDuration::from_millis(1900); // tp = 100 ms
        let mut sys = SystemBuilder::new().seed(31).trace(false).build();
        let (satin, handle) = Satin::new(config);
        sys.install_secure_service(satin);
        sys.run_until(SimTime::from_secs(2));
        let rounds = handle.round_count();
        // ≈ 2s / 100ms = 20 rounds expected.
        assert!((10..=35).contains(&rounds), "rounds = {rounds}");
        // No tampering: no alarms.
        assert!(handle.alarms().is_empty());
        assert!(handle.rounds().iter().all(|r| !r.tampered));
        assert_eq!(handle.num_areas(), 19);
    }

    #[test]
    fn rounds_rotate_cores_and_areas() {
        let mut config = SatinConfig::paper();
        config.tgoal = SimDuration::from_millis(950); // tp = 50 ms
        let mut sys = SystemBuilder::new().seed(33).trace(false).build();
        let (satin, handle) = Satin::new(config);
        sys.install_secure_service(satin);
        sys.run_until(SimTime::from_secs(4));
        let rounds = handle.rounds();
        assert!(rounds.len() >= 19, "{} rounds", rounds.len());
        // Multiple distinct cores participate.
        let mut cores: Vec<usize> = rounds.iter().map(|r| r.core.index()).collect();
        cores.sort_unstable();
        cores.dedup();
        assert!(cores.len() >= 3, "only cores {cores:?} participated");
        // The first 19 rounds cover all 19 areas exactly once (epoch).
        let mut first: Vec<usize> = rounds.iter().take(19).map(|r| r.area).collect();
        first.sort_unstable();
        assert_eq!(first, (0..19).collect::<Vec<_>>());
    }

    #[test]
    fn fixed_core_policy_stays_on_one_core() {
        let mut config = SatinConfig::paper();
        config.tgoal = SimDuration::from_millis(950);
        config.core_policy = CorePolicy::Fixed(CoreId::new(1));
        let mut sys = SystemBuilder::new().seed(35).trace(false).build();
        let (satin, handle) = Satin::new(satin_cfg(config));
        sys.install_secure_service(satin);
        sys.run_until(SimTime::from_secs(2));
        let rounds = handle.rounds();
        assert!(!rounds.is_empty());
        assert!(rounds.iter().all(|r| r.core == CoreId::new(1)));
    }

    fn satin_cfg(c: SatinConfig) -> SatinConfig {
        c
    }

    #[test]
    fn detects_boot_time_tampering_installed_later() {
        // A hijack installed after boot is caught on the next area-14 round.
        let mut config = SatinConfig::paper();
        config.tgoal = SimDuration::from_millis(1900);
        let mut sys = SystemBuilder::new().seed(37).trace(false).build();
        let (satin, handle) = Satin::new(config);
        sys.install_secure_service(satin);
        // Tamper directly (no evader: the write persists).
        let addr = sys
            .layout()
            .syscall_entry_addr(satin_mem::layout::GETTID_NR);
        let evil = satin_mem::image::hijacked_entry_bytes(sys.layout(), 2);
        sys.mem_mut().write_unchecked(addr, &evil).unwrap();
        sys.run_until(SimTime::from_secs(3));
        let alarms = handle.alarms();
        assert!(!alarms.is_empty(), "persistent hijack not detected");
        assert!(alarms
            .iter()
            .all(|a| a.area == satin_mem::PAPER_SYSCALL_AREA));
        assert!(handle.coverage(satin_mem::PAPER_SYSCALL_AREA).tampered >= 1);
    }
}

#[cfg(test)]
mod remediation_tests {
    use super::*;
    use satin_system::SystemBuilder;

    #[test]
    fn remediation_repairs_a_persistent_hijack() {
        let mut config = SatinConfig::paper();
        config.tgoal = SimDuration::from_millis(1900); // tp = 100 ms
        config.remediate = true;
        let mut sys = SystemBuilder::new().seed(55).trace(false).build();
        let (satin, handle) = Satin::new(config);
        sys.install_secure_service(satin);
        // A dumb persistent hijack (no evasion, never restored by the
        // attacker).
        let addr = sys
            .layout()
            .syscall_entry_addr(satin_mem::layout::GETTID_NR);
        let evil = satin_mem::image::hijacked_entry_bytes(sys.layout(), 4);
        sys.mem_mut().write_unchecked(addr, &evil).unwrap();
        sys.run_until(SimTime::from_secs(6));

        // The first area-14 round raised an alarm AND repaired the table…
        assert!(!handle.alarms().is_empty());
        assert!(handle.repairs() >= 1, "no repair happened");
        assert!(sys.stats().secure_repairs >= 1);
        let ptr = sys.mem().read_u64(addr).unwrap();
        assert_eq!(
            Some(ptr),
            sys.stats().genuine_syscall(satin_mem::layout::GETTID_NR),
            "table not restored"
        );
        // …and subsequent area-14 rounds are clean (exactly one alarm).
        assert_eq!(
            handle.alarms().len(),
            1,
            "repair should stop repeated alarms for a non-reinstalling attack"
        );
    }

    #[test]
    fn report_only_mode_keeps_alarming() {
        let mut config = SatinConfig::paper();
        config.tgoal = SimDuration::from_millis(1900);
        config.remediate = false; // the paper's SATIN
        let mut sys = SystemBuilder::new().seed(55).trace(false).build();
        let (satin, handle) = Satin::new(config);
        sys.install_secure_service(satin);
        let addr = sys
            .layout()
            .syscall_entry_addr(satin_mem::layout::GETTID_NR);
        let evil = satin_mem::image::hijacked_entry_bytes(sys.layout(), 4);
        sys.mem_mut().write_unchecked(addr, &evil).unwrap();
        sys.run_until(SimTime::from_secs(6));
        assert!(
            handle.alarms().len() >= 2,
            "persistent hijack alarms repeat"
        );
        assert_eq!(handle.repairs(), 0);
        // The hijack is still in place: report-only.
        let ptr = sys.mem().read_u64(addr).unwrap();
        assert_ne!(
            Some(ptr),
            sys.stats().genuine_syscall(satin_mem::layout::GETTID_NR)
        );
    }
}
