//! The Integrity Checking Module (§V-B): per-round hash verification,
//! alarms, and coverage accounting.

use crate::areas::AreaPlan;
use satin_hash::{hash_bytes, AuthorizedHashTable, HashAlgorithm, VerifyOutcome};
use satin_hw::{CoreId, World};
use satin_mem::{MemError, PhysMemory};
use satin_secure::SecureStorage;
use satin_sim::SimTime;

/// One raised alarm: an area whose observed digest did not match the
/// authorized value. "If the integrity checking module finds any abnormal
/// small area, it can raise an alarm to the server side or the device user."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alarm {
    /// When the mismatch was found.
    pub at: SimTime,
    /// The core that performed the round.
    pub core: CoreId,
    /// The tampered area.
    pub area: usize,
    /// Authorized digest.
    pub expected: u64,
    /// Observed digest.
    pub observed: u64,
}

/// Per-area coverage record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AreaCoverage {
    /// Times this area has been checked.
    pub checks: u64,
    /// Last check instant.
    pub last_checked: Option<SimTime>,
    /// Times this area was found tampered.
    pub tampered: u64,
}

/// The integrity checking module.
#[derive(Debug)]
pub struct IntegrityChecker {
    algorithm: HashAlgorithm,
    table: SecureStorage<AuthorizedHashTable>,
    coverage: Vec<AreaCoverage>,
    alarms: Vec<Alarm>,
    rounds: u64,
    /// Sum over areas of inter-check gaps, for mean-gap reporting.
    gap_sums: Vec<f64>,
    gap_counts: Vec<u64>,
}

impl IntegrityChecker {
    /// Boot-time measurement: hashes every area of the pristine `mem` into
    /// the authorized table.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] if the plan lies outside memory.
    pub fn measure_at_boot(
        mem: &PhysMemory,
        plan: &AreaPlan,
        algorithm: HashAlgorithm,
    ) -> Result<Self, MemError> {
        let ranges: Vec<_> = plan.areas().iter().map(|a| a.range).collect();
        let table = satin_secure::measurement::measure_at_boot(mem, &ranges, algorithm)?;
        Ok(IntegrityChecker {
            algorithm,
            table,
            coverage: vec![AreaCoverage::default(); plan.len()],
            alarms: Vec::new(),
            rounds: 0,
            gap_sums: vec![0.0; plan.len()],
            gap_counts: vec![0; plan.len()],
        })
    }

    /// The hash algorithm in use.
    pub fn algorithm(&self) -> HashAlgorithm {
        self.algorithm
    }

    /// Verifies the observed bytes of one round against the authorized
    /// digest, recording coverage and raising an alarm on mismatch.
    ///
    /// Returns the verification outcome.
    ///
    /// # Panics
    ///
    /// Panics if `area` was never enrolled (a plan/checker mismatch).
    pub fn check_round(
        &mut self,
        at: SimTime,
        core: CoreId,
        area: usize,
        observed_bytes: &[u8],
    ) -> VerifyOutcome {
        // Enum-dispatched, slice-batched digest (no boxed hasher per round).
        let digest = hash_bytes(self.algorithm, observed_bytes);
        let outcome = self
            .table
            .read(World::Secure)
            .expect("checker runs in the secure world")
            .verify(area, digest);
        assert!(
            !matches!(outcome, VerifyOutcome::Unknown),
            "area {area} not enrolled"
        );
        self.rounds += 1;
        let cov = &mut self.coverage[area];
        if let Some(prev) = cov.last_checked {
            self.gap_sums[area] += at.since(prev).as_secs_f64();
            self.gap_counts[area] += 1;
        }
        cov.checks += 1;
        cov.last_checked = Some(at);
        if let VerifyOutcome::Tampered { expected, observed } = outcome {
            cov.tampered += 1;
            self.alarms.push(Alarm {
                at,
                core,
                area,
                expected,
                observed,
            });
        }
        outcome
    }

    /// All raised alarms.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Coverage record of `area`.
    ///
    /// # Panics
    ///
    /// Panics if `area` is out of range.
    pub fn coverage(&self, area: usize) -> AreaCoverage {
        self.coverage[area]
    }

    /// Total rounds performed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of complete kernel sweeps (the minimum per-area check count).
    pub fn full_sweeps(&self) -> u64 {
        self.coverage.iter().map(|c| c.checks).min().unwrap_or(0)
    }

    /// Mean gap between consecutive checks of `area`, seconds
    /// (§VI-B1 reports ≈141 s for area 14 at tp = 8 s).
    pub fn mean_check_gap_secs(&self, area: usize) -> Option<f64> {
        let n = self.gap_counts[area];
        (n > 0).then(|| self.gap_sums[area] / n as f64)
    }

    /// The authorized table (secure world only).
    pub fn table(&self) -> &SecureStorage<AuthorizedHashTable> {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_mem::KernelLayout;

    fn setup() -> (KernelLayout, PhysMemory, AreaPlan, IntegrityChecker) {
        let layout = KernelLayout::paper();
        let mem = PhysMemory::with_image(&layout, 8);
        let plan = AreaPlan::from_segments(&layout);
        let checker = IntegrityChecker::measure_at_boot(&mem, &plan, HashAlgorithm::Djb2).unwrap();
        (layout, mem, plan, checker)
    }

    #[test]
    fn clean_round() {
        let (_, mem, plan, mut checker) = setup();
        let a = plan.area(2);
        let bytes = mem.read(a.range).unwrap();
        let out = checker.check_round(SimTime::from_secs(8), CoreId::new(1), 2, bytes);
        assert_eq!(out, VerifyOutcome::Clean);
        assert_eq!(checker.rounds(), 1);
        assert_eq!(checker.coverage(2).checks, 1);
        assert!(checker.alarms().is_empty());
    }

    #[test]
    fn tampered_round_raises_alarm() {
        let (layout, mut mem, plan, mut checker) = setup();
        let addr = layout.syscall_entry_addr(satin_mem::layout::GETTID_NR);
        let evil = satin_mem::image::hijacked_entry_bytes(&layout, 3);
        mem.write_unchecked(addr, &evil).unwrap();
        let area = satin_mem::PAPER_SYSCALL_AREA;
        let bytes = mem.read(plan.area(area).range).unwrap();
        let out = checker.check_round(SimTime::from_secs(16), CoreId::new(0), area, bytes);
        assert!(out.is_tampered());
        assert_eq!(checker.alarms().len(), 1);
        let alarm = checker.alarms()[0];
        assert_eq!(alarm.area, area);
        assert_eq!(alarm.core, CoreId::new(0));
        assert_eq!(checker.coverage(area).tampered, 1);
    }

    #[test]
    fn mean_gap_tracks_checks() {
        let (_, mem, plan, mut checker) = setup();
        let bytes = mem.read(plan.area(5).range).unwrap().to_vec();
        for secs in [10u64, 160, 290] {
            checker.check_round(SimTime::from_secs(secs), CoreId::new(0), 5, &bytes);
        }
        // Gaps: 150s and 130s → mean 140s.
        let gap = checker.mean_check_gap_secs(5).unwrap();
        assert!((gap - 140.0).abs() < 1e-9, "gap {gap}");
        assert_eq!(checker.mean_check_gap_secs(6), None);
    }

    #[test]
    fn full_sweeps_counts_minimum() {
        let (_, mem, plan, mut checker) = setup();
        assert_eq!(checker.full_sweeps(), 0);
        for round in 0..2 {
            for a in 0..plan.len() {
                let bytes = mem.read(plan.area(a).range).unwrap().to_vec();
                checker.check_round(
                    SimTime::from_secs((round * 19 + a as u64) + 1),
                    CoreId::new(0),
                    a,
                    &bytes,
                );
            }
        }
        assert_eq!(checker.full_sweeps(), 2);
        assert_eq!(checker.rounds(), 38);
    }

    #[test]
    #[should_panic(expected = "not enrolled")]
    fn unknown_area_panics() {
        let (_, mem, plan, mut checker) = setup();
        let bytes = mem.read(plan.area(0).range).unwrap().to_vec();
        checker.check_round(SimTime::ZERO, CoreId::new(0), 99, &bytes);
    }

    #[test]
    fn table_not_readable_from_normal_world() {
        let (_, _, _, checker) = setup();
        assert!(checker.table().read(World::Normal).is_err());
    }
}
