//! The Wake-Up Time Queue: multi-core collaboration (§V-D).
//!
//! ARMv8-A gives no way for one core to program another core's secure timer,
//! and notifying cores with cross-core secure interrupts would leak the
//! wake-up sequence through the very side channel TZ-Evader probes. SATIN
//! instead coordinates through secure memory: a queue of `n` future wake
//! times; every core entering the self activation module extracts a randomly
//! assigned slot and arms *its own* timer with it; when the last slot is
//! extracted, the queue refreshes with `n` new times.
//!
//! The queue lives in [`satin_secure::SecureStorage`], so a normal-world read
//! is a type-level impossibility — the attacker can never learn which core
//! wakes next, or when.

use crate::activation::WakePolicy;
use satin_sim::{SimDuration, SimRng, SimTime};

/// The wake-up time queue (store it inside `SecureStorage`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WakeQueue {
    slots: Vec<SimTime>,
    /// The last generated wake instant; new batches continue from here so
    /// the average inter-round spacing stays `tp` across refreshes.
    horizon: SimTime,
    num_cores: usize,
    refreshes: u64,
}

impl WakeQueue {
    /// Builds the initial queue during trusted boot: `num_cores` cumulative
    /// wake times starting from `now`.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores == 0`.
    pub fn new(now: SimTime, num_cores: usize, policy: &WakePolicy, rng: &mut SimRng) -> Self {
        assert!(num_cores > 0, "queue needs at least one core");
        let mut q = WakeQueue {
            slots: Vec::with_capacity(num_cores),
            horizon: now,
            num_cores,
            refreshes: 0,
        };
        q.refill(policy, rng);
        q
    }

    /// Extracts a randomly assigned slot for the calling core, refreshing
    /// the queue first if all slots were taken. The returned time is clamped
    /// to be strictly after `now` (a core that overslept a slot fires as
    /// soon as possible).
    pub fn extract(&mut self, now: SimTime, policy: &WakePolicy, rng: &mut SimRng) -> SimTime {
        if self.slots.is_empty() {
            // Refill from the previous horizon (not from `now`): this keeps
            // a non-randomized policy exactly on its tp grid, with per-slot
            // clamping below handling any genuinely overdue slots.
            self.refill(policy, rng);
            self.refreshes += 1;
        }
        let idx = rng.pick_index(&self.slots);
        let t = self.slots.swap_remove(idx);
        let min = now + SimDuration::from_micros(1);
        t.max_of(min)
    }

    /// Slots not yet extracted.
    pub fn remaining(&self) -> usize {
        self.slots.len()
    }

    /// Number of refreshes performed after boot.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    fn refill(&mut self, policy: &WakePolicy, rng: &mut SimRng) {
        let mut t = self.horizon;
        for _ in 0..self.num_cores {
            t += policy.next_interval(rng);
            self.slots.push(t);
        }
        self.horizon = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn policy() -> WakePolicy {
        WakePolicy {
            tp: SimDuration::from_secs(8),
            randomize: true,
        }
    }

    #[test]
    fn initial_queue_has_one_slot_per_core() {
        let mut rng = SimRng::seed_from(1);
        let q = WakeQueue::new(SimTime::ZERO, 6, &policy(), &mut rng);
        assert_eq!(q.remaining(), 6);
        assert_eq!(q.refreshes(), 0);
    }

    #[test]
    fn extraction_drains_then_refreshes() {
        let mut rng = SimRng::seed_from(2);
        let p = policy();
        let mut q = WakeQueue::new(SimTime::ZERO, 4, &p, &mut rng);
        for _ in 0..4 {
            let _ = q.extract(SimTime::ZERO, &p, &mut rng);
        }
        assert_eq!(q.remaining(), 0);
        let _ = q.extract(SimTime::from_secs(1), &p, &mut rng);
        assert_eq!(q.refreshes(), 1);
        assert_eq!(q.remaining(), 3);
    }

    #[test]
    fn extracted_times_always_in_future() {
        let mut rng = SimRng::seed_from(3);
        let p = policy();
        let mut q = WakeQueue::new(SimTime::ZERO, 6, &p, &mut rng);
        // Even if "now" is far past every slot, extraction clamps forward.
        let late = SimTime::from_secs(10_000);
        for _ in 0..12 {
            let t = q.extract(late, &p, &mut rng);
            assert!(t > late);
        }
    }

    #[test]
    fn average_spacing_is_tp() {
        let mut rng = SimRng::seed_from(4);
        let p = policy();
        let mut q = WakeQueue::new(SimTime::ZERO, 6, &p, &mut rng);
        let mut times: Vec<SimTime> = Vec::new();
        for _ in 0..600 {
            times.push(q.extract(SimTime::ZERO, &p, &mut rng));
        }
        times.sort_unstable();
        let span = times.last().unwrap().since(times[0]).as_secs_f64();
        let avg = span / (times.len() - 1) as f64;
        assert!((6.5..9.5).contains(&avg), "avg spacing {avg}s, want ≈8s");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = policy();
        let run = |seed| {
            let mut rng = SimRng::seed_from(seed);
            let mut q = WakeQueue::new(SimTime::ZERO, 6, &p, &mut rng);
            (0..10)
                .map(|_| q.extract(SimTime::ZERO, &p, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    proptest! {
        /// Invariant 5 (DESIGN.md): each refresh hands out exactly one slot
        /// per core before refreshing again.
        #[test]
        fn prop_one_slot_per_core_per_refresh(cores in 1usize..12, seed: u64) {
            let p = policy();
            let mut rng = SimRng::seed_from(seed);
            let mut q = WakeQueue::new(SimTime::ZERO, cores, &p, &mut rng);
            for round in 0..3u64 {
                for _ in 0..cores {
                    let _ = q.extract(SimTime::ZERO, &p, &mut rng);
                }
                prop_assert_eq!(q.remaining(), 0);
                prop_assert_eq!(q.refreshes(), round);
            }
        }
    }
}
