//! Kernel area division and the runtime Kernel Area Set (§V-B).
//!
//! "To improve the detection rate, we propose to reduce the introspection
//! time for each round by dividing the entire OS kernel into smaller areas
//! and taking turns to check one area in each round. … the size of each
//! small area should be smaller than
//! `(Tns_delay + Tns_recover − Ts_switch) / Ts_1byte` bytes."

use crate::error::PlanError;
use satin_hw::TimingModel;
use satin_mem::{KernelLayout, MemRange};
use satin_sim::SimRng;

/// One introspection area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Area {
    /// Area id (index in the plan).
    pub id: usize,
    /// The byte range the area covers.
    pub range: MemRange,
}

/// The maximum safe area size (§V-B), in bytes: an area this small is always
/// fully scanned before the attacker can finish recovering, even at the
/// fastest probe and slowest scan the attacker can hope for.
///
/// # Example
///
/// ```
/// use satin_core::areas::max_safe_area_size;
/// use satin_hw::TimingModel;
/// // With the paper's constants this is the §IV-C bound of 1,218,351 bytes.
/// let bound = max_safe_area_size(&TimingModel::paper_calibrated(), 2e-4 + 1.8e-3);
/// assert!((1_218_000..=1_218_700).contains(&bound));
/// ```
pub fn max_safe_area_size(timing: &TimingModel, tns_delay_secs: f64) -> u64 {
    let margin = tns_delay_secs + timing.slowest_recover_secs() - timing.max_ts_switch_secs();
    if margin <= 0.0 {
        return 0;
    }
    (margin / timing.fastest_hash_rate().secs_per_byte()).floor() as u64
}

/// A static division of the kernel into areas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AreaPlan {
    areas: Vec<Area>,
}

impl AreaPlan {
    /// The paper's division: one area per `System.map` segment (§VI-A2's 19
    /// areas on the paper layout).
    pub fn from_segments(layout: &KernelLayout) -> Self {
        let areas = layout
            .segment_ranges()
            .into_iter()
            .enumerate()
            .map(|(id, range)| Area { id, range })
            .collect();
        AreaPlan { areas }
    }

    /// A single monolithic area covering the whole kernel — the naive
    /// baseline the paper's §IV-C analysis defeats. Useful for ablation.
    pub fn monolithic(layout: &KernelLayout) -> Self {
        AreaPlan {
            areas: vec![Area {
                id: 0,
                range: layout.range(),
            }],
        }
    }

    /// Greedy packing ablation: groups contiguous *sections* (never splitting
    /// one) into the fewest areas whose sizes stay at or below `max_size`.
    ///
    /// # Errors
    ///
    /// [`PlanError::AreaTooLarge`] if a single section already exceeds
    /// `max_size` (sections are indivisible by the paper's rule).
    pub fn greedy(layout: &KernelLayout, max_size: u64) -> Result<Self, PlanError> {
        let mut areas: Vec<Area> = Vec::new();
        let mut current: Option<MemRange> = None;
        for s in layout.sections() {
            let r = s.range();
            if r.len() > max_size {
                return Err(PlanError::AreaTooLarge {
                    area: areas.len(),
                    size: r.len(),
                    bound: max_size,
                });
            }
            current = match current {
                None => Some(r),
                Some(c) if c.len() + r.len() <= max_size => {
                    Some(MemRange::new(c.start(), c.len() + r.len()))
                }
                Some(c) => {
                    areas.push(Area {
                        id: areas.len(),
                        range: c,
                    });
                    Some(r)
                }
            };
        }
        if let Some(c) = current {
            areas.push(Area {
                id: areas.len(),
                range: c,
            });
        }
        Ok(AreaPlan { areas })
    }

    /// The areas, in address order.
    pub fn areas(&self) -> &[Area] {
        &self.areas
    }

    /// Number of areas (`m` in the paper).
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// `true` if the plan has no areas.
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }

    /// The area by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn area(&self, id: usize) -> Area {
        self.areas[id]
    }

    /// Total bytes covered.
    pub fn total_bytes(&self) -> u64 {
        self.areas.iter().map(|a| a.range.len()).sum()
    }

    /// The largest area size.
    pub fn largest(&self) -> u64 {
        self.areas.iter().map(|a| a.range.len()).max().unwrap_or(0)
    }

    /// The smallest area size.
    pub fn smallest(&self) -> u64 {
        self.areas.iter().map(|a| a.range.len()).min().unwrap_or(0)
    }

    /// The area containing `addr`, if any.
    pub fn area_of(&self, addr: satin_mem::PhysAddr) -> Option<usize> {
        self.areas
            .iter()
            .find(|a| a.range.contains(addr))
            .map(|a| a.id)
    }

    /// Validates every area against the safety bound.
    ///
    /// # Errors
    ///
    /// [`PlanError::EmptyPlan`] or [`PlanError::AreaTooLarge`].
    pub fn validate(&self, bound: u64) -> Result<(), PlanError> {
        if self.areas.is_empty() {
            return Err(PlanError::EmptyPlan);
        }
        for a in &self.areas {
            if a.range.len() > bound {
                return Err(PlanError::AreaTooLarge {
                    area: a.id,
                    size: a.range.len(),
                    bound,
                });
            }
        }
        Ok(())
    }
}

/// The runtime Kernel Area Set: random selection without replacement, with
/// refills (§V-B's pseudo-random method).
///
/// "the module randomly picks one area from the set and then applies
/// `set = set − area`. If the set is empty, SATIN resets it" — guaranteeing
/// every `m` rounds scan the whole kernel exactly once, in an order the
/// normal world cannot predict.
///
/// # Example
///
/// ```
/// use satin_core::KernelAreaSet;
/// use satin_sim::SimRng;
/// let mut set = KernelAreaSet::new(4);
/// let mut rng = SimRng::seed_from(1);
/// let mut first_epoch: Vec<usize> = (0..4).map(|_| set.pick(&mut rng)).collect();
/// first_epoch.sort_unstable();
/// assert_eq!(first_epoch, vec![0, 1, 2, 3]); // full coverage per epoch
/// assert_eq!(set.remaining(), 0);
/// let _ = set.pick(&mut rng);                // next pick refills lazily
/// assert_eq!(set.epoch(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelAreaSet {
    num_areas: usize,
    remaining: Vec<usize>,
    epoch: u64,
}

impl KernelAreaSet {
    /// A set over `num_areas` areas.
    ///
    /// # Panics
    ///
    /// Panics if `num_areas == 0`.
    pub fn new(num_areas: usize) -> Self {
        assert!(num_areas > 0, "area set needs at least one area");
        KernelAreaSet {
            num_areas,
            remaining: (0..num_areas).collect(),
            epoch: 0,
        }
    }

    /// Picks (and removes) a uniformly random remaining area; refills the
    /// set first if it is empty.
    pub fn pick(&mut self, rng: &mut SimRng) -> usize {
        if self.remaining.is_empty() {
            self.remaining = (0..self.num_areas).collect();
            self.epoch += 1;
        }
        let idx = rng.pick_index(&self.remaining);
        self.remaining.swap_remove(idx)
    }

    /// Areas not yet scanned in the current epoch.
    pub fn remaining(&self) -> usize {
        self.remaining.len()
    }

    /// Completed full-coverage epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use satin_mem::{PAPER_AREA_COUNT, PAPER_KERNEL_SIZE, PAPER_LARGEST_AREA, PAPER_SMALLEST_AREA};

    #[test]
    fn paper_plan_matches_section_6a2() {
        let plan = AreaPlan::from_segments(&KernelLayout::paper());
        assert_eq!(plan.len(), PAPER_AREA_COUNT);
        assert_eq!(plan.total_bytes(), PAPER_KERNEL_SIZE);
        assert_eq!(plan.largest(), PAPER_LARGEST_AREA);
        assert_eq!(plan.smallest(), PAPER_SMALLEST_AREA);
    }

    #[test]
    fn paper_plan_passes_safety_bound() {
        let plan = AreaPlan::from_segments(&KernelLayout::paper());
        let bound = max_safe_area_size(&TimingModel::paper_calibrated(), 2e-4 + 1.8e-3);
        plan.validate(bound).unwrap();
    }

    #[test]
    fn monolithic_plan_fails_safety_bound() {
        let plan = AreaPlan::monolithic(&KernelLayout::paper());
        let bound = max_safe_area_size(&TimingModel::paper_calibrated(), 2e-4 + 1.8e-3);
        let err = plan.validate(bound).unwrap_err();
        assert!(matches!(err, PlanError::AreaTooLarge { area: 0, .. }));
    }

    #[test]
    fn areas_are_disjoint_and_cover() {
        let layout = KernelLayout::paper();
        let plan = AreaPlan::from_segments(&layout);
        let mut cursor = layout.base();
        for a in plan.areas() {
            assert_eq!(a.range.start(), cursor, "gap before area {}", a.id);
            cursor = a.range.end();
        }
        assert_eq!(cursor, layout.range().end());
    }

    #[test]
    fn greedy_respects_bound_and_covers() {
        let layout = KernelLayout::paper();
        let bound = 1_218_351;
        let plan = AreaPlan::greedy(&layout, bound).unwrap();
        plan.validate(bound).unwrap();
        assert_eq!(plan.total_bytes(), PAPER_KERNEL_SIZE);
        // Greedy packs tighter than one-per-segment.
        assert!(plan.len() < PAPER_AREA_COUNT);
    }

    #[test]
    fn greedy_rejects_oversized_section() {
        let layout = KernelLayout::paper();
        // .text alone is 811,080 bytes.
        assert!(AreaPlan::greedy(&layout, 100_000).is_err());
    }

    #[test]
    fn area_of_addr() {
        let layout = KernelLayout::paper();
        let plan = AreaPlan::from_segments(&layout);
        let gettid = layout.syscall_entry_addr(satin_mem::layout::GETTID_NR);
        assert_eq!(plan.area_of(gettid), Some(satin_mem::PAPER_SYSCALL_AREA));
        assert_eq!(plan.area_of(layout.range().end()), None);
    }

    #[test]
    fn empty_validation() {
        let plan = AreaPlan { areas: vec![] };
        assert_eq!(plan.validate(100), Err(PlanError::EmptyPlan));
        assert!(plan.is_empty());
    }

    #[test]
    fn bound_degenerate() {
        let mut t = TimingModel::paper_calibrated();
        // A pathological platform where switching costs more than the whole
        // evasion latency: nothing is safe.
        t.ts_switch = satin_sim::dist::UniformSecs::new(0.9, 1.0);
        assert_eq!(max_safe_area_size(&t, 1e-3), 0);
    }

    proptest! {
        /// Invariant 4 (DESIGN.md): every epoch scans every area exactly once.
        #[test]
        fn prop_epoch_coverage(num_areas in 1usize..40, seed: u64, epochs in 1usize..4) {
            let mut set = KernelAreaSet::new(num_areas);
            let mut rng = SimRng::seed_from(seed);
            for _ in 0..epochs {
                let mut seen: Vec<usize> = (0..num_areas).map(|_| set.pick(&mut rng)).collect();
                seen.sort_unstable();
                prop_assert_eq!(seen, (0..num_areas).collect::<Vec<_>>());
            }
            // Refills are lazy: after draining `epochs` full rounds the set
            // has performed `epochs - 1` refills and sits empty.
            prop_assert_eq!(set.epoch(), epochs as u64 - 1);
            prop_assert_eq!(set.remaining(), 0);
        }

        /// Greedy plans always cover the kernel exactly, whatever the bound.
        #[test]
        fn prop_greedy_covers(bound in 880_000u64..5_000_000) {
            let layout = KernelLayout::paper();
            let plan = AreaPlan::greedy(&layout, bound).unwrap();
            prop_assert_eq!(plan.total_bytes(), PAPER_KERNEL_SIZE);
            prop_assert!(plan.largest() <= bound);
            let mut cursor = layout.base();
            for a in plan.areas() {
                prop_assert_eq!(a.range.start(), cursor);
                cursor = a.range.end();
            }
        }
    }
}
