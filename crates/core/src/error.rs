//! SATIN configuration errors.

use std::error::Error;
use std::fmt;

/// Errors raised while validating a SATIN configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// An introspection area exceeds the safety bound of §V-B, re-opening
    /// the evasion window within that area.
    AreaTooLarge {
        /// The offending area id.
        area: usize,
        /// Its size in bytes.
        size: u64,
        /// The maximum safe size.
        bound: u64,
    },
    /// The plan has no areas.
    EmptyPlan,
    /// `Tgoal` is too small to cover all areas even back-to-back.
    InfeasibleGoal {
        /// Requested coverage period in seconds.
        tgoal_secs: f64,
        /// Number of areas that must fit into it.
        areas: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::AreaTooLarge { area, size, bound } => write!(
                f,
                "area {area} is {size} bytes, above the safe bound of {bound} bytes"
            ),
            PlanError::EmptyPlan => write!(f, "area plan has no areas"),
            PlanError::InfeasibleGoal { tgoal_secs, areas } => {
                write!(f, "coverage goal of {tgoal_secs}s cannot fit {areas} areas")
            }
        }
    }
}

impl Error for PlanError {}

impl From<PlanError> for satin_system::SatinError {
    fn from(e: PlanError) -> Self {
        satin_system::SatinError::Boot {
            stage: "area plan",
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = PlanError::AreaTooLarge {
            area: 3,
            size: 2_000_000,
            bound: 1_218_351,
        };
        assert!(e.to_string().contains("1218351"));
        assert!(PlanError::EmptyPlan.to_string().contains("no areas"));
    }
}
