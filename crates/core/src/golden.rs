//! Golden copies of invariant kernel sections, for alarm remediation.
//!
//! The paper's SATIN stops at raising an alarm (§V-B); deployed systems in
//! the same family (Samsung's RKP) go further and *repair* the violated
//! state from the secure world. This module adds that extension: at trusted
//! boot the secure world keeps byte-exact copies of the kernel's invariant
//! sections (text, read-only data, vector table, syscall table — the same
//! set the synchronous layer protects); on an alarm, SATIN writes the golden
//! bytes back over the tampered area. Mutable sections are never repaired
//! (overwriting live kernel data would crash the rich OS), so an alarm on a
//! purely mutable area remains report-only.
//!
//! Cost: the golden copies occupy secure memory — about 3.5 MB for the
//! paper's layout — which is the classic remediation trade-off.

use satin_hw::World;
use satin_mem::{KernelLayout, MemError, MemRange, PhysMemory, SectionKind};
use satin_secure::SecureStorage;

/// A boot-time golden copy of the invariant sections.
#[derive(Debug)]
pub struct GoldenStore {
    sections: SecureStorage<Vec<(MemRange, Vec<u8>)>>,
    total_bytes: u64,
}

impl GoldenStore {
    /// Captures golden copies of `layout`'s invariant sections from the
    /// pristine boot-time memory.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] if the layout lies outside memory.
    pub fn capture_at_boot(layout: &KernelLayout, mem: &PhysMemory) -> Result<Self, MemError> {
        let mut sections = Vec::new();
        let mut total = 0u64;
        for s in layout.sections() {
            let invariant = matches!(
                s.kind(),
                SectionKind::Text
                    | SectionKind::RoData
                    | SectionKind::VectorTable
                    | SectionKind::SyscallTable
            );
            if invariant {
                let bytes = mem.read(s.range())?.to_vec();
                total += s.range().len();
                sections.push((s.range(), bytes));
            }
        }
        Ok(GoldenStore {
            sections: SecureStorage::new("golden section store", sections),
            total_bytes: total,
        })
    }

    /// Secure-memory footprint of the store, bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The golden `(range, bytes)` pairs overlapping `area` — what a repair
    /// of that area should write back. Secure world only.
    ///
    /// The returned slices are clipped to the intersection with `area`.
    pub fn repairs_for(&self, area: MemRange) -> Vec<(MemRange, Vec<u8>)> {
        let sections = self
            .sections
            .read(World::Secure)
            .expect("golden store is accessed from the secure world");
        let mut out = Vec::new();
        for (range, bytes) in sections.iter() {
            if let Some(hit) = range.intersection(&area) {
                let off = hit.start().offset_from(range.start()) as usize;
                let len = hit.len() as usize;
                out.push((hit, bytes[off..off + len].to_vec()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_mem::layout::GETTID_NR;

    fn setup() -> (KernelLayout, PhysMemory, GoldenStore) {
        let layout = KernelLayout::paper();
        let mem = PhysMemory::with_image(&layout, 6);
        let store = GoldenStore::capture_at_boot(&layout, &mem).unwrap();
        (layout, mem, store)
    }

    #[test]
    fn captures_invariant_sections_only() {
        let (layout, _, store) = setup();
        // Invariant bytes: all text + rodata + vectors + syscall table.
        let expected: u64 = layout
            .sections()
            .iter()
            .filter(|s| {
                matches!(
                    s.kind(),
                    SectionKind::Text
                        | SectionKind::RoData
                        | SectionKind::VectorTable
                        | SectionKind::SyscallTable
                )
            })
            .map(|s| s.range().len())
            .sum();
        assert_eq!(store.total_bytes(), expected);
        assert!(expected > 3_000_000, "footprint {expected}");
    }

    #[test]
    fn repairs_cover_the_syscall_table_area() {
        let (layout, mem, store) = setup();
        let area = layout.segment_range(satin_mem::PAPER_SYSCALL_AREA);
        let repairs = store.repairs_for(area);
        // Area 14 = mutable .data.part5 + the syscall table: exactly the
        // table is repairable.
        assert_eq!(repairs.len(), 1);
        let (range, bytes) = &repairs[0];
        assert_eq!(*range, layout.syscall_table().range());
        assert_eq!(bytes.as_slice(), mem.read(*range).unwrap());
    }

    #[test]
    fn repairs_clip_to_the_area() {
        let (layout, _, store) = setup();
        // Half of the vector table only.
        let v = layout.vector_table().unwrap().range();
        let half = MemRange::new(v.start(), v.len() / 2);
        let repairs = store.repairs_for(half);
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].0, half);
        assert_eq!(repairs[0].1.len() as u64, v.len() / 2);
    }

    #[test]
    fn mutable_area_has_no_repairs() {
        let (layout, _, store) = setup();
        // Segment 16 is pure .bss.
        let area = layout.segment_range(16);
        assert!(store.repairs_for(area).is_empty());
    }

    #[test]
    fn golden_bytes_restore_a_hijack() {
        let (layout, mut mem, store) = setup();
        let addr = layout.syscall_entry_addr(GETTID_NR);
        let genuine = mem.read(MemRange::new(addr, 8)).unwrap().to_vec();
        let evil = satin_mem::image::hijacked_entry_bytes(&layout, 2);
        mem.write_unchecked(addr, &evil).unwrap();
        for (range, bytes) in store.repairs_for(layout.segment_range(satin_mem::PAPER_SYSCALL_AREA))
        {
            mem.write_unchecked(range.start(), &bytes).unwrap();
        }
        assert_eq!(mem.read(MemRange::new(addr, 8)).unwrap(), &genuine[..]);
    }
}
