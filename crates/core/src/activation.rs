//! Self-activation wake-time policy (§V-C).
//!
//! "The self activation module decides the next awake time by a base period
//! `tp` (e.g. 8s) plus a random deviation `td` (a random time from `−tp` to
//! `tp`). … the interval between two consecutive rounds of introspection is
//! among `[0, 2·tp]`, which means at any moment the introspection could
//! start." `tp = Tgoal / m` where `Tgoal` is the full-coverage period.

use satin_sim::{SimDuration, SimRng};

/// Wake-interval policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakePolicy {
    /// Base period `tp`.
    pub tp: SimDuration,
    /// Apply the random deviation `td ∈ [−tp, tp]`? Disabling this is the
    /// predictable-schedule ablation that evasion attacks exploit.
    pub randomize: bool,
}

impl WakePolicy {
    /// Derives `tp = Tgoal / m` for `m` areas (§V-C).
    ///
    /// # Panics
    ///
    /// Panics if `areas == 0` or the resulting `tp` is zero.
    pub fn from_goal(tgoal: SimDuration, areas: usize, randomize: bool) -> Self {
        assert!(areas > 0, "no areas");
        let tp = tgoal / areas as u64;
        assert!(!tp.is_zero(), "Tgoal too small for {areas} areas");
        WakePolicy { tp, randomize }
    }

    /// The paper's experiment policy: tp = 8 s, randomized.
    pub fn paper() -> Self {
        WakePolicy {
            tp: SimDuration::from_secs(8),
            randomize: true,
        }
    }

    /// Draws the next inter-round interval: uniform in `[0, 2·tp]` when
    /// randomized, exactly `tp` otherwise.
    pub fn next_interval(&self, rng: &mut SimRng) -> SimDuration {
        if self.randomize {
            SimDuration::from_nanos(rng.int_range_inclusive(0, 2 * self.tp.as_nanos()))
        } else {
            self.tp
        }
    }

    /// Expected coverage time for `m` areas (`m · tp` plus scan time,
    /// §VI-B1's "approximately 152 s" for m = 19, tp = 8 s).
    pub fn expected_coverage(&self, areas: usize) -> SimDuration {
        self.tp * areas as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_policy_coverage_is_152s() {
        let p = WakePolicy::paper();
        assert_eq!(p.expected_coverage(19), SimDuration::from_secs(152));
    }

    #[test]
    fn from_goal_divides() {
        let p = WakePolicy::from_goal(SimDuration::from_secs(152), 19, true);
        assert_eq!(p.tp, SimDuration::from_secs(8));
    }

    #[test]
    fn fixed_policy_is_constant() {
        let p = WakePolicy {
            tp: SimDuration::from_secs(8),
            randomize: false,
        };
        let mut rng = SimRng::seed_from(0);
        for _ in 0..10 {
            assert_eq!(p.next_interval(&mut rng), SimDuration::from_secs(8));
        }
    }

    #[test]
    fn randomized_mean_is_tp() {
        let p = WakePolicy::paper();
        let mut rng = SimRng::seed_from(9);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| p.next_interval(&mut rng).as_nanos()).sum();
        let mean = sum as f64 / n as f64;
        let tp = p.tp.as_nanos() as f64;
        assert!((mean - tp).abs() < 0.02 * tp, "mean {mean} vs tp {tp}");
    }

    proptest! {
        /// Intervals always lie in [0, 2·tp].
        #[test]
        fn prop_interval_bounds(tp_ms in 1u64..20_000, seed: u64) {
            let p = WakePolicy {
                tp: SimDuration::from_millis(tp_ms),
                randomize: true,
            };
            let mut rng = SimRng::seed_from(seed);
            let d = p.next_interval(&mut rng);
            prop_assert!(d <= p.tp * 2);
        }
    }
}
