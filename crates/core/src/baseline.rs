//! Baseline introspection services the paper compares against.
//!
//! The pre-SATIN state of the art (§I, §IV-C): asynchronous introspection
//! that wakes periodically — possibly at random times, possibly on a random
//! core — but scans the kernel as **one monolithic pass**. §IV-C shows
//! TZ-Evader defeats all of these because ≈90% of the kernel is scanned
//! more than `Tns_delay + Tns_recover` after the world switch.

use crate::activation::WakePolicy;
use crate::areas::AreaPlan;
use crate::integrity::{Alarm, IntegrityChecker};
use satin_hash::HashAlgorithm;
use satin_hw::timing::ScanStrategy;
use satin_hw::CoreId;
use satin_sim::{SimDuration, SimTime};
use satin_system::{BootCtx, SatinError, ScanRequest, SecureCtx, SecureService};
use std::cell::RefCell;
use std::rc::Rc;

/// Baseline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineConfig {
    /// Mean period between full-kernel scans.
    pub period: SimDuration,
    /// Randomize the period (`± period`, like SATIN's deviation)?
    pub randomize_wake: bool,
    /// Rotate among all cores randomly (vs always core 0)?
    pub randomize_core: bool,
    /// Scan strategy.
    pub strategy: ScanStrategy,
}

impl BaselineConfig {
    /// A Samsung-PKM-like periodic checker: fixed period, fixed core.
    pub fn periodic_fixed(period: SimDuration) -> Self {
        BaselineConfig {
            period,
            randomize_wake: false,
            randomize_core: false,
            strategy: ScanStrategy::DirectHash,
        }
    }

    /// The strongest pre-SATIN defense: random time *and* random core, but
    /// still a monolithic scan (defeated in §IV-C).
    pub fn randomized(period: SimDuration) -> Self {
        BaselineConfig {
            period,
            randomize_wake: true,
            randomize_core: true,
            strategy: ScanStrategy::DirectHash,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    checker: Option<IntegrityChecker>,
    rounds: u64,
    tampered_rounds: u64,
}

/// Inspection handle for a deployed baseline.
#[derive(Debug, Clone, Default)]
pub struct BaselineHandle {
    inner: Rc<RefCell<Inner>>,
}

impl BaselineHandle {
    /// Completed full-kernel rounds.
    pub fn rounds(&self) -> u64 {
        self.inner.borrow().rounds
    }

    /// Rounds that observed tampering.
    pub fn tampered_rounds(&self) -> u64 {
        self.inner.borrow().tampered_rounds
    }

    /// All alarms.
    pub fn alarms(&self) -> Vec<Alarm> {
        self.inner
            .borrow()
            .checker
            .as_ref()
            .map(|c| c.alarms().to_vec())
            .unwrap_or_default()
    }
}

/// The monolithic-scan baseline service.
#[derive(Debug)]
pub struct NaiveIntrospection {
    config: BaselineConfig,
    inner: Rc<RefCell<Inner>>,
    num_cores: usize,
    plan: Option<AreaPlan>,
}

impl NaiveIntrospection {
    /// Creates the service and its handle.
    pub fn new(config: BaselineConfig) -> (NaiveIntrospection, BaselineHandle) {
        let inner = Rc::new(RefCell::new(Inner::default()));
        (
            NaiveIntrospection {
                config,
                inner: inner.clone(),
                num_cores: 0,
                plan: None,
            },
            BaselineHandle { inner },
        )
    }

    fn wake_policy(&self) -> WakePolicy {
        WakePolicy {
            tp: self.config.period,
            randomize: self.config.randomize_wake,
        }
    }

    fn pick_core(&self, ctx: &mut SecureCtx<'_>) -> CoreId {
        if self.config.randomize_core {
            CoreId::new(ctx.rng().below(self.num_cores as u64) as usize)
        } else {
            CoreId::new(0)
        }
    }
}

impl SecureService for NaiveIntrospection {
    fn on_boot(&mut self, ctx: &mut BootCtx<'_>) -> Result<(), SatinError> {
        let plan = AreaPlan::monolithic(ctx.layout());
        let checker = IntegrityChecker::measure_at_boot(ctx.mem(), &plan, HashAlgorithm::Djb2)?;
        self.num_cores = ctx.num_cores();
        self.inner.borrow_mut().checker = Some(checker);
        let policy = self.wake_policy();
        let first = SimTime::ZERO + policy.next_interval(ctx.rng());
        let core = if self.config.randomize_core {
            CoreId::new(ctx.rng().below(self.num_cores as u64) as usize)
        } else {
            CoreId::new(0)
        };
        let first = first.max_of(SimTime::from_micros(1));
        ctx.arm_core(core, first)?;
        self.plan = Some(plan);
        Ok(())
    }

    fn on_secure_timer(&mut self, _core: CoreId, _ctx: &mut SecureCtx<'_>) -> Option<ScanRequest> {
        let plan = self.plan.as_ref().expect("booted");
        Some(ScanRequest {
            area_id: 0,
            range: plan.area(0).range,
            strategy: self.config.strategy,
        })
    }

    fn on_scan_result(
        &mut self,
        core: CoreId,
        request: &ScanRequest,
        observed: &[u8],
        ctx: &mut SecureCtx<'_>,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            let outcome = inner.checker.as_mut().expect("booted").check_round(
                ctx.now(),
                core,
                request.area_id,
                observed,
            );
            inner.rounds += 1;
            if outcome.is_tampered() {
                inner.tampered_rounds += 1;
            }
        }
        // Baselines cannot hand off to another core mid-flight (that would
        // need the leaky cross-core interrupt, §V-D), so on a multi-core
        // rotation the *next* round's core is only honoured approximately:
        // we re-arm self, which matches a PKM-style implementation.
        let policy = self.wake_policy();
        let mut next = ctx.now() + policy.next_interval(ctx.rng());
        if next <= ctx.now() {
            next = ctx.now() + SimDuration::from_micros(1);
        }
        let _ = self.pick_core(ctx);
        ctx.arm_self(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_system::SystemBuilder;

    #[test]
    fn baseline_detects_persistent_unhidden_tampering() {
        let mut sys = SystemBuilder::new().seed(41).trace(false).build();
        let (svc, handle) = NaiveIntrospection::new(BaselineConfig::periodic_fixed(
            SimDuration::from_millis(200),
        ));
        sys.install_secure_service(svc);
        // A dumb rootkit that never hides.
        let addr = sys
            .layout()
            .syscall_entry_addr(satin_mem::layout::GETTID_NR);
        let evil = satin_mem::image::hijacked_entry_bytes(sys.layout(), 1);
        sys.mem_mut().write_unchecked(addr, &evil).unwrap();
        sys.run_until(SimTime::from_millis(900));
        assert!(handle.rounds() >= 2, "{} rounds", handle.rounds());
        assert_eq!(handle.rounds(), handle.tampered_rounds());
        assert!(!handle.alarms().is_empty());
    }

    #[test]
    fn randomized_baseline_varies_period() {
        let mut sys = SystemBuilder::new().seed(43).trace(false).build();
        let (svc, handle) =
            NaiveIntrospection::new(BaselineConfig::randomized(SimDuration::from_millis(300)));
        sys.install_secure_service(svc);
        sys.run_until(SimTime::from_secs(3));
        assert!(handle.rounds() >= 3);
        assert_eq!(handle.tampered_rounds(), 0);
    }
}
