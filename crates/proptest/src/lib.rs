//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crate registry, so this crate
//! provides the subset of the proptest API the workspace's property tests
//! use, backed by a deterministic SplitMix64 case generator:
//!
//! - the [`proptest!`] macro with `pattern in strategy` and `name: Type`
//!   parameters;
//! - range strategies (`0u64..10_000`, `1u8..=99`, `0.0f64..1.0`);
//! - [`collection::vec`] and [`any`];
//! - [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike upstream proptest there is no shrinking and no persistence: each
//! test runs a fixed number of cases from a seed derived from the test-name
//! hash, so failures reproduce exactly across runs.

use std::ops::{Range, RangeInclusive};

/// Number of cases each property test runs (upstream default: 256).
pub const CASES: u32 = 256;

/// Deterministic case-generator RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derives the per-test seed from the test's name.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer draw in `[0, n)` for `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        // Widening-multiply range reduction; the modulo bias over a u64
        // source is far below anything a 256-case test could observe.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Values with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.uniform_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // 1/4096 of draws pin the inclusive endpoint so `..=hi`
                // actually exercises it.
                if rng.below(4096) == 0 {
                    hi
                } else {
                    lo + (rng.uniform_f64() as $t) * (hi - lo)
                }
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.uniform_f64() as $t
            }
        }
    )*};
}
float_strategies!(f32, f64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategies!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3)
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        Strategy, TestRng,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests.
///
/// Each function body runs [`CASES`] times with parameters drawn from their
/// strategies; `name: Type` parameters draw from [`any`]. The case seed is
/// derived from the test name, so runs are deterministic.
#[macro_export]
macro_rules! proptest {
    // Entry: split the block into individual test functions.
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::CASES {
                    let _ = __case;
                    $crate::proptest!(@bind __rng, $($params)*);
                    $body
                }
            }
        )*
    };

    // Parameter munching: `pattern in strategy` (strategy is an expr, which
    // the parser ends at the separating comma) or `name: Type`.
    (@bind $rng:ident $(,)?) => {};
    (@bind $rng:ident, mut $var:ident in $strat:expr) => {
        #[allow(unused_mut)]
        let mut $var = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    (@bind $rng:ident, mut $var:ident in $strat:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $var = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $var:ident in $strat:expr) => {
        let $var = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    (@bind $rng:ident, $var:ident in $strat:expr, $($rest:tt)*) => {
        let $var = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
    (@bind $rng:ident, $var:ident : $ty:ty) => {
        let $var = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    (@bind $rng:ident, $var:ident : $ty:ty, $($rest:tt)*) => {
        let $var = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng, $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1u8..=9, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=9).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in collection::vec(any::<u8>(), 2..6), seed: u64) {
            let _ = seed;
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn mut_bindings_work(mut v in collection::vec(0u8..4, 0..8)) {
            v.push(9);
            prop_assert_eq!(*v.last().unwrap(), 9);
        }
    }
}
