//! Time-ordered event queue with stable FIFO tie-breaking.
//!
//! Two implementations share one contract — pop in nondecreasing `(time,
//! seq)` order, FIFO among equal times:
//!
//! - [`EventQueue`] — a hierarchical timing wheel, the hot-path queue the
//!   engine runs on. Near-term events live in a small sorted run popped from
//!   the back in O(1); mid-term events hash into a circular bucket wheel
//!   (one `Vec` per ~4 µs slot) and are sorted only when their slot becomes
//!   current; far-future events beyond the wheel window sit in a sorted
//!   overflow level that drains into the wheel as time advances.
//! - [`BaselineHeapQueue`] — the original `BinaryHeap` implementation, kept
//!   as the executable reference model. The property tests drive both with
//!   the same program and assert identical `(time, seq, payload)` pop
//!   sequences, and the criterion suite benches one against the other.
//!
//! Because every entry carries a unique `(time, seq)` key, the pop order is
//! a *total* order — any correct implementation produces byte-identical
//! dispatch sequences, which is why swapping the wheel in cannot perturb a
//! golden trace (DESIGN.md §13).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Nanoseconds per wheel slot, as a shift: 2^12 = 4096 ns ≈ 4 µs. Chosen so
/// the dense tick/dispatch traffic (tens of µs apart) spreads over a few
/// slots instead of piling into one.
const BUCKET_SHIFT: u32 = 12;

/// Slots in the wheel window. Power of two so the slot→bucket map is a mask.
/// 256 × 4096 ns ≈ 1.05 ms of look-ahead; anything further goes to overflow.
const NUM_BUCKETS: u64 = 256;

/// The wheel slot an instant falls in.
#[inline]
fn slot_of(time: SimTime) -> u64 {
    time.as_nanos() >> BUCKET_SHIFT
}

/// An entry in the queue. Ordered by `(time, seq)` ascending; the payload
/// does not participate in ordering, so `E` needs no `Ord` bound.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> Entry<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event first.
        other.key().cmp(&self.key())
    }
}

/// Inserts `entry` into `run`, which is sorted *descending* by `(time, seq)`
/// (earliest at the back, so the earliest pops in O(1)).
fn insert_desc<E>(run: &mut Vec<Entry<E>>, entry: Entry<E>) {
    let key = entry.key();
    let pos = run.partition_point(|e| e.key() > key);
    run.insert(pos, entry);
}

/// A priority queue of `(SimTime, E)` pairs that pops events in nondecreasing
/// time order, breaking ties in insertion (FIFO) order.
///
/// FIFO tie-breaking is what makes the whole simulation deterministic: two
/// events scheduled for the same nanosecond always dispatch in the order they
/// were scheduled, independent of queue internals.
///
/// # Example
///
/// ```
/// use satin_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(5), 'b');
/// q.push(SimTime::from_nanos(5), 'c');
/// q.push(SimTime::from_nanos(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    /// Current-slot run, sorted descending by `(time, seq)`: the earliest
    /// entry is at the back, so `pop` is a `Vec::pop`. Also absorbs pushes
    /// at or before the wheel base (same-instant reschedules).
    near: Vec<Entry<E>>,
    /// Wheel base: every entry in `near` has `slot < near_slot`; the wheel
    /// window covers `[near_slot, near_slot + NUM_BUCKETS)`.
    near_slot: u64,
    /// The circular wheel. Bucket `slot & (NUM_BUCKETS - 1)` holds the
    /// entries for `slot`; within the window the map is injective, so a
    /// bucket never mixes slots. Unsorted until drained.
    buckets: Vec<Vec<Entry<E>>>,
    /// Entries currently in `buckets`.
    wheel_len: usize,
    /// Far-future entries (`slot >= near_slot + NUM_BUCKETS`), sorted
    /// descending; pulled into the wheel as the window advances.
    overflow: Vec<Entry<E>>,
    len: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            near: Vec::new(),
            near_slot: 0,
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            overflow: Vec::new(),
            len: 0,
            next_seq: 0,
        }
    }

    /// Pre-sizes the near run for about `n` in-flight events, so a fresh
    /// per-seed queue doesn't re-grow during warm-up.
    pub fn reserve(&mut self, n: usize) {
        self.near.reserve(n);
    }

    /// Enqueues `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.route(Entry { time, seq, payload });
        self.len += 1;
    }

    /// Places an entry in the level its slot belongs to.
    #[inline]
    fn route(&mut self, entry: Entry<E>) {
        let slot = slot_of(entry.time);
        if slot < self.near_slot {
            insert_desc(&mut self.near, entry);
        } else if slot - self.near_slot < NUM_BUCKETS {
            let idx = (slot & (NUM_BUCKETS - 1)) as usize;
            self.buckets
                .get_mut(idx)
                .expect("bucket index is masked to wheel size")
                .push(entry);
            self.wheel_len += 1;
        } else {
            insert_desc(&mut self.overflow, entry);
        }
    }

    /// Refills `near` from the wheel (and the wheel from overflow) until the
    /// earliest pending entry sits at the back of `near`. Caller guarantees
    /// the queue is non-empty.
    fn advance(&mut self) {
        while self.near.is_empty() {
            // Pull every overflow entry that now fits the window *before*
            // scanning: the window may have moved far enough that an
            // overflow entry is earlier than anything already in the wheel.
            while let Some(e) = self.overflow.last() {
                if slot_of(e.time) - self.near_slot < NUM_BUCKETS {
                    let entry = self.overflow.pop().expect("just peeked");
                    self.route(entry);
                } else {
                    break;
                }
            }
            if self.wheel_len == 0 {
                // Nothing within a window of the base: jump straight to the
                // earliest far-future slot and pull again.
                let earliest = self.overflow.last().expect("queue is non-empty");
                self.near_slot = slot_of(earliest.time);
                continue;
            }
            // Scan the window for the first non-empty bucket and promote it.
            for off in 0..NUM_BUCKETS {
                let slot = self.near_slot + off;
                let idx = (slot & (NUM_BUCKETS - 1)) as usize;
                let bucket = self
                    .buckets
                    .get_mut(idx)
                    .expect("bucket index is masked to wheel size");
                if bucket.is_empty() {
                    continue;
                }
                self.wheel_len -= bucket.len();
                // Sort descending so the earliest (smallest key) is last;
                // `sort_unstable` is fine because `(time, seq)` keys are
                // unique — FIFO order is already encoded in `seq`.
                bucket.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
                // `append` leaves the bucket's capacity in place for reuse.
                self.near.append(bucket);
                self.near_slot = slot + 1;
                break;
            }
        }
    }

    /// Removes and returns the earliest event, or `None` if empty.
    #[must_use = "popping discards the event if the result is unused"]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(t, _, e)| (t, e))
    }

    /// Like [`EventQueue::pop`], but also returns the event's sequence number
    /// (the FIFO tie-breaker assigned at push time).
    #[must_use = "popping discards the event if the result is unused"]
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        if self.len == 0 {
            return None;
        }
        self.advance();
        let e = self.near.pop().expect("advance leaves near non-empty");
        self.len -= 1;
        Some((e.time, e.seq, e.payload))
    }

    /// The sequence number the *next* pushed event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The time of the earliest pending event, if any.
    ///
    /// Takes `&mut self` because answering may promote a wheel bucket into
    /// the sorted near run (the earliest entry's position isn't known until
    /// its slot is sorted).
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        self.advance();
        self.near.last().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events. The sequence counter is *not* reset: seq
    /// values stay unique across a clear, so observers that log them never
    /// see a duplicate within one simulation.
    pub fn clear(&mut self) {
        self.near.clear();
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.wheel_len = 0;
        self.overflow.clear();
        self.len = 0;
        self.near_slot = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("next_seq", &self.next_seq)
            .field("near_slot", &self.near_slot)
            .field("wheel_len", &self.wheel_len)
            .field("overflow_len", &self.overflow.len())
            .finish()
    }
}

/// The original `BinaryHeap`-backed queue, retained as the executable
/// reference model for [`EventQueue`] and as the baseline side of the
/// queue microbenchmarks. Same contract, same API (except `peek_time`,
/// which stays `&self` here).
#[derive(Default)]
pub struct BaselineHeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> BaselineHeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BaselineHeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Enqueues `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    #[must_use = "popping discards the event if the result is unused"]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(t, _, e)| (t, e))
    }

    /// Like `pop`, but also returns the event's sequence number.
    #[must_use = "popping discards the event if the result is unused"]
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap.pop().map(|e| (e.time, e.seq, e.payload))
    }

    /// The sequence number the *next* pushed event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, preserving the sequence counter.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for BaselineHeapQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineHeapQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_nanos(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(4), ());
        q.push(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn next_seq_survives_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), 'a');
        q.push(SimTime::from_nanos(2), 'b');
        assert_eq!(q.next_seq(), 2);
        q.clear();
        assert_eq!(q.next_seq(), 2, "clear must not recycle sequence numbers");
        q.push(SimTime::from_nanos(3), 'c');
        assert_eq!(q.pop_entry(), Some((SimTime::from_nanos(3), 2, 'c')));
    }

    #[test]
    fn far_future_overflow_round_trips() {
        let mut q = EventQueue::new();
        // Far beyond the wheel window (256 × 4096 ns ≈ 1.05 ms).
        q.push(SimTime::from_secs(10), 'z');
        q.push(SimTime::from_nanos(5), 'a');
        q.push(SimTime::from_millis(2), 'm');
        assert_eq!(q.pop(), Some((SimTime::from_nanos(5), 'a')));
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), 'm')));
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 'z')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wheel_entry_does_not_overtake_promoted_overflow() {
        // Regression shape: an overflow entry whose slot enters the window
        // only after the base advances must still pop before a later-pushed,
        // later-timed wheel entry.
        let mut q = EventQueue::new();
        let window = 1u64 << BUCKET_SHIFT << 8; // NUM_BUCKETS slots in ns
        q.push(SimTime::from_nanos(window + 100), 'b'); // overflow at push
        q.push(SimTime::from_nanos(10), 'a');
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 'a')));
        // Lands inside the advanced window, *later* than the overflow entry.
        q.push(SimTime::from_nanos(window + 200), 'c');
        assert_eq!(q.pop(), Some((SimTime::from_nanos(window + 100), 'b')));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(window + 200), 'c')));
    }

    /// One step of an interleaved push/pop program (satellite: wheel vs.
    /// reference model).
    #[derive(Debug, Clone)]
    enum Op {
        Push(u64),
        Pop,
        Clear,
    }

    struct OpStrategy;

    impl Strategy for OpStrategy {
        type Value = Op;
        fn sample(&self, rng: &mut proptest::TestRng) -> Op {
            match rng.below(10) {
                // Near-term: lands in the current slot or the wheel window.
                0..=3 => Op::Push(rng.below(2_000_000)),
                // Far-future: guaranteed past the wheel window (> ~1.05 ms),
                // up to seconds out — exercises the overflow level.
                4..=5 => Op::Push(2_000_000 + rng.below(10_000_000_000)),
                6..=8 => Op::Pop,
                // Rare: exercises post-clear reuse mid-program.
                _ => Op::Clear,
            }
        }
    }

    proptest! {
        /// Invariant 1 (DESIGN.md): events dispatch in nondecreasing time
        /// order, FIFO among equal times.
        #[test]
        fn prop_dispatch_order(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for (idx, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), idx);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO violated at time {t}");
                    }
                }
                last = Some((t, idx));
            }
        }

        /// The timing wheel is observationally identical to the reference
        /// heap: same `(time, seq, payload)` at every pop, same `len` and
        /// `next_seq` after every step, for arbitrary interleaved programs
        /// including far-future overflow and post-`clear()` reuse.
        #[test]
        fn prop_wheel_matches_reference_model(
            ops in proptest::collection::vec(OpStrategy, 0..400)
        ) {
            let mut wheel = EventQueue::new();
            let mut model = BaselineHeapQueue::new();
            for (step, op) in ops.iter().enumerate() {
                match op {
                    Op::Push(t) => {
                        wheel.push(SimTime::from_nanos(*t), step);
                        model.push(SimTime::from_nanos(*t), step);
                    }
                    Op::Pop => {
                        prop_assert_eq!(wheel.pop_entry(), model.pop_entry());
                    }
                    Op::Clear => {
                        wheel.clear();
                        model.clear();
                    }
                }
                prop_assert_eq!(wheel.len(), model.len());
                prop_assert_eq!(wheel.next_seq(), model.next_seq());
                prop_assert_eq!(wheel.peek_time(), model.peek_time());
            }
            // Drain: the tails must match exactly too.
            loop {
                let (w, m) = (wheel.pop_entry(), model.pop_entry());
                prop_assert_eq!(&w, &m);
                if w.is_none() {
                    break;
                }
            }
        }
    }
}
