//! Time-ordered event queue with stable FIFO tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the heap. Ordered by `(time, seq)` ascending; the payload does
/// not participate in ordering, so `E` needs no `Ord` bound.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the earliest event first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of `(SimTime, E)` pairs that pops events in nondecreasing
/// time order, breaking ties in insertion (FIFO) order.
///
/// FIFO tie-breaking is what makes the whole simulation deterministic: two
/// events scheduled for the same nanosecond always dispatch in the order they
/// were scheduled, independent of heap internals.
///
/// # Example
///
/// ```
/// use satin_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(5), 'b');
/// q.push(SimTime::from_nanos(5), 'c');
/// q.push(SimTime::from_nanos(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Enqueues `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(t, _, e)| (t, e))
    }

    /// Like [`EventQueue::pop`], but also returns the event's sequence number
    /// (the FIFO tie-breaker assigned at push time).
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap.pop().map(|e| (e.time, e.seq, e.payload))
    }

    /// The sequence number the *next* pushed event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_nanos(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(4), ());
        q.push(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
        q.clear();
        assert!(q.is_empty());
    }

    proptest! {
        /// Invariant 1 (DESIGN.md): events dispatch in nondecreasing time
        /// order, FIFO among equal times.
        #[test]
        fn prop_dispatch_order(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for (idx, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), idx);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO violated at time {t}");
                    }
                }
                last = Some((t, idx));
            }
        }
    }
}
