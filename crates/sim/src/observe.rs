//! Passive instrumentation hooks on the simulation engine.
//!
//! A [`SimObserver`] sees every event the [`Simulator`] schedules and
//! dispatches, together with the queue sequence number that determines FIFO
//! tie-breaking and the queue depth at that instant. Observers are strictly
//! read-only with respect to the simulation: they cannot schedule, cancel, or
//! reorder events, so installing one can never change an experiment's
//! outcome — only record it. The engine runs with no observer by default and
//! pays nothing for the feature beyond an `Option` check.
//!
//! [`Simulator`]: crate::Simulator

use crate::time::SimTime;

/// Hooks invoked by the [`Simulator`](crate::Simulator) engine loop.
///
/// All methods have empty default bodies so an observer only implements the
/// hooks it cares about.
///
/// # Example
///
/// ```
/// use satin_sim::{SimObserver, SimTime, Simulator, SimDuration};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// #[derive(Default)]
/// struct SeqRecorder(Rc<RefCell<Vec<u64>>>);
///
/// impl SimObserver<&'static str> for SeqRecorder {
///     fn on_dispatched(&mut self, _: SimTime, seq: u64, _: &&'static str, _: usize) {
///         self.0.borrow_mut().push(seq);
///     }
/// }
///
/// let seen = Rc::new(RefCell::new(Vec::new()));
/// let mut sim = Simulator::new();
/// sim.set_observer(Box::new(SeqRecorder(Rc::clone(&seen))));
/// sim.schedule_after(SimDuration::from_nanos(5), "b");
/// sim.schedule_after(SimDuration::from_nanos(5), "c");
/// sim.schedule_after(SimDuration::from_nanos(1), "a");
/// while sim.pop().is_some() {}
/// assert_eq!(*seen.borrow(), vec![2, 0, 1]); // "a" first, then FIFO ties
/// ```
pub trait SimObserver<E> {
    /// Called when an event is accepted into the queue.
    ///
    /// `seq` is the queue sequence number assigned to the event (the FIFO
    /// tie-breaker among equal times) and `queue_depth` is the number of
    /// pending events *including* this one.
    fn on_scheduled(&mut self, at: SimTime, seq: u64, event: &E, queue_depth: usize) {
        let _ = (at, seq, event, queue_depth);
    }

    /// Called when an event is popped for dispatch, after the clock has
    /// advanced to its timestamp.
    ///
    /// `queue_depth` is the number of events still pending *after* this one
    /// was removed.
    fn on_dispatched(&mut self, time: SimTime, seq: u64, event: &E, queue_depth: usize) {
        let _ = (time, seq, event, queue_depth);
    }
}

/// An observer that counts schedule/dispatch activity and tracks the highest
/// queue depth seen — the cheapest useful observer, handy as a smoke probe.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct QueueDepthProbe {
    /// Events accepted into the queue while this probe was installed.
    pub scheduled: u64,
    /// Events dispatched while this probe was installed.
    pub dispatched: u64,
    /// Highest pending-event count observed.
    pub max_depth: usize,
}

impl<E> SimObserver<E> for QueueDepthProbe {
    fn on_scheduled(&mut self, _at: SimTime, _seq: u64, _event: &E, queue_depth: usize) {
        self.scheduled += 1;
        self.max_depth = self.max_depth.max(queue_depth);
    }

    fn on_dispatched(&mut self, _time: SimTime, _seq: u64, _event: &E, _queue_depth: usize) {
        self.dispatched += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct SharedProbe(Rc<RefCell<QueueDepthProbe>>);

    impl<E> SimObserver<E> for SharedProbe {
        fn on_scheduled(&mut self, at: SimTime, seq: u64, event: &E, depth: usize) {
            self.0.borrow_mut().on_scheduled(at, seq, event, depth);
        }
        fn on_dispatched(&mut self, time: SimTime, seq: u64, event: &E, depth: usize) {
            self.0.borrow_mut().on_dispatched(time, seq, event, depth);
        }
    }

    #[test]
    fn probe_counts_and_tracks_depth() {
        let shared = Rc::new(RefCell::new(QueueDepthProbe::default()));
        let mut sim: Simulator<u32> = Simulator::new();
        sim.set_observer(Box::new(SharedProbe(Rc::clone(&shared))));
        for i in 0..4 {
            sim.schedule_after(SimDuration::from_nanos(i), i as u32);
        }
        while sim.pop().is_some() {}
        let probe = shared.borrow();
        assert_eq!(probe.scheduled, 4);
        assert_eq!(probe.dispatched, 4);
        assert_eq!(probe.max_depth, 4);
    }
}
