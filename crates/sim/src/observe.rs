//! Passive instrumentation hooks on the simulation engine.
//!
//! A [`SimObserver`] sees every event the [`Simulator`] schedules and
//! dispatches, together with the queue sequence number that determines FIFO
//! tie-breaking and the queue depth at that instant. Observers are strictly
//! read-only with respect to the simulation: they cannot schedule, cancel, or
//! reorder events, so installing one can never change an experiment's
//! outcome — only record it. The engine runs with no observer by default and
//! pays nothing for the feature beyond an `Option` check.
//!
//! [`Simulator`]: crate::Simulator

use crate::time::SimTime;

/// The semantic tag of a [`Mark`].
///
/// Marks describe *what the machine meant* at an instant — a secure-timer
/// fire, a scan-window boundary, a publication — in a typed vocabulary that
/// analysis observers (e.g. a happens-before race detector) can consume
/// without parsing trace strings. The vocabulary is deliberately small: one
/// variant per causally interesting boundary in the SATIN two-world race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarkTag {
    /// A secure timer fired and the core is entering the secure world.
    SecureFire,
    /// An introspection scan window opened (`a` = window base address,
    /// `b` = window length in bytes).
    ScanBegin,
    /// The scan window closed (hashing finished; results not yet visible).
    ScanEnd,
    /// The round's results became visible to the normal world (`a` = the
    /// visibility instant in nanoseconds — the world-switch-out completion,
    /// which can lie *after* the instant the mark was emitted).
    Publish,
    /// The round raised an integrity alarm (`a` = visibility instant in
    /// nanoseconds, `b` = number of alarms raised this round).
    Detection,
    /// A prober thread observed evidence of an introspection (stale time
    /// report over threshold; `a` = index of the watched core).
    AttackObserve,
    /// The rootkit wrote its hijack (`a` = hijacked address).
    AttackInstall,
    /// The rootkit claimed a pending hide and began recovering.
    RecoveryBegin,
    /// The rootkit finished recovery and restored genuine bytes
    /// (`a` = restored address).
    AttackRestore,
}

impl MarkTag {
    /// Stable lowercase name, e.g. `"secure.fire"`.
    pub const fn as_str(self) -> &'static str {
        match self {
            MarkTag::SecureFire => "secure.fire",
            MarkTag::ScanBegin => "scan.begin",
            MarkTag::ScanEnd => "scan.end",
            MarkTag::Publish => "publish",
            MarkTag::Detection => "detection",
            MarkTag::AttackObserve => "attack.observe",
            MarkTag::AttackInstall => "attack.install",
            MarkTag::RecoveryBegin => "recovery.begin",
            MarkTag::AttackRestore => "attack.restore",
        }
    }
}

impl std::fmt::Display for MarkTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.as_str())
    }
}

/// A typed semantic annotation forwarded to the installed [`SimObserver`].
///
/// Unlike events, marks are never queued: [`Simulator::mark`] forwards them
/// to the observer immediately at the current simulated time, interleaved
/// with the dispatch stream in emission order. With no observer installed a
/// mark is a no-op, so emitting them can never perturb a run.
///
/// [`Simulator::mark`]: crate::Simulator::mark
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mark {
    /// What happened.
    pub tag: MarkTag,
    /// The core the event is attributed to.
    pub core: usize,
    /// First tag-specific argument (see [`MarkTag`] docs).
    pub a: u64,
    /// Second tag-specific argument (see [`MarkTag`] docs).
    pub b: u64,
}

impl Mark {
    /// A mark with both arguments zero.
    pub const fn new(tag: MarkTag, core: usize) -> Self {
        Mark {
            tag,
            core,
            a: 0,
            b: 0,
        }
    }

    /// A mark with explicit arguments.
    pub const fn with_args(tag: MarkTag, core: usize, a: u64, b: u64) -> Self {
        Mark { tag, core, a, b }
    }
}

/// Hooks invoked by the [`Simulator`](crate::Simulator) engine loop.
///
/// All methods have empty default bodies so an observer only implements the
/// hooks it cares about.
///
/// # Example
///
/// ```
/// use satin_sim::{SimObserver, SimTime, Simulator, SimDuration};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// #[derive(Default)]
/// struct SeqRecorder(Rc<RefCell<Vec<u64>>>);
///
/// impl SimObserver<&'static str> for SeqRecorder {
///     fn on_dispatched(&mut self, _: SimTime, seq: u64, _: &&'static str, _: usize) {
///         self.0.borrow_mut().push(seq);
///     }
/// }
///
/// let seen = Rc::new(RefCell::new(Vec::new()));
/// let mut sim = Simulator::new();
/// sim.set_observer(Box::new(SeqRecorder(Rc::clone(&seen))));
/// sim.schedule_after(SimDuration::from_nanos(5), "b");
/// sim.schedule_after(SimDuration::from_nanos(5), "c");
/// sim.schedule_after(SimDuration::from_nanos(1), "a");
/// while sim.pop().is_some() {}
/// assert_eq!(*seen.borrow(), vec![2, 0, 1]); // "a" first, then FIFO ties
/// ```
pub trait SimObserver<E> {
    /// Called when an event is accepted into the queue.
    ///
    /// `seq` is the queue sequence number assigned to the event (the FIFO
    /// tie-breaker among equal times) and `queue_depth` is the number of
    /// pending events *including* this one.
    fn on_scheduled(&mut self, at: SimTime, seq: u64, event: &E, queue_depth: usize) {
        let _ = (at, seq, event, queue_depth);
    }

    /// Called when an event is popped for dispatch, after the clock has
    /// advanced to its timestamp.
    ///
    /// `queue_depth` is the number of events still pending *after* this one
    /// was removed.
    fn on_dispatched(&mut self, time: SimTime, seq: u64, event: &E, queue_depth: usize) {
        let _ = (time, seq, event, queue_depth);
    }

    /// Called when a component emits a semantic [`Mark`] via
    /// [`Simulator::mark`](crate::Simulator::mark), at the current simulated
    /// time. Marks interleave with dispatches in emission order: a mark
    /// emitted while handling event `e` arrives after `on_dispatched(e)` and
    /// before the next dispatch.
    fn on_mark(&mut self, at: SimTime, mark: &Mark) {
        let _ = (at, mark);
    }
}

/// An observer that counts schedule/dispatch activity and tracks the highest
/// queue depth seen — the cheapest useful observer, handy as a smoke probe.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct QueueDepthProbe {
    /// Events accepted into the queue while this probe was installed.
    pub scheduled: u64,
    /// Events dispatched while this probe was installed.
    pub dispatched: u64,
    /// Highest pending-event count observed.
    pub max_depth: usize,
}

impl<E> SimObserver<E> for QueueDepthProbe {
    fn on_scheduled(&mut self, _at: SimTime, _seq: u64, _event: &E, queue_depth: usize) {
        self.scheduled += 1;
        self.max_depth = self.max_depth.max(queue_depth);
    }

    fn on_dispatched(&mut self, _time: SimTime, _seq: u64, _event: &E, _queue_depth: usize) {
        self.dispatched += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct SharedProbe(Rc<RefCell<QueueDepthProbe>>);

    impl<E> SimObserver<E> for SharedProbe {
        fn on_scheduled(&mut self, at: SimTime, seq: u64, event: &E, depth: usize) {
            self.0.borrow_mut().on_scheduled(at, seq, event, depth);
        }
        fn on_dispatched(&mut self, time: SimTime, seq: u64, event: &E, depth: usize) {
            self.0.borrow_mut().on_dispatched(time, seq, event, depth);
        }
    }

    #[test]
    fn probe_counts_and_tracks_depth() {
        let shared = Rc::new(RefCell::new(QueueDepthProbe::default()));
        let mut sim: Simulator<u32> = Simulator::new();
        sim.set_observer(Box::new(SharedProbe(Rc::clone(&shared))));
        for i in 0..4 {
            sim.schedule_after(SimDuration::from_nanos(i), i as u32);
        }
        while sim.pop().is_some() {}
        let probe = shared.borrow();
        assert_eq!(probe.scheduled, 4);
        assert_eq!(probe.dispatched, 4);
        assert_eq!(probe.max_depth, 4);
    }
}
