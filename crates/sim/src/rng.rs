//! Deterministic, stream-split randomness.
//!
//! Every stochastic quantity in the reproduction (world-switch jitter,
//! per-byte hash-rate jitter, cross-core publication delay, SATIN's random
//! wake-up deviation, random area choice, …) draws from a [`SimRng`] derived
//! from a single master seed, so an entire experiment is reproducible from one
//! `u64`. Independent subsystems take independent *streams* from a
//! [`RngFactory`] so that adding a draw in one subsystem does not perturb the
//! sequence seen by another.

/// A deterministic random number generator for simulation components.
///
/// Self-contained xoshiro256++ generator (seeded through a SplitMix64
/// expansion, the initialization the xoshiro authors recommend) with a few
/// convenience draws used throughout the reproduction. Carrying our own
/// generator keeps the workspace free of registry dependencies and pins the
/// stream bit-for-bit across toolchains.
///
/// # Example
///
/// ```
/// use satin_sim::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit state; the
        // all-zero state (unreachable from SplitMix64) would be a fixed point.
        let mut z = seed;
        let mut next = || {
            let out = splitmix64(z);
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            out
        };
        SimRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`: the top 53 bits scaled by 2⁻⁵³.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        lo + self.uniform_f64() * (hi - lo)
    }

    /// Uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below(0)");
        // Lemire's multiply-shift with rejection: unbiased and branch-light.
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer draw in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.uniform_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element index of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick_index<T>(&mut self, slice: &[T]) -> usize {
        assert!(!slice.is_empty(), "SimRng::pick_index on empty slice");
        self.below(slice.len() as u64) as usize
    }
}

/// Derives independent [`SimRng`] streams from a single master seed.
///
/// Streams are identified by a label so that experiment code reads as
/// `factory.stream("prober")`, and the derivation is stable across runs.
///
/// # Example
///
/// ```
/// use satin_sim::RngFactory;
/// let f = RngFactory::new(7);
/// let mut a1 = f.stream("timing");
/// let mut a2 = f.stream("timing");
/// let mut b = f.stream("prober");
/// assert_eq!(a1.next_u64(), a2.next_u64());
/// assert_ne!(a1.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory from a master seed.
    pub const fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// The master seed this factory derives from.
    pub const fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derives the stream named `label`.
    pub fn stream(&self, label: &str) -> SimRng {
        SimRng::seed_from(splitmix64(self.master_seed ^ fnv1a64(label.as_bytes())))
    }

    /// Derives a numbered sub-stream, e.g. one per repetition round.
    pub fn substream(&self, label: &str, index: u64) -> SimRng {
        let base = self.master_seed ^ fnv1a64(label.as_bytes());
        SimRng::seed_from(splitmix64(base.wrapping_add(splitmix64(index))))
    }
}

/// 64-bit FNV-1a over bytes; used only for stable label→seed derivation.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer; decorrelates nearby seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_independent_by_label() {
        let f = RngFactory::new(99);
        let x = f.stream("a").next_u64();
        let y = f.stream("b").next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn substreams_differ_by_index() {
        let f = RngFactory::new(5);
        assert_ne!(
            f.substream("round", 0).next_u64(),
            f.substream("round", 1).next_u64()
        );
    }

    #[test]
    fn uniform_range_in_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let v = rng.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn below_and_int_range() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
            let v = rng.int_range_inclusive(3, 5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }

    proptest! {
        #[test]
        fn prop_pick_index_in_bounds(len in 1usize..100, seed in 0u64..1000) {
            let v = vec![0u8; len];
            let idx = SimRng::seed_from(seed).pick_index(&v);
            prop_assert!(idx < len);
        }

        #[test]
        fn prop_shuffle_preserves_multiset(mut v in proptest::collection::vec(0u8..8, 0..64), seed: u64) {
            let mut expected = v.clone();
            SimRng::seed_from(seed).shuffle(&mut v);
            expected.sort_unstable();
            v.sort_unstable();
            prop_assert_eq!(v, expected);
        }
    }
}
