//! Error types for the simulation engine.

use crate::time::SimTime;
use std::error::Error;
use std::fmt;

/// Errors raised by the simulation engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An event was scheduled strictly before the current simulated time.
    ScheduleInPast {
        /// Current simulated time.
        now: SimTime,
        /// Requested (past) event time.
        requested: SimTime,
    },
    /// The simulation ran past its configured event budget, which usually
    /// indicates a runaway self-rescheduling component.
    EventBudgetExhausted {
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ScheduleInPast { now, requested } => {
                write!(
                    f,
                    "event scheduled in the past: now {now}, requested {requested}"
                )
            }
            SimError::EventBudgetExhausted { budget } => {
                write!(f, "simulation exceeded event budget of {budget} events")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::ScheduleInPast {
            now: SimTime::from_nanos(10),
            requested: SimTime::from_nanos(5),
        };
        let s = e.to_string();
        assert!(s.contains("past"));
        let e = SimError::EventBudgetExhausted { budget: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
