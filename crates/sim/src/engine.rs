//! The simulation driver: a clock plus an event queue.

use crate::error::SimError;
use crate::observe::SimObserver;
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A discrete-event simulator over events of type `E`.
///
/// The simulator owns the virtual clock and the pending-event queue. Higher
/// layers (the `satin-system` machine) pop events, advance state, and push
/// follow-up events. Keeping the engine generic and dumb makes its invariants
/// (time monotonicity, FIFO ties) easy to test in isolation. A read-only
/// [`SimObserver`] can be installed with [`Simulator::set_observer`] to watch
/// every schedule and dispatch without perturbing them.
///
/// # Example
///
/// ```
/// use satin_sim::{Simulator, SimDuration};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut sim = Simulator::new();
/// sim.schedule_after(SimDuration::from_nanos(10), Ev::Ping);
/// let (t, ev) = sim.pop().unwrap();
/// assert_eq!(ev, Ev::Ping);
/// assert_eq!(sim.now(), t);
/// sim.schedule_after(SimDuration::from_nanos(5), Ev::Pong);
/// assert_eq!(sim.pop().unwrap().1, Ev::Pong);
/// ```
pub struct Simulator<E> {
    now: SimTime,
    queue: EventQueue<E>,
    dispatched: u64,
    event_budget: u64,
    observer: Option<Box<dyn SimObserver<E>>>,
}

impl<E> fmt::Debug for Simulator<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("queue", &self.queue)
            .field("dispatched", &self.dispatched)
            .field("event_budget", &self.event_budget)
            .field("observer", &self.observer.as_ref().map(|_| "installed"))
            .finish()
    }
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Default safety cap on dispatched events (5 billion): large enough for
    /// every experiment in the paper, small enough to catch runaway loops.
    pub const DEFAULT_EVENT_BUDGET: u64 = 5_000_000_000;

    /// Creates a simulator at time zero with the default event budget.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            dispatched: 0,
            event_budget: Self::DEFAULT_EVENT_BUDGET,
            observer: None,
        }
    }

    /// Creates a simulator with an explicit event budget.
    pub fn with_event_budget(event_budget: u64) -> Self {
        Simulator {
            event_budget,
            ..Self::new()
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Pre-sizes the event queue for about `n` in-flight events. A sizing
    /// hint only — purely an allocation optimization, never observable in
    /// event order or timing.
    pub fn reserve_events(&mut self, n: usize) {
        self.queue.reserve(n);
    }

    /// Installs an [`SimObserver`] notified on every schedule and dispatch.
    ///
    /// Observers are read-only instrumentation: installing (or removing) one
    /// never changes event order, timing, or any other simulation outcome.
    /// Any previously installed observer is returned.
    pub fn set_observer(
        &mut self,
        observer: Box<dyn SimObserver<E>>,
    ) -> Option<Box<dyn SimObserver<E>>> {
        self.observer.replace(observer)
    }

    /// Removes and returns the installed observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn SimObserver<E>>> {
        self.observer.take()
    }

    /// `true` if an observer is installed.
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// Forwards a semantic [`Mark`] to the installed observer at the current
    /// simulated time. With no observer installed this is a no-op, so
    /// components can mark unconditionally without perturbing (or paying
    /// for) anything.
    pub fn mark(&mut self, mark: crate::observe::Mark) {
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_mark(self.now, &mark);
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduleInPast`] if `at` is before the current
    /// simulated time. Scheduling *at* the current time is allowed (the event
    /// dispatches after already-queued events for this instant).
    pub fn try_schedule_at(&mut self, at: SimTime, event: E) -> Result<(), SimError> {
        if at < self.now {
            return Err(SimError::ScheduleInPast {
                now: self.now,
                requested: at,
            });
        }
        self.enqueue(at, event);
        Ok(())
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past; use [`Simulator::try_schedule_at`] to
    /// handle that case gracefully.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.try_schedule_at(at, event)
            .expect("event scheduled in the past");
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        let at = self.now + delay;
        self.enqueue(at, event);
    }

    /// Notifies the observer (if any) and pushes onto the queue.
    fn enqueue(&mut self, at: SimTime, event: E) {
        if let Some(obs) = self.observer.as_deref_mut() {
            // Depth counts the event about to be inserted.
            obs.on_scheduled(at, self.queue.next_seq(), &event, self.queue.len() + 1);
        }
        self.queue.push(at, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when no events are pending.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, seq, ev) = self.queue.pop_entry()?;
        debug_assert!(t >= self.now, "event queue returned a past event");
        self.now = t;
        self.dispatched += 1;
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_dispatched(t, seq, &ev, self.queue.len());
        }
        ev_into(t, ev)
    }

    /// Pops the next event only if it fires at or before `deadline`.
    ///
    /// The clock never advances past `deadline`: if the next event is later
    /// (or the queue is empty), the clock is set to `deadline` and `None` is
    /// returned. This is how experiments run "for 8 simulated seconds".
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => {
                if deadline > self.now {
                    self.now = deadline;
                }
                None
            }
        }
    }

    /// Runs `handler` on every event until the queue drains or the handler
    /// returns `false`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExhausted`] if more than the configured
    /// event budget dispatches, which almost always indicates a component
    /// rescheduling itself in a zero-delay loop.
    pub fn run<F>(&mut self, mut handler: F) -> Result<(), SimError>
    where
        F: FnMut(&mut Self, SimTime, E) -> bool,
    {
        while let Some((t, ev)) = self.pop() {
            if self.dispatched > self.event_budget {
                return Err(SimError::EventBudgetExhausted {
                    budget: self.event_budget,
                });
            }
            if !handler(self, t, ev) {
                break;
            }
        }
        Ok(())
    }
}

// Helper so `pop` can return the tuple without fighting the borrow checker in
// future refactors; kept trivial on purpose.
fn ev_into<E>(t: SimTime, ev: E) -> Option<(SimTime, E)> {
    Some((t, ev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clock_advances_with_pop() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_nanos(50), 1);
        sim.schedule_at(SimTime::from_nanos(20), 2);
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.pop(), Some((SimTime::from_nanos(20), 2)));
        assert_eq!(sim.now(), SimTime::from_nanos(20));
        assert_eq!(sim.pop(), Some((SimTime::from_nanos(50), 1)));
        assert_eq!(sim.now(), SimTime::from_nanos(50));
        assert_eq!(sim.pop(), None);
    }

    #[test]
    fn schedule_in_past_rejected() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_nanos(100), 1);
        sim.pop();
        let err = sim.try_schedule_at(SimTime::from_nanos(10), 2).unwrap_err();
        assert!(matches!(err, SimError::ScheduleInPast { .. }));
        // Scheduling at exactly `now` is fine.
        sim.try_schedule_at(SimTime::from_nanos(100), 3).unwrap();
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_nanos(10), 1);
        sim.schedule_at(SimTime::from_nanos(30), 2);
        let deadline = SimTime::from_nanos(20);
        assert_eq!(sim.pop_until(deadline), Some((SimTime::from_nanos(10), 1)));
        assert_eq!(sim.pop_until(deadline), None);
        assert_eq!(sim.now(), deadline);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn pop_until_on_empty_queue_advances_clock() {
        let mut sim: Simulator<u32> = Simulator::new();
        assert_eq!(sim.pop_until(SimTime::from_secs(1)), None);
        assert_eq!(sim.now(), SimTime::from_secs(1));
    }

    #[test]
    fn run_drains_and_counts() {
        let mut sim: Simulator<u32> = Simulator::new();
        for i in 0..10 {
            sim.schedule_at(SimTime::from_nanos(i), i as u32);
        }
        let mut seen = Vec::new();
        sim.run(|_, _, ev| {
            seen.push(ev);
            true
        })
        .unwrap();
        assert_eq!(seen, (0..10).collect::<Vec<u32>>());
        assert_eq!(sim.dispatched(), 10);
    }

    #[test]
    fn run_stops_when_handler_returns_false() {
        let mut sim: Simulator<u32> = Simulator::new();
        for i in 0..10 {
            sim.schedule_at(SimTime::from_nanos(i), i as u32);
        }
        let mut count = 0;
        sim.run(|_, _, _| {
            count += 1;
            count < 3
        })
        .unwrap();
        assert_eq!(count, 3);
        assert_eq!(sim.pending(), 7);
    }

    #[test]
    fn event_budget_trips() {
        let mut sim: Simulator<u32> = Simulator::with_event_budget(100);
        sim.schedule_at(SimTime::from_nanos(1), 0);
        let err = sim
            .run(|sim, _, _| {
                // Pathological self-rescheduling loop.
                sim.schedule_after(SimDuration::from_nanos(1), 0);
                true
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::EventBudgetExhausted { budget: 100 }
        ));
    }

    #[test]
    fn event_budget_boundary_is_inclusive() {
        // Exactly `budget` dispatches is fine; one more trips the error.
        for (n, ok) in [(100u64, true), (101, false)] {
            let mut sim: Simulator<u64> = Simulator::with_event_budget(100);
            for i in 0..n {
                sim.schedule_at(SimTime::from_nanos(i), i);
            }
            let result = sim.run(|_, _, _| true);
            assert_eq!(result.is_ok(), ok, "budget 100, {n} events");
            assert_eq!(sim.dispatched(), n.min(101));
        }
    }

    #[test]
    fn event_budget_error_leaves_queue_intact() {
        let mut sim: Simulator<u64> = Simulator::with_event_budget(2);
        for i in 0..5 {
            sim.schedule_at(SimTime::from_nanos(i), i);
        }
        sim.run(|_, _, _| true).unwrap_err();
        // Events past the budget stay queued for post-mortem inspection.
        assert_eq!(sim.pending(), 2);
    }

    #[test]
    fn observer_install_and_take_roundtrip() {
        let mut sim: Simulator<u32> = Simulator::new();
        assert!(!sim.has_observer());
        let prev = sim.set_observer(Box::new(crate::observe::QueueDepthProbe::default()));
        assert!(prev.is_none());
        assert!(sim.has_observer());
        assert!(sim.take_observer().is_some());
        assert!(!sim.has_observer());
    }

    proptest! {
        /// The observer sees dispatches in strict `(time, seq)` order, and
        /// every scheduled event is dispatched exactly once — installing the
        /// observer reveals the queue's order without changing it.
        #[test]
        fn prop_observer_sees_dispatch_order(
            times in proptest::collection::vec(0u64..500, 1..200),
        ) {
            use crate::observe::SimObserver;
            use std::cell::RefCell;
            use std::rc::Rc;

            #[derive(Default)]
            struct Recorder {
                scheduled: Rc<RefCell<Vec<(SimTime, u64)>>>,
                dispatched: Rc<RefCell<Vec<(SimTime, u64)>>>,
            }
            impl SimObserver<usize> for Recorder {
                fn on_scheduled(&mut self, at: SimTime, seq: u64, _: &usize, _: usize) {
                    self.scheduled.borrow_mut().push((at, seq));
                }
                fn on_dispatched(&mut self, time: SimTime, seq: u64, _: &usize, _: usize) {
                    self.dispatched.borrow_mut().push((time, seq));
                }
            }

            let rec = Recorder::default();
            let (scheduled, dispatched) =
                (Rc::clone(&rec.scheduled), Rc::clone(&rec.dispatched));
            let mut sim: Simulator<usize> = Simulator::new();
            sim.set_observer(Box::new(rec));
            for (i, t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_nanos(*t), i);
            }
            sim.run(|_, _, _| true).unwrap();

            let disp = dispatched.borrow();
            prop_assert_eq!(disp.len(), times.len());
            // Strict (time, seq) order: seq breaks every time tie uniquely.
            for pair in disp.windows(2) {
                prop_assert!(pair[0] < pair[1], "out of order: {:?}", pair);
            }
            // Dispatches are exactly the scheduled set.
            let mut sched = scheduled.borrow().clone();
            sched.sort_unstable();
            prop_assert_eq!(&*disp, &sched[..]);
        }
    }

    proptest! {
        /// Invariant 1: the clock observed by the handler never decreases.
        #[test]
        fn prop_clock_monotone(times in proptest::collection::vec(0u64..10_000, 1..300)) {
            let mut sim: Simulator<usize> = Simulator::new();
            for (i, t) in times.iter().enumerate() {
                sim.schedule_at(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            sim.run(|s, t, _| {
                assert!(t >= last);
                assert_eq!(s.now(), t);
                last = t;
                true
            }).unwrap();
        }
    }
}
