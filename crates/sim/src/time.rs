//! Virtual time: nanosecond-resolution instants and durations.
//!
//! The simulator never consults the wall clock. All timing constants in the
//! reproduction are taken from the SATIN paper's measurements and expressed as
//! [`SimDuration`] values; [`SimTime`] is an instant measured from simulated
//! boot (time zero).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since simulated boot.
///
/// `SimTime` is a monotone, totally ordered newtype over `u64`. It is the only
/// clock in the reproduction: every measurement the paper made with the Juno
/// board's counters is made here against `SimTime`.
///
/// # Example
///
/// ```
/// use satin_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use satin_sim::SimDuration;
/// let d = SimDuration::from_secs_f64(6.67e-9);
/// assert_eq!(d.as_nanos(), 7); // rounds up: never under-bill simulated work
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulated boot instant.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after boot.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after boot.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after boot.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after boot.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since boot.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since boot as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier > self` (simulated time cannot run
    /// backwards); saturates in release builds.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max_of(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// A duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// A duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// A duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Converts a floating-point number of seconds, rounding *up* to the next
    /// nanosecond so that simulated work is never under-billed.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64: invalid seconds value {secs}"
        );
        let nanos = (secs * 1e9).ceil();
        assert!(
            nanos <= u64::MAX as f64,
            "SimDuration::from_secs_f64: {secs}s overflows"
        );
        SimDuration(nanos as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer count; `None` on overflow.
    pub fn checked_mul(self, count: u64) -> Option<SimDuration> {
        self.0.checked_mul(count).map(SimDuration)
    }

    /// `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.9}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(4).as_nanos(), 4_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        // The paper's fastest per-byte rate is 6.67e-9 s; it must not round to 6ns.
        assert_eq!(SimDuration::from_secs_f64(6.67e-9).as_nanos(), 7);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(4);
        assert_eq!((t + d).as_nanos(), 14_000);
        assert_eq!((t - d).as_nanos(), 6_000);
        assert_eq!(((t + d) - t).as_nanos(), 4_000);
        assert_eq!((d * 3).as_nanos(), 12_000);
        assert_eq!((d / 2).as_nanos(), 2_000);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_nanos(), 4);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn ordering_and_max_of() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max_of(b), b);
        assert_eq!(b.max_of(a), b);
    }

    #[test]
    fn checked_ops() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert!(SimDuration::MAX.checked_mul(2).is_none());
        assert_eq!(
            SimDuration::from_nanos(3).checked_mul(3),
            Some(SimDuration::from_nanos(9))
        );
    }
}
