#![warn(missing_docs)]
//! Deterministic discrete-event simulation engine for the SATIN reproduction.
//!
//! The SATIN paper (DSN 2019) studies a *timing race* between the ARM
//! TrustZone secure world (performing asynchronous introspection) and a
//! compromised rich OS (removing attack traces). Reproducing that race without
//! the ARM Juno r1 board requires a simulator whose only notion of time is
//! virtual: this crate provides nanosecond-resolution [`SimTime`], an ordered
//! [`EventQueue`] with stable FIFO tie-breaking, seeded and stream-split
//! deterministic randomness ([`rng::SimRng`]), calibrated probability
//! distributions ([`dist`]), a bounded [`trace::TraceLog`] with typed
//! [`trace::TraceCategory`] labels, and a read-only [`observe::SimObserver`]
//! hook for instrumenting the engine without perturbing it.
//!
//! # Example
//!
//! ```
//! use satin_sim::{Simulator, SimDuration};
//!
//! let mut sim: Simulator<&'static str> = Simulator::new();
//! sim.schedule_after(SimDuration::from_micros(3), "later");
//! sim.schedule_after(SimDuration::from_micros(1), "sooner");
//! let mut order = Vec::new();
//! while let Some((t, ev)) = sim.pop() {
//!     order.push((t.as_nanos(), ev));
//! }
//! assert_eq!(order, vec![(1_000, "sooner"), (3_000, "later")]);
//! ```

pub mod dist;
pub mod engine;
pub mod error;
pub mod observe;
pub mod queue;
pub mod rng;
pub mod time;
pub mod trace;

pub use engine::Simulator;
pub use error::SimError;
pub use observe::{Mark, MarkTag, QueueDepthProbe, SimObserver};
pub use queue::{BaselineHeapQueue, EventQueue};
pub use rng::{RngFactory, SimRng};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceCategory, TraceEvent, TraceLog};
