//! Probability distributions calibrated from the paper's avg/max/min triples.
//!
//! The SATIN paper reports most timing quantities as (average, maximum,
//! minimum) over 50 rounds (Tables I and II, §IV-B). We reproduce each as a
//! bounded distribution whose support is the paper's [min, max] and whose mean
//! equals the paper's average: [`Triangular::from_min_mean_max`] solves the
//! mode for a given mean. Rare cross-core publication delays (§IV-B2, "up to
//! 1.3e-3 s") are a [`HeavyTail`] mixture whose per-round maximum grows with
//! the number of samples — which is precisely the Table II shape.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A distribution over nonnegative durations expressed in seconds.
///
/// The trait is object-safe; the simulator stores timing models as
/// `Box<dyn SecondsDist>` where heterogeneous mixtures are needed.
pub trait SecondsDist: std::fmt::Debug {
    /// Draws one sample, in seconds.
    fn sample_secs(&self, rng: &mut SimRng) -> f64;

    /// Draws one sample as a [`SimDuration`] (rounded up to whole ns).
    fn sample(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(self.sample_secs(rng))
    }

    /// The distribution's mean, in seconds (used for analytical bounds).
    fn mean_secs(&self) -> f64;
}

/// A degenerate (constant) distribution.
///
/// # Example
///
/// ```
/// use satin_sim::dist::{Constant, SecondsDist};
/// use satin_sim::SimRng;
/// let d = Constant::new(2e-4);
/// assert_eq!(d.sample_secs(&mut SimRng::seed_from(0)), 2e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    value: f64,
}

impl Constant {
    /// A constant distribution at `value` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or non-finite.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "invalid constant {value}"
        );
        Constant { value }
    }
}

impl SecondsDist for Constant {
    fn sample_secs(&self, _rng: &mut SimRng) -> f64 {
        self.value
    }
    fn mean_secs(&self) -> f64 {
        self.value
    }
}

/// Uniform distribution over `[lo, hi)` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformSecs {
    lo: f64,
    hi: f64,
}

impl UniformSecs {
    /// Uniform over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite, negative, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo < hi,
            "invalid uniform bounds [{lo}, {hi})"
        );
        UniformSecs { lo, hi }
    }

    /// Lower bound, seconds.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound, seconds.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl SecondsDist for UniformSecs {
    fn sample_secs(&self, rng: &mut SimRng) -> f64 {
        rng.uniform_range(self.lo, self.hi)
    }
    fn mean_secs(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Triangular distribution on `[min, max]` with a given `mode`.
///
/// Used to reproduce the paper's (average, max, min) triples: the mean of a
/// triangular distribution is `(min + mode + max) / 3`, so
/// [`Triangular::from_min_mean_max`] recovers the mode from the published
/// average.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangular {
    min: f64,
    mode: f64,
    max: f64,
}

impl Triangular {
    /// Triangular with explicit `(min, mode, max)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= min <= mode <= max` and all finite.
    pub fn new(min: f64, mode: f64, max: f64) -> Self {
        assert!(
            min.is_finite() && mode.is_finite() && max.is_finite(),
            "non-finite triangular parameter"
        );
        assert!(
            0.0 <= min && min <= mode && mode <= max,
            "invalid triangular parameters min={min} mode={mode} max={max}"
        );
        Triangular { min, mode, max }
    }

    /// Calibrates the mode so the distribution's mean equals `mean`, given the
    /// paper's published `min` and `max`. The mode is clamped into
    /// `[min, max]`, which slightly biases the mean when the published average
    /// sits outside the feasible triangular range — acceptable for this
    /// reproduction since only the (min, mean, max) *shape* matters.
    ///
    /// # Panics
    ///
    /// Panics unless `min <= mean <= max`.
    pub fn from_min_mean_max(min: f64, mean: f64, max: f64) -> Self {
        assert!(
            min <= mean && mean <= max,
            "mean {mean} outside [{min}, {max}]"
        );
        let mode = (3.0 * mean - min - max).clamp(min, max);
        Triangular::new(min, mode, max)
    }

    /// Smallest possible sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Most likely sample.
    pub fn mode(&self) -> f64 {
        self.mode
    }

    /// Largest possible sample.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl SecondsDist for Triangular {
    fn sample_secs(&self, rng: &mut SimRng) -> f64 {
        let (a, c, b) = (self.min, self.mode, self.max);
        if a == b {
            return a;
        }
        let u = rng.uniform_f64();
        let fc = (c - a) / (b - a);
        if u < fc {
            a + ((b - a) * (c - a) * u).sqrt()
        } else {
            b - ((b - a) * (b - c) * (1.0 - u)).sqrt()
        }
    }
    fn mean_secs(&self) -> f64 {
        (self.min + self.mode + self.max) / 3.0
    }
}

/// Exponential distribution with a hard cap (inverse-CDF sampling).
///
/// Used for scheduler dispatch jitter: most wake-ups dispatch almost
/// immediately, with an exponential tail of contention, and a cap so a single
/// draw can never exceed physical plausibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
    cap: f64,
}

impl Exponential {
    /// Exponential with the given `mean`, truncated at `cap`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < mean <= cap` and both are finite.
    pub fn new(mean: f64, cap: f64) -> Self {
        assert!(
            mean.is_finite() && cap.is_finite() && mean > 0.0 && mean <= cap,
            "invalid exponential parameters mean={mean} cap={cap}"
        );
        Exponential { mean, cap }
    }
}

impl SecondsDist for Exponential {
    fn sample_secs(&self, rng: &mut SimRng) -> f64 {
        let u = rng.uniform_f64();
        (-self.mean * (1.0 - u).ln()).min(self.cap)
    }
    fn mean_secs(&self) -> f64 {
        // Mean of the untruncated distribution; the cap's effect is small for
        // cap >> mean, and callers only use this for rough analytical bounds.
        self.mean
    }
}

/// Pareto (power-law) distribution with scale `xm`, shape `alpha`, truncated
/// at `cap`.
///
/// Models the rare, abnormally large cross-core reading delays of §IV-B2
/// ("up to 1.3e-3 s"): the maximum of N power-law draws grows like
/// `N^(1/alpha)`, which is exactly how the paper's per-round maximum threshold
/// grows with the probing period in Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncPareto {
    xm: f64,
    alpha: f64,
    cap: f64,
}

impl TruncPareto {
    /// Pareto with scale `xm` (minimum value), shape `alpha`, cap `cap`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < xm <= cap` and `alpha > 0`, all finite.
    pub fn new(xm: f64, alpha: f64, cap: f64) -> Self {
        assert!(
            xm.is_finite() && alpha.is_finite() && cap.is_finite(),
            "non-finite pareto parameter"
        );
        assert!(
            xm > 0.0 && xm <= cap && alpha > 0.0,
            "invalid pareto parameters xm={xm} alpha={alpha} cap={cap}"
        );
        TruncPareto { xm, alpha, cap }
    }
}

impl SecondsDist for TruncPareto {
    fn sample_secs(&self, rng: &mut SimRng) -> f64 {
        let u = rng.uniform_f64();
        (self.xm / (1.0 - u).powf(1.0 / self.alpha)).min(self.cap)
    }
    fn mean_secs(&self) -> f64 {
        if self.alpha > 1.0 {
            (self.alpha * self.xm / (self.alpha - 1.0)).min(self.cap)
        } else {
            self.cap
        }
    }
}

/// A two-component mixture: a common "body" distribution plus a rare heavy
/// tail. Models the cross-core reading delays of §IV-B2: mostly ordinary
/// scheduling jitter, occasionally an abnormally large delay up to ~1.3 ms.
///
/// Because each probing round takes the **maximum** observed delay as its
/// threshold, more samples (a longer probing period) make tail hits more
/// likely — reproducing Table II's growth of the average threshold with the
/// probing period without any period-specific tuning.
#[derive(Debug, Clone)]
pub struct HeavyTail<B, T> {
    body: B,
    tail: T,
    tail_prob: f64,
}

impl<B: SecondsDist, T: SecondsDist> HeavyTail<B, T> {
    /// Mixture drawing from `tail` with probability `tail_prob`, else `body`.
    ///
    /// # Panics
    ///
    /// Panics if `tail_prob` is not in `[0, 1]`.
    pub fn new(body: B, tail: T, tail_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&tail_prob),
            "tail probability {tail_prob} out of range"
        );
        HeavyTail {
            body,
            tail,
            tail_prob,
        }
    }

    /// Probability of drawing from the tail component.
    pub fn tail_prob(&self) -> f64 {
        self.tail_prob
    }
}

impl<B: SecondsDist, T: SecondsDist> SecondsDist for HeavyTail<B, T> {
    fn sample_secs(&self, rng: &mut SimRng) -> f64 {
        if rng.chance(self.tail_prob) {
            self.tail.sample_secs(rng)
        } else {
            self.body.sample_secs(rng)
        }
    }
    fn mean_secs(&self) -> f64 {
        self.tail_prob * self.tail.mean_secs() + (1.0 - self.tail_prob) * self.body.mean_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mean_of(d: &dyn SecondsDist, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        (0..n).map(|_| d.sample_secs(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Constant::new(5e-4);
        let mut rng = SimRng::seed_from(0);
        for _ in 0..10 {
            assert_eq!(d.sample_secs(&mut rng), 5e-4);
        }
    }

    #[test]
    fn uniform_bounds_respected() {
        let d = UniformSecs::new(2.38e-6, 3.60e-6);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10_000 {
            let v = d.sample_secs(&mut rng);
            assert!((2.38e-6..3.60e-6).contains(&v));
        }
    }

    #[test]
    fn uniform_empirical_mean_close() {
        let d = UniformSecs::new(0.0, 1.0);
        let m = mean_of(&d, 50_000, 2);
        assert!((m - 0.5).abs() < 0.01, "mean {m}");
    }

    #[test]
    fn triangular_from_paper_table1_row() {
        // A57 hash 1-byte: avg 6.71e-9, max 7.50e-9, min 6.67e-9 (Table I).
        let d = Triangular::from_min_mean_max(6.67e-9, 6.71e-9, 7.50e-9);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let v = d.sample_secs(&mut rng);
            assert!((6.67e-9..=7.50e-9).contains(&v));
        }
        // Mode clamps to min here (3*mean - min - max < min), so the
        // distribution leans hard toward the minimum, like the paper's data.
        assert_eq!(d.mode(), 6.67e-9);
    }

    #[test]
    fn triangular_mean_matches_when_feasible() {
        let d = Triangular::from_min_mean_max(1.0, 2.0, 3.0);
        assert!((d.mean_secs() - 2.0).abs() < 1e-12);
        let m = mean_of(&d, 50_000, 4);
        assert!((m - 2.0).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn triangular_degenerate_point() {
        let d = Triangular::new(2.0, 2.0, 2.0);
        assert_eq!(d.sample_secs(&mut SimRng::seed_from(0)), 2.0);
    }

    #[test]
    fn heavy_tail_rarely_fires() {
        let d = HeavyTail::new(Constant::new(1e-4), Constant::new(1.3e-3), 0.001);
        let mut rng = SimRng::seed_from(5);
        let n = 100_000;
        let tail_hits = (0..n).filter(|_| d.sample_secs(&mut rng) > 1e-3).count();
        let rate = tail_hits as f64 / n as f64;
        assert!((rate - 0.001).abs() < 0.0005, "tail rate {rate}");
    }

    #[test]
    fn heavy_tail_max_grows_with_samples() {
        // Few samples rarely contain a tail hit; many samples almost surely do.
        let d = HeavyTail::new(Constant::new(1e-4), Constant::new(1.3e-3), 0.0005);
        let max_of = |n: usize, seed: u64| {
            let mut rng = SimRng::seed_from(seed);
            (0..n)
                .map(|_| d.sample_secs(&mut rng))
                .fold(0.0f64, f64::max)
        };
        let small: f64 = (0..20).map(|s| max_of(100, s)).sum::<f64>() / 20.0;
        let large: f64 = (0..20).map(|s| max_of(20_000, 100 + s)).sum::<f64>() / 20.0;
        assert!(
            large > small,
            "expected per-round max to grow: {small} vs {large}"
        );
    }

    #[test]
    fn exponential_capped_and_positive() {
        let d = Exponential::new(1e-5, 1e-4);
        let mut rng = SimRng::seed_from(9);
        for _ in 0..10_000 {
            let v = d.sample_secs(&mut rng);
            assert!((0.0..=1e-4).contains(&v));
        }
        let m = mean_of(&d, 100_000, 10);
        assert!((m - 1e-5).abs() < 2e-6, "mean {m}");
    }

    #[test]
    fn pareto_support_and_growth() {
        let d = TruncPareto::new(1e-4, 1.6, 1.3e-3);
        let mut rng = SimRng::seed_from(11);
        let mut max_small = 0.0f64;
        let mut max_large = 0.0f64;
        for i in 0..100_000 {
            let v = d.sample_secs(&mut rng);
            assert!((1e-4..=1.3e-3).contains(&v));
            if i < 100 {
                max_small = max_small.max(v);
            }
            max_large = max_large.max(v);
        }
        assert!(max_large >= max_small);
    }

    #[test]
    fn pareto_mean_formula() {
        let d = TruncPareto::new(1.0, 2.0, 1e9);
        assert!((d.mean_secs() - 2.0).abs() < 1e-9);
        // alpha <= 1: mean reported as the cap.
        let d = TruncPareto::new(1.0, 0.5, 10.0);
        assert_eq!(d.mean_secs(), 10.0);
    }

    proptest! {
        #[test]
        fn prop_triangular_in_support(
            min in 0.0f64..1.0,
            spread in 0.001f64..1.0,
            frac in 0.0f64..=1.0,
            seed: u64,
        ) {
            let max = min + spread;
            let mode = min + frac * spread;
            let d = Triangular::new(min, mode, max);
            let v = d.sample_secs(&mut SimRng::seed_from(seed));
            prop_assert!(v >= min - 1e-12 && v <= max + 1e-12);
        }

        #[test]
        fn prop_from_min_mean_max_mode_in_support(
            min in 0.0f64..1.0,
            spread in 0.001f64..1.0,
            frac in 0.0f64..=1.0,
        ) {
            let max = min + spread;
            let mean = min + frac * spread;
            let d = Triangular::from_min_mean_max(min, mean, max);
            prop_assert!(d.mode() >= min && d.mode() <= max);
        }
    }
}
