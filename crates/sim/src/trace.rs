//! Bounded, structured event tracing.
//!
//! Experiments (e.g. the Figure 3 race-condition timeline) need a record of
//! *what happened when*. [`TraceLog`] is a bounded ring of timestamped,
//! categorized entries that components append to and reports read back.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A typed trace category.
///
/// The recurring categories emitted by the machine, the secure service, and
/// the attack models are named variants, so call sites and filters can't
/// drift apart through typos. Ad-hoc categories (workload bodies, tests,
/// examples) use [`TraceCategory::Custom`]; `From<&'static str>` normalizes
/// known strings to their variant, so legacy string call sites keep working
/// and always compare equal to the typed form.
#[derive(Debug, Clone, Copy, Eq)]
pub enum TraceCategory {
    /// A core entered the secure world (`secure.enter`).
    SecureEnter,
    /// A core left the secure world (`secure.exit`).
    SecureExit,
    /// An introspection scan window opened (`secure.scan`).
    SecureScan,
    /// SATIN restored tampered kernel bytes (`satin.repair`).
    SatinRepair,
    /// SATIN raised an integrity alarm (`satin.alarm`).
    SatinAlarm,
    /// The rootkit installed its hook (`attack.install`).
    AttackInstall,
    /// The rootkit restored clean bytes to dodge a scan (`attack.restore`).
    AttackRestore,
    /// The rootkit re-hid after a scan passed (`attack.hide`).
    AttackHide,
    /// The TZ-Evader predicted the next scan (`attack.predict`).
    AttackPredict,
    /// The KProber-1 probe task observed a timing anomaly
    /// (`attack.kprober1`).
    AttackKprober,
    /// Any other category, by its string name.
    Custom(&'static str),
}

impl TraceCategory {
    /// The category's stable string name, e.g. `"secure.enter"`.
    pub const fn as_str(self) -> &'static str {
        match self {
            TraceCategory::SecureEnter => "secure.enter",
            TraceCategory::SecureExit => "secure.exit",
            TraceCategory::SecureScan => "secure.scan",
            TraceCategory::SatinRepair => "satin.repair",
            TraceCategory::SatinAlarm => "satin.alarm",
            TraceCategory::AttackInstall => "attack.install",
            TraceCategory::AttackRestore => "attack.restore",
            TraceCategory::AttackHide => "attack.hide",
            TraceCategory::AttackPredict => "attack.predict",
            TraceCategory::AttackKprober => "attack.kprober1",
            TraceCategory::Custom(name) => name,
        }
    }
}

impl From<&'static str> for TraceCategory {
    fn from(name: &'static str) -> Self {
        match name {
            "secure.enter" => TraceCategory::SecureEnter,
            "secure.exit" => TraceCategory::SecureExit,
            "secure.scan" => TraceCategory::SecureScan,
            "satin.repair" => TraceCategory::SatinRepair,
            "satin.alarm" => TraceCategory::SatinAlarm,
            "attack.install" => TraceCategory::AttackInstall,
            "attack.restore" => TraceCategory::AttackRestore,
            "attack.hide" => TraceCategory::AttackHide,
            "attack.predict" => TraceCategory::AttackPredict,
            "attack.kprober1" => TraceCategory::AttackKprober,
            other => TraceCategory::Custom(other),
        }
    }
}

// Equality and hashing go through the string name so a hand-built
// `Custom("secure.enter")` still equals `SecureEnter`.
impl PartialEq for TraceCategory {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Hash for TraceCategory {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl fmt::Display for TraceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` honors width/alignment flags, e.g. `{:<18}`.
        f.pad(self.as_str())
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub time: SimTime,
    /// Stable machine-readable category, e.g. [`TraceCategory::SecureEnter`].
    pub category: TraceCategory,
    /// Human-readable details.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:<18} {}", self.time, self.category, self.detail)
    }
}

/// A bounded in-memory trace.
///
/// When full, the oldest entries are dropped (and counted), so long
/// experiments keep the most recent window without unbounded memory growth.
///
/// # Example
///
/// ```
/// use satin_sim::{TraceLog, SimTime};
/// let mut log = TraceLog::with_capacity(2);
/// log.record(SimTime::from_nanos(1), "a", "first");
/// log.record(SimTime::from_nanos(2), "b", "second");
/// log.record(SimTime::from_nanos(3), "a", "third");
/// assert_eq!(log.len(), 2);        // capacity bound
/// assert_eq!(log.dropped(), 1);    // oldest evicted
/// assert_eq!(log.by_category("a").count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    entries: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl TraceLog {
    /// Default capacity: enough for any single experiment round.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates an enabled log with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates an enabled log with an explicit capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be nonzero");
        TraceLog {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// A log that records nothing (for hot benchmark paths). It keeps the
    /// default capacity so a later [`set_enabled(true)`](Self::set_enabled)
    /// behaves like a fresh log rather than one that evicts on every record.
    pub fn disabled() -> Self {
        TraceLog {
            entries: VecDeque::new(),
            capacity: Self::DEFAULT_CAPACITY,
            dropped: 0,
            enabled: false,
        }
    }

    /// `true` if recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off without clearing existing entries.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Appends an entry (no-op when disabled).
    ///
    /// `category` accepts either a [`TraceCategory`] or a `&'static str`
    /// (normalized through `From`).
    pub fn record(
        &mut self,
        time: SimTime,
        category: impl Into<TraceCategory>,
        detail: impl Into<String>,
    ) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEvent {
            time,
            category: category.into(),
            detail: detail.into(),
        });
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.entries.iter()
    }

    /// Iterates over entries in a category.
    pub fn by_category<'a>(
        &'a self,
        category: &'a str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.entries
            .iter()
            .filter(move |e| e.category.as_str() == category)
    }

    /// Clears all entries and the dropped counter.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.dropped = 0;
    }

    /// Renders the trace (optionally filtered by category prefix) as text.
    pub fn render(&self, category_prefix: Option<&str>) -> String {
        let mut out = String::new();
        for e in &self.entries {
            if let Some(p) = category_prefix {
                if !e.category.as_str().starts_with(p) {
                    continue;
                }
            }
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut log = TraceLog::new();
        log.record(SimTime::from_nanos(1), "x", "one");
        log.record(SimTime::from_nanos(2), "y", "two");
        let cats: Vec<_> = log.iter().map(|e| e.category.as_str()).collect();
        assert_eq!(cats, vec!["x", "y"]);
    }

    #[test]
    fn category_normalizes_known_strings() {
        assert_eq!(
            TraceCategory::from("secure.enter"),
            TraceCategory::SecureEnter
        );
        assert_eq!(
            TraceCategory::from("golden.rt"),
            TraceCategory::Custom("golden.rt")
        );
        // Equality and Display go through the string name.
        assert_eq!(
            TraceCategory::Custom("secure.enter"),
            TraceCategory::SecureEnter
        );
        assert_eq!(TraceCategory::SecureScan.to_string(), "secure.scan");
        assert_eq!(
            format!("{:<14}", TraceCategory::SecureScan),
            "secure.scan   "
        );
    }

    #[test]
    fn typed_and_string_records_are_interchangeable() {
        let mut log = TraceLog::new();
        log.record(SimTime::from_nanos(1), TraceCategory::SecureEnter, "typed");
        log.record(SimTime::from_nanos(2), "secure.enter", "string");
        assert_eq!(log.by_category("secure.enter").count(), 2);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = TraceLog::with_capacity(3);
        for i in 0..5u64 {
            log.record(SimTime::from_nanos(i), "c", i.to_string());
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.iter().next().unwrap().detail, "2");
    }

    #[test]
    fn disabled_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(SimTime::ZERO, "c", "ignored");
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn disabled_then_enabled_keeps_default_capacity() {
        // Regression: `disabled()` used to report `capacity: 1`, so a log
        // re-enabled later silently evicted every record but the last.
        let mut log = TraceLog::disabled();
        log.set_enabled(true);
        for i in 0..100u64 {
            log.record(SimTime::from_nanos(i), "c", i.to_string());
        }
        assert_eq!(log.len(), 100);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn toggle_enable() {
        let mut log = TraceLog::new();
        log.set_enabled(false);
        log.record(SimTime::ZERO, "c", "skipped");
        log.set_enabled(true);
        log.record(SimTime::ZERO, "c", "kept");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn category_filter_and_render() {
        let mut log = TraceLog::new();
        log.record(SimTime::from_nanos(1), "secure.enter", "core 0");
        log.record(SimTime::from_nanos(2), "attack.hide", "rootkit");
        log.record(SimTime::from_nanos(3), "secure.exit", "core 0");
        assert_eq!(log.by_category("secure.enter").count(), 1);
        let rendered = log.render(Some("secure."));
        assert!(rendered.contains("secure.enter"));
        assert!(!rendered.contains("attack.hide"));
        assert_eq!(rendered.lines().count(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut log = TraceLog::with_capacity(1);
        log.record(SimTime::ZERO, "a", "1");
        log.record(SimTime::ZERO, "a", "2");
        assert_eq!(log.dropped(), 1);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }
}
