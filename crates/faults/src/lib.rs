#![warn(missing_docs)]
//! Deterministic fault injection and the shared error hierarchy.
//!
//! SATIN's claim is that its non-deterministic scheduler wins the
//! introspection race *even under perturbation* (DSN 2019, §V–VI); this
//! crate supplies the perturbation. A `FaultPlan` (data, defined in
//! `satin-scenario` so every layer that speaks `Scenario` can carry it)
//! is armed here as a [`FaultInjector`] for one `(seed, attempt)` run:
//!
//! - [`inject`]: the injector — scheduler-jitter spikes, dropped or
//!   delayed cross-core publications, corrupted hash windows, and
//!   scheduled worker aborts, all RNG-free so runs stay byte-identical
//!   across `--jobs` values;
//! - [`error`]: [`SatinError`], the workspace-wide aggregate every
//!   fallible campaign path returns instead of panicking — injected
//!   faults surface as structured `SeedOutcome::Failed` rows, never as
//!   process aborts.
//!
//! Layering: sits between `satin-scenario` and `satin-system`; the
//! system threads an injector through its tick/publication/scan paths,
//! and `satin-bench`'s campaign runner retries failed seeds under the
//! plan's `max_attempts`/`backoff_ms` policy.
//!
//! # Example
//!
//! ```
//! use satin_faults::{FaultInjector, PublicationFate};
//! use satin_scenario::FaultPlan;
//! use satin_sim::SimTime;
//!
//! let mut inj = FaultInjector::new(FaultPlan::smoke(), 7, 1);
//! // The smoke plan drops the first publication after 3 s on every seed…
//! assert_eq!(inj.publication_fate(SimTime::from_secs(4)), PublicationFate::Drop);
//! // …but only aborts the worker on seed 42.
//! assert!(inj.check_abort(SimTime::from_secs(7)).is_ok());
//! assert!(FaultInjector::new(FaultPlan::smoke(), 42, 1)
//!     .check_abort(SimTime::from_secs(7))
//!     .is_err());
//! ```

pub mod error;
pub mod inject;

pub use error::SatinError;
pub use inject::{
    armed_kinds, FaultError, FaultInjector, FaultStats, PublicationFate, FAULT_ABORT,
    FAULT_CORRUPT_WINDOW, FAULT_DELAYED_PUB, FAULT_DROPPED_PUB, FAULT_JITTER,
};
