//! The shared error hierarchy for panic-free campaigns.
//!
//! Every layer already has a typed error (`MemError`, `HwError`,
//! `SimError`, `ParseError`); [`SatinError`] aggregates them so fallible
//! paths — service boot, campaign workers, injected faults — can return
//! one structured error instead of aborting the process. The campaign
//! runner renders these into `SeedOutcome::Failed` rows.

use crate::inject::FaultError;
use satin_hw::HwError;
use satin_mem::MemError;
use satin_scenario::ParseError;
use satin_sim::SimError;
use std::error::Error;
use std::fmt;

/// The workspace-wide error: any structured failure a campaign path can
/// surface instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SatinError {
    /// A physical-memory access failed.
    Mem(MemError),
    /// A hardware/world-switch operation failed.
    Hw(HwError),
    /// The simulation engine refused an operation.
    Sim(SimError),
    /// A scenario or fault-plan descriptor failed to parse.
    Scenario(ParseError),
    /// An injected fault fired (the *expected* failure mode under a
    /// fault plan — campaigns salvage these as structured rows).
    Fault(FaultError),
    /// A secure service failed to boot.
    Boot {
        /// Which boot stage failed (e.g. `"plan"`, `"measure"`, `"arm"`).
        stage: &'static str,
        /// Human-readable description of the failure.
        detail: String,
    },
}

impl fmt::Display for SatinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatinError::Mem(e) => write!(f, "memory: {e}"),
            SatinError::Hw(e) => write!(f, "hardware: {e}"),
            SatinError::Sim(e) => write!(f, "simulation: {e}"),
            SatinError::Scenario(e) => write!(f, "scenario: {e}"),
            SatinError::Fault(e) => write!(f, "injected fault: {e}"),
            SatinError::Boot { stage, detail } => write!(f, "boot ({stage}): {detail}"),
        }
    }
}

impl Error for SatinError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SatinError::Mem(e) => Some(e),
            SatinError::Hw(e) => Some(e),
            SatinError::Sim(e) => Some(e),
            SatinError::Scenario(e) => Some(e),
            SatinError::Fault(e) => Some(e),
            SatinError::Boot { .. } => None,
        }
    }
}

impl From<MemError> for SatinError {
    fn from(e: MemError) -> Self {
        SatinError::Mem(e)
    }
}

impl From<HwError> for SatinError {
    fn from(e: HwError) -> Self {
        SatinError::Hw(e)
    }
}

impl From<SimError> for SatinError {
    fn from(e: SimError) -> Self {
        SatinError::Sim(e)
    }
}

impl From<ParseError> for SatinError {
    fn from(e: ParseError) -> Self {
        SatinError::Scenario(e)
    }
}

impl From<FaultError> for SatinError {
    fn from(e: FaultError) -> Self {
        SatinError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_sim::SimTime;

    #[test]
    fn display_prefixes_layer() {
        let e: SatinError = SimError::EventBudgetExhausted { budget: 9 }.into();
        assert!(e.to_string().starts_with("simulation:"), "{e}");
        let e: SatinError = FaultError::WorkerAbort {
            at: SimTime::from_secs(6),
            attempt: 1,
        }
        .into();
        assert!(e.to_string().starts_with("injected fault:"), "{e}");
        let e = SatinError::Boot {
            stage: "plan",
            detail: "area too large".to_string(),
        };
        assert!(e.to_string().contains("boot (plan)"), "{e}");
    }

    #[test]
    fn source_chains_to_layer_error() {
        let e: SatinError = SimError::EventBudgetExhausted { budget: 9 }.into();
        assert!(e.source().is_some());
        let e = SatinError::Boot {
            stage: "arm",
            detail: "x".to_string(),
        };
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SatinError>();
    }
}
