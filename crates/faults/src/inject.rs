//! The runtime half of fault injection: a [`FaultInjector`] armed from a
//! [`FaultPlan`] for one `(seed, attempt)` run.
//!
//! The injector is deliberately RNG-free: which faults fire is a pure
//! function of the plan, the campaign seed, the 1-based attempt number,
//! and the sequence of simulated times the system hands it. Two runs of
//! the same seed therefore inject the same faults at the same events, so
//! fault campaigns stay byte-identical across `--jobs` values and golden
//! snapshots can pin them.

use satin_scenario::FaultPlan;
use satin_sim::{SimDuration, SimTime};
use std::error::Error;
use std::fmt;

/// A failure produced by the fault layer itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// An injected worker abort fired mid-campaign.
    WorkerAbort {
        /// Simulated time the abort fired.
        at: SimTime,
        /// 1-based attempt number that aborted.
        attempt: u32,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::WorkerAbort { at, attempt } => {
                write!(f, "worker abort at {at} (attempt {attempt})")
            }
        }
    }
}

impl Error for FaultError {}

/// What the injector decided about one cross-core publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublicationFate {
    /// Deliver normally.
    Deliver,
    /// Drop it: the normal world never observes this publication.
    Drop,
    /// Deliver it, but this much later.
    Delay(SimDuration),
}

/// Counters of faults that actually fired during one run.
///
/// Zero across the board for clean runs, so reports that print counters
/// only when non-zero stay byte-identical to their pre-fault form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Scheduler-jitter spikes injected.
    pub jitter_spikes: u64,
    /// Cross-core publications dropped.
    pub publications_dropped: u64,
    /// Cross-core publications delayed.
    pub publications_delayed: u64,
    /// Hash windows corrupted.
    pub windows_corrupted: u64,
}

/// Canonical counter name for an injected scheduler-jitter spike.
pub const FAULT_JITTER: &str = "fault.jitter";
/// Canonical counter name for a dropped cross-core publication.
pub const FAULT_DROPPED_PUB: &str = "fault.dropped_pub";
/// Canonical counter name for a delayed cross-core publication.
pub const FAULT_DELAYED_PUB: &str = "fault.delayed_pub";
/// Canonical counter name for a corrupted hash window.
pub const FAULT_CORRUPT_WINDOW: &str = "fault.corrupt_window";
/// Canonical counter name for a scheduled worker abort.
pub const FAULT_ABORT: &str = "fault.abort";

impl FaultStats {
    /// Did any fault fire?
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }

    /// Total faults fired.
    pub fn total(&self) -> u64 {
        self.jitter_spikes
            + self.publications_dropped
            + self.publications_delayed
            + self.windows_corrupted
    }

    /// The stats as `(canonical counter name, count)` pairs, in the fixed
    /// name order shared by event streams and `--metrics-json` output.
    /// Worker aborts are not counted here — they surface as campaign
    /// errors, not injector stats.
    pub fn counters(&self) -> [(&'static str, u64); 4] {
        [
            (FAULT_JITTER, self.jitter_spikes),
            (FAULT_DROPPED_PUB, self.publications_dropped),
            (FAULT_DELAYED_PUB, self.publications_delayed),
            (FAULT_CORRUPT_WINDOW, self.windows_corrupted),
        ]
    }
}

/// The canonical names of the fault kinds `plan` arms for `(seed,
/// attempt)`, in fixed declaration order — what a `cell.fault_armed`
/// event stream reports before the attempt runs.
///
/// "Armed" means the spec exists and its seed filter matches; whether a
/// fault actually *fires* still depends on simulated time reaching its
/// schedule. The abort is additionally gated on the attempt being within
/// its failing budget, mirroring [`FaultInjector::check_abort`].
pub fn armed_kinds(plan: &FaultPlan, seed: u64, attempt: u32) -> Vec<&'static str> {
    let mut kinds = Vec::new();
    if plan.jitter.is_some_and(|s| s.seed.matches(seed)) {
        kinds.push(FAULT_JITTER);
    }
    if plan.drop_publication.is_some_and(|s| s.seed.matches(seed)) {
        kinds.push(FAULT_DROPPED_PUB);
    }
    if plan.delay_publication.is_some_and(|s| s.seed.matches(seed)) {
        kinds.push(FAULT_DELAYED_PUB);
    }
    if plan.corrupt_window.is_some_and(|s| s.seed.matches(seed)) {
        kinds.push(FAULT_CORRUPT_WINDOW);
    }
    if plan
        .abort
        .is_some_and(|s| s.seed.matches(seed) && attempt <= s.attempts)
    {
        kinds.push(FAULT_ABORT);
    }
    kinds
}

/// A [`FaultPlan`] armed for one `(seed, attempt)` run.
///
/// Each fault kind is one-shot: the first qualifying event at or after
/// the spec's scheduled time absorbs it, later events pass untouched.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    attempt: u32,
    jitter_armed: bool,
    drop_armed: bool,
    delay_armed: bool,
    corrupt_armed: bool,
    stats: FaultStats,
}

impl FaultInjector {
    /// Arms `plan` for campaign `seed`, attempt `attempt` (1-based).
    /// Specs whose seed filter does not match `seed` stay disarmed.
    pub fn new(plan: FaultPlan, seed: u64, attempt: u32) -> Self {
        let matches = |f: satin_scenario::SeedFilter| f.matches(seed);
        FaultInjector {
            jitter_armed: plan.jitter.is_some_and(|s| matches(s.seed)),
            drop_armed: plan.drop_publication.is_some_and(|s| matches(s.seed)),
            delay_armed: plan.delay_publication.is_some_and(|s| matches(s.seed)),
            corrupt_armed: plan.corrupt_window.is_some_and(|s| matches(s.seed)),
            plan,
            seed,
            attempt,
            stats: FaultStats::default(),
        }
    }

    /// The campaign seed this injector is armed for.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The 1-based attempt number this injector is armed for.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Counters of faults fired so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Extra delay for the tick boundary being scheduled at `now`, if
    /// the jitter spike fires here (one-shot).
    pub fn tick_jitter(&mut self, now: SimTime) -> Option<SimDuration> {
        let spec = self.plan.jitter?;
        if !self.jitter_armed || now < spec.at {
            return None;
        }
        self.jitter_armed = false;
        self.stats.jitter_spikes += 1;
        Some(spec.extra)
    }

    /// Decides the fate of the publication happening at `now`. A drop
    /// and a delay armed for the same publication resolve to a drop;
    /// the delay stays armed for the next one.
    pub fn publication_fate(&mut self, now: SimTime) -> PublicationFate {
        if let Some(spec) = self.plan.drop_publication {
            if self.drop_armed && now >= spec.at {
                self.drop_armed = false;
                self.stats.publications_dropped += 1;
                return PublicationFate::Drop;
            }
        }
        if let Some(spec) = self.plan.delay_publication {
            if self.delay_armed && now >= spec.at {
                self.delay_armed = false;
                self.stats.publications_delayed += 1;
                return PublicationFate::Delay(spec.by);
            }
        }
        PublicationFate::Deliver
    }

    /// XORs the scan window observed at `now` if the corruption fires
    /// here (one-shot). Returns whether the bytes were touched.
    pub fn corrupt_window(&mut self, now: SimTime, bytes: &mut [u8]) -> bool {
        let Some(spec) = self.plan.corrupt_window else {
            return false;
        };
        if !self.corrupt_armed || now < spec.at || bytes.is_empty() {
            return false;
        }
        self.corrupt_armed = false;
        self.stats.windows_corrupted += 1;
        for b in bytes {
            *b ^= spec.xor;
        }
        true
    }

    /// Checks whether the injected worker abort has fired by `now`.
    ///
    /// # Errors
    ///
    /// [`FaultError::WorkerAbort`] once simulated time reaches the
    /// abort's schedule on a matching seed, while the attempt number is
    /// within the spec's failing range.
    pub fn check_abort(&self, now: SimTime) -> Result<(), FaultError> {
        if let Some(spec) = self.plan.abort {
            if spec.seed.matches(self.seed) && now >= spec.at && self.attempt <= spec.attempts {
                return Err(FaultError::WorkerAbort {
                    at: now,
                    attempt: self.attempt,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_scenario::{
        AbortSpec, CorruptWindowSpec, DelayPublicationSpec, DropPublicationSpec, JitterSpec,
        SeedFilter,
    };

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::default(), 42, 1);
        assert_eq!(inj.tick_jitter(at(10)), None);
        assert_eq!(inj.publication_fate(at(10)), PublicationFate::Deliver);
        let mut buf = [1, 2, 3];
        assert!(!inj.corrupt_window(at(10), &mut buf));
        assert_eq!(buf, [1, 2, 3]);
        inj.check_abort(at(10)).unwrap();
        assert!(!inj.stats().any());
    }

    #[test]
    fn jitter_is_one_shot_and_time_gated() {
        let plan = FaultPlan {
            jitter: Some(JitterSpec {
                seed: SeedFilter::All,
                at: at(5),
                extra: SimDuration::from_micros(100),
            }),
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 7, 1);
        assert_eq!(inj.tick_jitter(at(4)), None, "before schedule");
        assert_eq!(inj.tick_jitter(at(5)), Some(SimDuration::from_micros(100)));
        assert_eq!(inj.tick_jitter(at(6)), None, "one-shot");
        assert_eq!(inj.stats().jitter_spikes, 1);
    }

    #[test]
    fn seed_filter_disarms_mismatched_seeds() {
        let plan = FaultPlan {
            drop_publication: Some(DropPublicationSpec {
                seed: SeedFilter::Only(42),
                at: at(1),
            }),
            ..FaultPlan::default()
        };
        let mut hit = FaultInjector::new(plan, 42, 1);
        let mut miss = FaultInjector::new(plan, 7, 1);
        assert_eq!(hit.publication_fate(at(2)), PublicationFate::Drop);
        assert_eq!(miss.publication_fate(at(2)), PublicationFate::Deliver);
    }

    #[test]
    fn drop_wins_over_delay_then_delay_fires_next() {
        let plan = FaultPlan {
            drop_publication: Some(DropPublicationSpec {
                seed: SeedFilter::All,
                at: at(1),
            }),
            delay_publication: Some(DelayPublicationSpec {
                seed: SeedFilter::All,
                at: at(1),
                by: SimDuration::from_micros(5),
            }),
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 7, 1);
        assert_eq!(inj.publication_fate(at(2)), PublicationFate::Drop);
        assert_eq!(
            inj.publication_fate(at(3)),
            PublicationFate::Delay(SimDuration::from_micros(5))
        );
        assert_eq!(inj.publication_fate(at(4)), PublicationFate::Deliver);
        assert_eq!(inj.stats().total(), 2);
    }

    #[test]
    fn corruption_xors_every_byte_once() {
        let plan = FaultPlan {
            corrupt_window: Some(CorruptWindowSpec {
                seed: SeedFilter::All,
                at: at(1),
                xor: 0xff,
            }),
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 7, 1);
        let mut buf = [0x00, 0x0f];
        assert!(inj.corrupt_window(at(2), &mut buf));
        assert_eq!(buf, [0xff, 0xf0]);
        assert!(!inj.corrupt_window(at(3), &mut buf), "one-shot");
        assert_eq!(buf, [0xff, 0xf0]);
    }

    #[test]
    fn abort_respects_attempt_budget() {
        let plan = FaultPlan {
            abort: Some(AbortSpec {
                seed: SeedFilter::All,
                at: at(5),
                attempts: 2,
            }),
            max_attempts: 3,
            ..FaultPlan::default()
        };
        let first = FaultInjector::new(plan, 7, 1);
        first.check_abort(at(4)).unwrap();
        assert_eq!(
            first.check_abort(at(5)),
            Err(FaultError::WorkerAbort {
                at: at(5),
                attempt: 1
            })
        );
        let second = FaultInjector::new(plan, 7, 2);
        assert!(second.check_abort(at(9)).is_err(), "attempt 2 still fails");
        let third = FaultInjector::new(plan, 7, 3);
        third.check_abort(at(9)).unwrap();
    }

    #[test]
    fn armed_kinds_track_seed_filter_and_attempt_budget() {
        assert!(armed_kinds(&FaultPlan::default(), 7, 1).is_empty());
        // Smoke: drop on every seed; abort only on 42, every attempt.
        let smoke = FaultPlan::smoke();
        assert_eq!(armed_kinds(&smoke, 7, 1), vec![FAULT_DROPPED_PUB]);
        assert_eq!(
            armed_kinds(&smoke, 42, 2),
            vec![FAULT_DROPPED_PUB, FAULT_ABORT]
        );
        // Chaos: everything armed on attempt 1; the abort (budget 1)
        // stands down on the retry.
        let chaos = FaultPlan::chaos();
        assert_eq!(
            armed_kinds(&chaos, 7, 1),
            vec![
                FAULT_JITTER,
                FAULT_DROPPED_PUB,
                FAULT_DELAYED_PUB,
                FAULT_CORRUPT_WINDOW,
                FAULT_ABORT
            ]
        );
        assert_eq!(
            armed_kinds(&chaos, 7, 2),
            vec![
                FAULT_JITTER,
                FAULT_DROPPED_PUB,
                FAULT_DELAYED_PUB,
                FAULT_CORRUPT_WINDOW
            ]
        );
    }

    #[test]
    fn stats_counters_use_canonical_names() {
        let stats = FaultStats {
            jitter_spikes: 1,
            publications_dropped: 2,
            publications_delayed: 3,
            windows_corrupted: 4,
        };
        assert_eq!(
            stats.counters(),
            [
                ("fault.jitter", 1),
                ("fault.dropped_pub", 2),
                ("fault.delayed_pub", 3),
                ("fault.corrupt_window", 4),
            ]
        );
    }

    #[test]
    fn same_inputs_same_decisions() {
        let plan = FaultPlan::chaos();
        let run = |seed| {
            let mut inj = FaultInjector::new(plan, seed, 1);
            let mut fates = Vec::new();
            for ms in (0..10_000).step_by(500) {
                if let Some(d) = inj.tick_jitter(at(ms)) {
                    fates.push(format!("jitter+{d}"));
                }
                fates.push(format!("{:?}", inj.publication_fate(at(ms))));
            }
            fates
        };
        assert_eq!(run(7), run(7));
    }
}
