//! The TrustZone two-world model and ARMv8-A exception levels (paper §II-A).

use std::fmt;

/// The two TrustZone worlds.
///
/// The secure world has higher privilege: it can read normal-world memory and
/// registers, but not vice versa. In the simulation this asymmetry is enforced
/// structurally — secure-world state (secure timers, secure storage) rejects
/// accesses tagged with [`World::Normal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum World {
    /// The rich OS world (potentially compromised).
    Normal,
    /// The trusted world (assumed uncompromised, per the paper's threat model).
    Secure,
}

impl World {
    /// `true` for [`World::Secure`].
    pub fn is_secure(self) -> bool {
        matches!(self, World::Secure)
    }
}

impl fmt::Display for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            World::Normal => f.write_str("normal"),
            World::Secure => f.write_str("secure"),
        }
    }
}

/// ARMv8-A (AArch64) exception levels, Figure 1 of the paper.
///
/// There is no S-EL2: the secure world has no hypervisor layer. SATIN's
/// introspection modules live at S-EL1 (inside the Test Secure Payload);
/// the secure monitor lives at EL3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionLevel {
    /// Normal-world user applications.
    El0,
    /// Normal-world guest OS kernel (the rich OS).
    El1,
    /// Normal-world hypervisor.
    El2,
    /// Secure monitor (world switching).
    El3,
    /// Secure-world applications.
    SEl0,
    /// Secure OS (Test Secure Payload in the paper's prototype).
    SEl1,
}

impl ExceptionLevel {
    /// The world this level belongs to. EL3 belongs to the secure world.
    pub fn world(self) -> World {
        match self {
            ExceptionLevel::El0 | ExceptionLevel::El1 | ExceptionLevel::El2 => World::Normal,
            ExceptionLevel::El3 | ExceptionLevel::SEl0 | ExceptionLevel::SEl1 => World::Secure,
        }
    }

    /// Numeric privilege rank within its world (higher = more privileged).
    pub fn privilege_rank(self) -> u8 {
        match self {
            ExceptionLevel::El0 | ExceptionLevel::SEl0 => 0,
            ExceptionLevel::El1 | ExceptionLevel::SEl1 => 1,
            ExceptionLevel::El2 => 2,
            ExceptionLevel::El3 => 3,
        }
    }
}

impl fmt::Display for ExceptionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExceptionLevel::El0 => "EL0",
            ExceptionLevel::El1 => "EL1",
            ExceptionLevel::El2 => "EL2",
            ExceptionLevel::El3 => "EL3",
            ExceptionLevel::SEl0 => "S-EL0",
            ExceptionLevel::SEl1 => "S-EL1",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_mapping() {
        assert_eq!(ExceptionLevel::El0.world(), World::Normal);
        assert_eq!(ExceptionLevel::El1.world(), World::Normal);
        assert_eq!(ExceptionLevel::El2.world(), World::Normal);
        assert_eq!(ExceptionLevel::El3.world(), World::Secure);
        assert_eq!(ExceptionLevel::SEl0.world(), World::Secure);
        assert_eq!(ExceptionLevel::SEl1.world(), World::Secure);
    }

    #[test]
    fn privilege_ordering() {
        assert!(ExceptionLevel::El3.privilege_rank() > ExceptionLevel::El2.privilege_rank());
        assert!(ExceptionLevel::El1.privilege_rank() > ExceptionLevel::El0.privilege_rank());
        assert_eq!(
            ExceptionLevel::SEl1.privilege_rank(),
            ExceptionLevel::El1.privilege_rank()
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(World::Normal.to_string(), "normal");
        assert_eq!(World::Secure.to_string(), "secure");
        assert_eq!(ExceptionLevel::SEl1.to_string(), "S-EL1");
        assert!(World::Secure.is_secure());
        assert!(!World::Normal.is_secure());
    }
}
