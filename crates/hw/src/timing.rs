//! Timing distributions calibrated to the paper's measurements.
//!
//! Every constant here is traceable to the SATIN paper:
//!
//! | Quantity | Paper source | Value |
//! |---|---|---|
//! | `Ts_switch` | §IV-B1 | uniform \[2.38e-6, 3.60e-6\] s |
//! | hash 1 byte, A53 | Table I | avg 1.07e-8, min 9.23e-9, max 1.14e-8 |
//! | hash 1 byte, A57 | Table I | avg 6.71e-9, min 6.67e-9, max 7.50e-9 |
//! | snapshot 1 byte, A53 | Table I | avg 1.08e-8, min 9.24e-9, max 1.57e-8 |
//! | snapshot 1 byte, A57 | Table I | avg 6.75e-9, min 6.67e-9, max 7.83e-9 |
//! | `Tns_recover`, A53 | §IV-B2 | avg 5.80e-3 (worst case §IV-C: 6.13e-3) |
//! | `Tns_recover`, A57 | §IV-B2 | avg 4.96e-3 |
//! | cross-core reading delay | §IV-B2 | rare tail "up to 1.3e-3" |
//! | `Tsleep` / `Tns_sched` | §IV-A1 | 2e-4 s |
//!
//! Scan rates are drawn **once per scan round** (the paper reports per-round
//! per-byte averages), not per byte: a round's duration is
//! `bytes × rate` computed in floating point and rounded up once, so the
//! 6.67 ns/byte A57 rate is not distorted by per-byte integer rounding.

use crate::topology::CoreKind;
use satin_sim::dist::{Exponential, HeavyTail, SecondsDist, Triangular, TruncPareto, UniformSecs};
use satin_sim::{SimDuration, SimRng};

/// A per-byte scan rate in seconds per byte, drawn once per scan round.
///
/// # Example
///
/// ```
/// use satin_hw::timing::ByteRate;
/// let r = ByteRate::new(6.67e-9);
/// // 876_616 bytes at 6.67 ns/byte ≈ 5.85 ms
/// let d = r.duration_for(876_616);
/// assert!((d.as_secs_f64() - 5.847e-3).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByteRate(f64);

impl ByteRate {
    /// Wraps a rate in seconds per byte.
    ///
    /// # Panics
    ///
    /// Panics unless the rate is finite and positive.
    pub fn new(secs_per_byte: f64) -> Self {
        assert!(
            secs_per_byte.is_finite() && secs_per_byte > 0.0,
            "invalid byte rate {secs_per_byte}"
        );
        ByteRate(secs_per_byte)
    }

    /// The rate in seconds per byte.
    pub fn secs_per_byte(self) -> f64 {
        self.0
    }

    /// Time to scan `bytes` bytes at this rate (rounded up to whole ns).
    pub fn duration_for(self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.0 * bytes as f64)
    }

    /// Number of whole bytes scanned after `elapsed` time at this rate.
    pub fn bytes_in(self, elapsed: SimDuration) -> u64 {
        (elapsed.as_secs_f64() / self.0).floor() as u64
    }
}

/// The introspection strategy whose per-byte cost Table I compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanStrategy {
    /// Read and hash normal-world memory directly from the secure world —
    /// the strategy the paper finds faster and adopts for SATIN.
    #[default]
    DirectHash,
    /// Copy a snapshot into secure memory, then hash the copy — the
    /// traditional hardware-assisted approach (HyperCheck/SPECTRE style).
    SnapshotThenHash,
}

impl ScanStrategy {
    /// Both strategies, for sweeps.
    pub const ALL: [ScanStrategy; 2] = [ScanStrategy::DirectHash, ScanStrategy::SnapshotThenHash];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ScanStrategy::DirectHash => "direct-hash",
            ScanStrategy::SnapshotThenHash => "snapshot",
        }
    }

    /// Parses a display name (scenario descriptors use these).
    pub fn from_name(name: &str) -> Option<Self> {
        ScanStrategy::ALL.into_iter().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for ScanStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-core-kind timing profile.
#[derive(Debug, Clone)]
pub struct CoreProfile {
    /// Per-byte direct-hash rate (Table I "Hash 1-Byte").
    pub hash_1byte: Triangular,
    /// Per-byte snapshot-then-hash rate (Table I "Snapshot 1-byte").
    pub snapshot_1byte: Triangular,
    /// Total time for the rootkit to recover one attacking trace
    /// (`Tns_recover`, §IV-B2).
    pub recover: Triangular,
    /// Relative single-thread throughput of the core kind, with the fastest
    /// kind = 1.0. Used by the normal-world workload model to scale
    /// executed work per core. The paper calibration derives A53 = 0.63
    /// from Table I's per-byte hash rates (6.71e-9 / 1.07e-8 ≈ 0.63); this
    /// used to live as a magic constant on `CoreKind` itself.
    pub relative_speed: f64,
}

/// The complete calibrated timing model for the simulated platform.
///
/// Fields are public: this is a passive parameter bundle that experiments
/// (especially ablations) are expected to tweak.
#[derive(Debug, Clone)]
pub struct TimingModel {
    /// World-switch cost `Ts_switch` (§IV-B1).
    pub ts_switch: UniformSecs,
    /// Timing profile of the Cortex-A53 cores.
    pub a53: CoreProfile,
    /// Timing profile of the Cortex-A57 cores.
    pub a57: CoreProfile,
    /// Dispatch latency for an RT (SCHED_FIFO) task that wakes on an
    /// otherwise-idle core: interrupt delivery + scheduler pick. The rare
    /// heavy tail models scheduling stalls (interrupt storms, lock
    /// contention): a reporter occasionally publishes up to ~1.3 ms late,
    /// which is what §IV-B2 observed as "abnormal large delay" and what
    /// makes Table II's per-round maximum threshold grow with the probing
    /// period (longer rounds sample more stalls).
    pub rt_dispatch_jitter: HeavyTail<Exponential, TruncPareto>,
    /// Base dispatch latency for a CFS task; scaled by runqueue contention
    /// via [`TimingModel::sample_cfs_dispatch`].
    pub cfs_dispatch_jitter: Exponential,
    /// Cross-core publication delay: the time before a time report written on
    /// one core becomes visible to readers on another core (§IV-B2's
    /// "cross-core reading delay", observed up to 1.3e-3 s).
    pub publication_delay: HeavyTail<Exponential, TruncPareto>,
    /// Execution time of one Time Reporter body (read counter + store).
    pub report_exec: UniformSecs,
    /// Execution time of one Time Comparer pass, per compared core.
    pub compare_exec_per_core: UniformSecs,
    /// Execution time of the hijacked timer-IRQ prologue (KProber-I).
    pub irq_prober_exec: UniformSecs,
    /// Multiplicative slowdown applied to normal-world work while a
    /// post-introspection interference window is open. A secure-world scan
    /// streams hundreds of kilobytes through the shared cache hierarchy and
    /// DRAM; the paper's Figure 7 measures the resulting degradation at
    /// 0.7–3.9% — far more than the direct CPU steal (~0.01%), i.e. the
    /// overhead is dominated by these secondary effects. The window/slowdown
    /// pair is calibrated so a fully sensitive workload (pipe-based context
    /// switching) degrades ≈3.9% at tp = 8 s, matching Figure 7. The
    /// per-workload *sensitivity* lives in `satin-workload`.
    pub post_secure_slowdown: f64,
    /// How long the interference window lasts after the secure world exits
    /// (applied machine-wide: the scan pollutes shared levels).
    pub pollution_window: SimDuration,
}

impl TimingModel {
    /// The model calibrated to the paper's Juno r1 measurements.
    pub fn paper_calibrated() -> Self {
        TimingModel {
            ts_switch: UniformSecs::new(2.38e-6, 3.60e-6),
            a53: CoreProfile {
                hash_1byte: Triangular::from_min_mean_max(9.23e-9, 1.07e-8, 1.14e-8),
                snapshot_1byte: Triangular::from_min_mean_max(9.24e-9, 1.08e-8, 1.57e-8),
                recover: Triangular::from_min_mean_max(5.20e-3, 5.80e-3, 6.13e-3),
                relative_speed: 0.63,
            },
            a57: CoreProfile {
                hash_1byte: Triangular::from_min_mean_max(6.67e-9, 6.71e-9, 7.50e-9),
                snapshot_1byte: Triangular::from_min_mean_max(6.67e-9, 6.75e-9, 7.83e-9),
                recover: Triangular::from_min_mean_max(4.40e-3, 4.96e-3, 5.60e-3),
                relative_speed: 1.0,
            },
            rt_dispatch_jitter: HeavyTail::new(
                Exponential::new(3e-6, 1.5e-5),
                TruncPareto::new(1.3e-4, 3.0, 1.3e-3),
                8e-6,
            ),
            cfs_dispatch_jitter: Exponential::new(5e-5, 4e-3),
            publication_delay: HeavyTail::new(
                Exponential::new(5e-6, 3.0e-5),
                TruncPareto::new(1.5e-4, 1.6, 1.3e-3),
                0.0,
            ),
            report_exec: UniformSecs::new(1.5e-6, 2.5e-6),
            compare_exec_per_core: UniformSecs::new(0.8e-6, 1.4e-6),
            irq_prober_exec: UniformSecs::new(2.0e-6, 4.0e-6),
            post_secure_slowdown: 0.28,
            pollution_window: SimDuration::from_millis(1_200),
        }
    }

    /// The timing profile of a core kind.
    pub fn profile(&self, kind: CoreKind) -> &CoreProfile {
        match kind {
            CoreKind::A53 => &self.a53,
            CoreKind::A57 => &self.a57,
        }
    }

    /// Relative single-thread throughput of `kind` (fastest kind = 1.0).
    pub fn relative_speed(&self, kind: CoreKind) -> f64 {
        self.profile(kind).relative_speed
    }

    /// Draws a world-switch cost (`Ts_switch`).
    pub fn sample_ts_switch(&self, rng: &mut SimRng) -> SimDuration {
        self.ts_switch.sample(rng)
    }

    /// Draws this round's per-byte scan rate for `kind` and `strategy`.
    pub fn sample_scan_rate(
        &self,
        kind: CoreKind,
        strategy: ScanStrategy,
        rng: &mut SimRng,
    ) -> ByteRate {
        let p = self.profile(kind);
        let d = match strategy {
            ScanStrategy::DirectHash => &p.hash_1byte,
            ScanStrategy::SnapshotThenHash => &p.snapshot_1byte,
        };
        ByteRate::new(d.sample_secs(rng))
    }

    /// Draws a total trace-recovery time (`Tns_recover`) for `kind`.
    pub fn sample_recover(&self, kind: CoreKind, rng: &mut SimRng) -> SimDuration {
        self.profile(kind).recover.sample(rng)
    }

    /// Draws an RT dispatch latency.
    pub fn sample_rt_dispatch(&self, rng: &mut SimRng) -> SimDuration {
        self.rt_dispatch_jitter.sample(rng)
    }

    /// Draws a CFS dispatch latency given the number of other runnable tasks
    /// on the core's queue. Contention stretches the latency linearly — a
    /// deliberately simple model of vruntime fairness: with `q` other
    /// runnable tasks the woken task waits on average `q/2` timeslices of the
    /// others' residual quanta, which we fold into the base jitter scale.
    pub fn sample_cfs_dispatch(&self, queue_len: usize, rng: &mut SimRng) -> SimDuration {
        let base = self.cfs_dispatch_jitter.sample(rng);
        base * (1 + queue_len as u64)
    }

    /// Draws a cross-core publication delay for one time report.
    pub fn sample_publication_delay(&self, rng: &mut SimRng) -> SimDuration {
        self.publication_delay.sample(rng)
    }

    /// Draws one Time Reporter execution time.
    pub fn sample_report_exec(&self, rng: &mut SimRng) -> SimDuration {
        self.report_exec.sample(rng)
    }

    /// Draws one Time Comparer execution time for `cores` compared cores.
    pub fn sample_compare_exec(&self, cores: usize, rng: &mut SimRng) -> SimDuration {
        let per = self.compare_exec_per_core.sample(rng);
        SimDuration::from_secs_f64(per.as_secs_f64() * cores as f64)
    }

    /// Worst-case (fastest) per-byte hash rate across core kinds — the
    /// quantity the paper's Equation 2 divides by when computing the safe
    /// area size (a defender might scan on the fastest core).
    pub fn fastest_hash_rate(&self) -> ByteRate {
        ByteRate::new(self.a53.hash_1byte.min().min(self.a57.hash_1byte.min()))
    }

    /// Worst-case (slowest) recovery time across core kinds — `Tns_recover`
    /// as used in the paper's §IV-C worst-case analysis (6.13e-3 s).
    pub fn slowest_recover_secs(&self) -> f64 {
        self.a53.recover.max().max(self.a57.recover.max())
    }

    /// Largest possible world-switch cost.
    pub fn max_ts_switch_secs(&self) -> f64 {
        self.ts_switch.hi()
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TimingModel {
        TimingModel::paper_calibrated()
    }

    #[test]
    fn ts_switch_in_paper_bounds() {
        let m = model();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let d = m.sample_ts_switch(&mut rng).as_secs_f64();
            assert!((2.38e-6..=3.61e-6).contains(&d), "{d}");
        }
    }

    #[test]
    fn a57_scans_faster_than_a53() {
        let m = model();
        let mut rng = SimRng::seed_from(2);
        let a53: f64 = (0..200)
            .map(|_| {
                m.sample_scan_rate(CoreKind::A53, ScanStrategy::DirectHash, &mut rng)
                    .secs_per_byte()
            })
            .sum::<f64>()
            / 200.0;
        let a57: f64 = (0..200)
            .map(|_| {
                m.sample_scan_rate(CoreKind::A57, ScanStrategy::DirectHash, &mut rng)
                    .secs_per_byte()
            })
            .sum::<f64>()
            / 200.0;
        assert!(a57 < a53, "A57 {a57} should be faster than A53 {a53}");
    }

    #[test]
    fn direct_hash_not_slower_than_snapshot_on_average() {
        let m = model();
        let mut rng = SimRng::seed_from(3);
        for kind in [CoreKind::A53, CoreKind::A57] {
            let avg = |strategy: ScanStrategy, rng: &mut SimRng| {
                (0..500)
                    .map(|_| m.sample_scan_rate(kind, strategy, rng).secs_per_byte())
                    .sum::<f64>()
                    / 500.0
            };
            let hash = avg(ScanStrategy::DirectHash, &mut rng);
            let snap = avg(ScanStrategy::SnapshotThenHash, &mut rng);
            assert!(
                hash <= snap * 1.01,
                "{kind}: hash {hash} vs snapshot {snap}"
            );
        }
    }

    #[test]
    fn recover_means_match_paper() {
        let m = model();
        let mut rng = SimRng::seed_from(4);
        let mean = |kind: CoreKind, rng: &mut SimRng| {
            (0..2000)
                .map(|_| m.sample_recover(kind, rng).as_secs_f64())
                .sum::<f64>()
                / 2000.0
        };
        let a53 = mean(CoreKind::A53, &mut rng);
        let a57 = mean(CoreKind::A57, &mut rng);
        assert!((a53 - 5.80e-3).abs() < 0.3e-3, "A53 recover mean {a53}");
        assert!((a57 - 4.96e-3).abs() < 0.3e-3, "A57 recover mean {a57}");
    }

    #[test]
    fn byte_rate_durations() {
        let r = ByteRate::new(1e-8);
        assert_eq!(r.duration_for(100).as_nanos(), 1_000);
        assert_eq!(r.bytes_in(SimDuration::from_micros(1)), 100);
        assert_eq!(r.bytes_in(SimDuration::ZERO), 0);
    }

    #[test]
    fn worst_case_constants_match_section_4c() {
        let m = model();
        // Paper §IV-C: fastest scan 6.67e-9, slowest recovery 6.13e-3,
        // max switch 3.60e-6.
        assert_eq!(m.fastest_hash_rate().secs_per_byte(), 6.67e-9);
        assert!((m.slowest_recover_secs() - 6.13e-3).abs() < 1e-12);
        assert!((m.max_ts_switch_secs() - 3.60e-6).abs() < 1e-12);
    }

    #[test]
    fn cfs_dispatch_scales_with_contention() {
        let m = model();
        let mut rng = SimRng::seed_from(5);
        let avg = |q: usize, rng: &mut SimRng| {
            (0..500)
                .map(|_| m.sample_cfs_dispatch(q, rng).as_secs_f64())
                .sum::<f64>()
                / 500.0
        };
        let idle = avg(0, &mut rng);
        let busy = avg(8, &mut rng);
        assert!(busy > 4.0 * idle, "contended {busy} vs idle {idle}");
    }

    #[test]
    fn publication_delay_bounded() {
        let m = model();
        let mut rng = SimRng::seed_from(6);
        for _ in 0..100_000 {
            let d = m.sample_publication_delay(&mut rng).as_secs_f64();
            assert!(d <= 3.0e-5 + 1e-12, "publication delay {d} beyond cap");
        }
    }

    #[test]
    fn rt_dispatch_mostly_fast_with_rare_stalls() {
        // §IV-B2's "abnormal large delay" lives on the dispatch path: mostly
        // microseconds, rarely a stall of up to 1.3e-3 s.
        let m = model();
        let mut rng = SimRng::seed_from(6);
        let n = 2_000_000;
        let mut stalls = 0u32;
        let mut max = 0.0f64;
        for _ in 0..n {
            let d = m.sample_rt_dispatch(&mut rng).as_secs_f64();
            if d > 1.0e-4 {
                stalls += 1;
            }
            max = max.max(d);
        }
        let frac = f64::from(stalls) / n as f64;
        assert!(frac < 5e-5, "stall fraction {frac} too common");
        assert!(frac > 0.0, "stalls never fired in {n} draws");
        assert!(max <= 1.3e-3 + 1e-9, "stall {max} beyond paper's cap");
    }

    #[test]
    fn strategy_names() {
        assert_eq!(ScanStrategy::DirectHash.to_string(), "direct-hash");
        assert_eq!(ScanStrategy::SnapshotThenHash.to_string(), "snapshot");
    }
}
