//! The ARM generic timer: shared physical counter and per-core secure timers.
//!
//! Paper §V-C / §VI-A1: each TrustZone-enabled core has an individual secure
//! timer that can only be read or written with secure-world privilege. SATIN's
//! self activation module programs `CNTPS_CVAL_EL1` (the compare value) and
//! `CNTPS_CTL_EL1` (the enable bit); when the shared physical counter
//! `CNTPCT_EL0` reaches the compare value, the core raises a secure timer
//! interrupt. The simulation enforces the privilege check: any write from the
//! normal world returns [`HwError::SecureAccessDenied`].

use crate::error::HwError;
use crate::world::World;
use satin_sim::SimTime;

/// One core's secure physical timer (`CNTPS_*_EL1`).
///
/// # Example
///
/// ```
/// use satin_hw::timers::SecureTimer;
/// use satin_hw::World;
/// use satin_sim::SimTime;
///
/// let mut t = SecureTimer::new();
/// // The normal world cannot arm the secure timer…
/// assert!(t.write_cval(World::Normal, SimTime::from_secs(1)).is_err());
/// // …but the secure world can.
/// t.write_cval(World::Secure, SimTime::from_secs(1)).unwrap();
/// t.set_enabled(World::Secure, true).unwrap();
/// assert!(!t.should_fire(SimTime::from_millis(999)));
/// assert!(t.should_fire(SimTime::from_secs(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureTimer {
    /// Compare value (`CNTPS_CVAL_EL1`): fire when the counter reaches this.
    cval: SimTime,
    /// Enable bit of `CNTPS_CTL_EL1`.
    enabled: bool,
}

impl Default for SecureTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl SecureTimer {
    /// A disarmed timer.
    pub fn new() -> Self {
        SecureTimer {
            cval: SimTime::MAX,
            enabled: false,
        }
    }

    /// Writes the compare value register.
    ///
    /// # Errors
    ///
    /// [`HwError::SecureAccessDenied`] if `from` is the normal world — the
    /// register is secure-only (paper §V-C: "an individual secure timer that
    /// can only be read or written with the secure world privilege").
    pub fn write_cval(&mut self, from: World, cval: SimTime) -> Result<(), HwError> {
        self.check(from, "CNTPS_CVAL_EL1")?;
        self.cval = cval;
        Ok(())
    }

    /// Reads the compare value register.
    ///
    /// # Errors
    ///
    /// [`HwError::SecureAccessDenied`] if `from` is the normal world.
    pub fn read_cval(&self, from: World) -> Result<SimTime, HwError> {
        self.check(from, "CNTPS_CVAL_EL1")?;
        Ok(self.cval)
    }

    /// Sets or clears the enable bit (`CNTPS_CTL_EL1.ENABLE`).
    ///
    /// # Errors
    ///
    /// [`HwError::SecureAccessDenied`] if `from` is the normal world.
    pub fn set_enabled(&mut self, from: World, enabled: bool) -> Result<(), HwError> {
        self.check(from, "CNTPS_CTL_EL1")?;
        self.enabled = enabled;
        Ok(())
    }

    /// Reads the enable bit.
    ///
    /// # Errors
    ///
    /// [`HwError::SecureAccessDenied`] if `from` is the normal world.
    pub fn is_enabled(&self, from: World) -> Result<bool, HwError> {
        self.check(from, "CNTPS_CTL_EL1")?;
        Ok(self.enabled)
    }

    /// `true` when the timer is armed and the shared counter `now` has
    /// reached the compare value ("becomes equal to or greater than",
    /// §VI-A1).
    pub fn should_fire(&self, now: SimTime) -> bool {
        self.enabled && now >= self.cval
    }

    /// The instant at which the timer will fire, if armed.
    pub fn next_fire(&self) -> Option<SimTime> {
        self.enabled.then_some(self.cval)
    }

    fn check(&self, from: World, resource: &'static str) -> Result<(), HwError> {
        if from.is_secure() {
            Ok(())
        } else {
            Err(HwError::SecureAccessDenied { from, resource })
        }
    }
}

/// The shared physical counter (`CNTPCT_EL0`), readable from both worlds.
///
/// In the simulation the counter *is* simulated time; this type exists so
/// kernel and attack code read time through the same architectural register
/// the paper's probers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhysicalCounter;

impl PhysicalCounter {
    /// Reads the counter. Both worlds may read it; there is no secret here —
    /// which is exactly why the paper's prober can use it as a side channel.
    pub fn read(self, now: SimTime) -> SimTime {
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_world_cannot_touch_secure_timer() {
        let mut t = SecureTimer::new();
        assert!(matches!(
            t.write_cval(World::Normal, SimTime::ZERO),
            Err(HwError::SecureAccessDenied { .. })
        ));
        assert!(t.read_cval(World::Normal).is_err());
        assert!(t.set_enabled(World::Normal, true).is_err());
        assert!(t.is_enabled(World::Normal).is_err());
        // The failed writes must not have armed anything.
        assert!(!t.should_fire(SimTime::MAX));
    }

    #[test]
    fn secure_world_arms_and_fires() {
        let mut t = SecureTimer::new();
        t.write_cval(World::Secure, SimTime::from_millis(10))
            .unwrap();
        t.set_enabled(World::Secure, true).unwrap();
        assert_eq!(t.next_fire(), Some(SimTime::from_millis(10)));
        assert!(!t.should_fire(SimTime::from_millis(9)));
        assert!(t.should_fire(SimTime::from_millis(10)));
        assert!(t.should_fire(SimTime::from_millis(11)));
    }

    #[test]
    fn disabled_timer_never_fires() {
        let mut t = SecureTimer::new();
        t.write_cval(World::Secure, SimTime::ZERO).unwrap();
        assert!(!t.should_fire(SimTime::from_secs(100)));
        assert_eq!(t.next_fire(), None);
    }

    #[test]
    fn disarm_after_fire() {
        let mut t = SecureTimer::new();
        t.write_cval(World::Secure, SimTime::from_nanos(5)).unwrap();
        t.set_enabled(World::Secure, true).unwrap();
        assert!(t.should_fire(SimTime::from_nanos(5)));
        t.set_enabled(World::Secure, false).unwrap();
        assert!(!t.should_fire(SimTime::from_nanos(6)));
    }

    #[test]
    fn counter_readable_by_both_worlds() {
        let c = PhysicalCounter;
        assert_eq!(c.read(SimTime::from_secs(3)), SimTime::from_secs(3));
    }
}
