//! Declarative platform profiles: the data form of a [`Platform`].
//!
//! The paper evaluates SATIN on exactly one machine — an ARM Juno r1 —
//! and early versions of this reproduction baked that board into code
//! (`Platform::juno_r1()`, magic constants in `CoreKind`). A
//! [`PlatformSpec`] lifts the board into data: a named topology plus the
//! per-core-kind timing calibration, from which [`Platform::from_profile`]
//! assembles the simulated hardware. Related work shows both why this
//! matters: TrustZone world-switch costs vary widely across ARM parts
//! (Amacher & Schiavoni, *On The Performance of ARM TrustZone*), and
//! integrity-measurement policy should be configuration, not code
//! (Mao & Chang, *PDRIMA*).
//!
//! The `satin-scenario` crate parses these specs from text and bundles
//! them with attacker/defense parameters; this module owns only the
//! hardware half so that `satin-hw` stays dependency-free.
//!
//! # Example
//!
//! ```
//! use satin_hw::profile::PlatformSpec;
//! use satin_hw::Platform;
//!
//! // The paper's board, as data.
//! let spec = PlatformSpec::juno_r1();
//! assert_eq!(spec.cores.len(), 6);
//! let p = Platform::from_profile(&spec);
//! assert_eq!(p.topology().num_cores(), 6);
//! ```

use crate::gic::RoutingConfig;
use crate::timing::{CoreProfile, TimingModel};
use crate::topology::{CoreKind, Topology};
use crate::Platform;
use satin_sim::dist::{Triangular, UniformSecs};

/// A triangular distribution as its three calibration numbers, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriSpec {
    /// Smallest observed value.
    pub min: f64,
    /// Observed mean (the triangular mode is derived from it).
    pub mean: f64,
    /// Largest observed value.
    pub max: f64,
}

impl TriSpec {
    /// A spec from `(min, mean, max)` seconds.
    pub const fn new(min: f64, mean: f64, max: f64) -> Self {
        TriSpec { min, mean, max }
    }

    /// The distribution this spec calibrates.
    pub fn dist(&self) -> Triangular {
        Triangular::from_min_mean_max(self.min, self.mean, self.max)
    }
}

/// Per-core-kind timing calibration: the Table I per-byte rates, the
/// §IV-B2 recovery time, and the relative single-thread throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreCalibration {
    /// Per-byte direct-hash rate (Table I "Hash 1-Byte"), seconds.
    pub hash_1byte: TriSpec,
    /// Per-byte snapshot-then-hash rate (Table I "Snapshot 1-byte"), seconds.
    pub snapshot_1byte: TriSpec,
    /// Total rootkit trace-recovery time (`Tns_recover`, §IV-B2), seconds.
    pub recover: TriSpec,
    /// Relative single-thread throughput, fastest kind = 1.0.
    pub relative_speed: f64,
}

impl CoreCalibration {
    /// The paper's Cortex-A53 calibration (Table I / §IV-B2).
    pub const fn paper_a53() -> Self {
        CoreCalibration {
            hash_1byte: TriSpec::new(9.23e-9, 1.07e-8, 1.14e-8),
            snapshot_1byte: TriSpec::new(9.24e-9, 1.08e-8, 1.57e-8),
            recover: TriSpec::new(5.20e-3, 5.80e-3, 6.13e-3),
            relative_speed: 0.63,
        }
    }

    /// The paper's Cortex-A57 calibration (Table I / §IV-B2).
    pub const fn paper_a57() -> Self {
        CoreCalibration {
            hash_1byte: TriSpec::new(6.67e-9, 6.71e-9, 7.50e-9),
            snapshot_1byte: TriSpec::new(6.67e-9, 6.75e-9, 7.83e-9),
            recover: TriSpec::new(4.40e-3, 4.96e-3, 5.60e-3),
            relative_speed: 1.0,
        }
    }

    /// The [`CoreProfile`] this calibration instantiates.
    pub fn core_profile(&self) -> CoreProfile {
        CoreProfile {
            hash_1byte: self.hash_1byte.dist(),
            snapshot_1byte: self.snapshot_1byte.dist(),
            recover: self.recover.dist(),
            relative_speed: self.relative_speed,
        }
    }
}

/// Interrupt routing, declaratively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// SATIN's non-preemptive secure world (`SCR_EL3.IRQ = 0`).
    Satin,
    /// Normal-world interrupts preempt the secure world (the ablation).
    Preemptive,
}

impl RoutingKind {
    /// Both kinds, in display order.
    pub const ALL: [RoutingKind; 2] = [RoutingKind::Satin, RoutingKind::Preemptive];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            RoutingKind::Satin => "satin",
            RoutingKind::Preemptive => "preemptive",
        }
    }

    /// Parses a display name.
    pub fn from_name(name: &str) -> Option<Self> {
        RoutingKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The [`RoutingConfig`] this kind denotes.
    pub fn config(self) -> RoutingConfig {
        match self {
            RoutingKind::Satin => RoutingConfig::satin(),
            RoutingKind::Preemptive => RoutingConfig::preemptive(),
        }
    }
}

impl std::fmt::Display for RoutingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The declarative form of a [`Platform`]: a named topology plus timing
/// calibration. Everything the hardware layer needs, as plain data.
///
/// Fields the spec does not cover (dispatch jitters, publication delay,
/// cache-pollution model) keep the paper calibration: they model the Linux
/// substrate rather than the silicon, and no related platform reports
/// numbers for them.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// Profile name (e.g. `juno-r1`).
    pub name: String,
    /// Core kinds in core-id order.
    pub cores: Vec<CoreKind>,
    /// Interrupt routing.
    pub routing: RoutingKind,
    /// World-switch cost bounds `Ts_switch` as `(lo, hi)` seconds.
    pub ts_switch_secs: (f64, f64),
    /// Cortex-A53 calibration (used by any A53 core in `cores`).
    pub a53: CoreCalibration,
    /// Cortex-A57 calibration (used by any A57 core in `cores`).
    pub a57: CoreCalibration,
}

impl PlatformSpec {
    /// The paper's evaluation platform: Juno r1 (2×A57 + 4×A53) with the
    /// calibrated timing model and SATIN's non-preemptive routing.
    pub fn juno_r1() -> Self {
        PlatformSpec {
            name: "juno-r1".to_string(),
            cores: vec![
                CoreKind::A57,
                CoreKind::A57,
                CoreKind::A53,
                CoreKind::A53,
                CoreKind::A53,
                CoreKind::A53,
            ],
            routing: RoutingKind::Satin,
            ts_switch_secs: (2.38e-6, 3.60e-6),
            a53: CoreCalibration::paper_a53(),
            a57: CoreCalibration::paper_a57(),
        }
    }

    /// The topology this spec declares.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty (a platform needs at least one core).
    pub fn topology(&self) -> Topology {
        Topology::new(self.cores.clone())
    }

    /// The calibration of one core kind.
    pub fn calibration(&self, kind: CoreKind) -> &CoreCalibration {
        match kind {
            CoreKind::A53 => &self.a53,
            CoreKind::A57 => &self.a57,
        }
    }

    /// The timing model this spec calibrates: per-kind profiles and
    /// `Ts_switch` from the spec, everything else paper-calibrated.
    pub fn timing_model(&self) -> TimingModel {
        let mut t = TimingModel::paper_calibrated();
        t.ts_switch = UniformSecs::new(self.ts_switch_secs.0, self.ts_switch_secs.1);
        t.a53 = self.a53.core_profile();
        t.a57 = self.a57.core_profile();
        t
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The id of the `n`-th (0-based) core of `kind`, if present.
    /// Experiments use this to pick measurement cores declaratively
    /// (e.g. "the second big core") instead of hard-coding Juno ids.
    pub fn nth_core_of_kind(&self, kind: CoreKind, n: usize) -> Option<usize> {
        self.cores
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == kind)
            .map(|(i, _)| i)
            .nth(n)
    }

    /// The core kinds present, in stable `[A53, A57]` order.
    pub fn kinds_present(&self) -> Vec<CoreKind> {
        [CoreKind::A53, CoreKind::A57]
            .into_iter()
            .filter(|k| self.cores.contains(k))
            .collect()
    }

    /// A compact topology label like `2xA57+4xA53` (cluster run-lengths in
    /// core-id order).
    pub fn topology_label(&self) -> String {
        let mut parts: Vec<(CoreKind, usize)> = Vec::new();
        for &k in &self.cores {
            match parts.last_mut() {
                Some((last, n)) if *last == k => *n += 1,
                _ => parts.push((k, 1)),
            }
        }
        parts
            .iter()
            .map(|(k, n)| format!("{n}x{}", k.name()))
            .collect::<Vec<_>>()
            .join("+")
    }
}

impl Platform {
    /// Assembles a platform from its declarative spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec declares no cores.
    pub fn from_profile(spec: &PlatformSpec) -> Self {
        Platform::new(spec.topology(), spec.timing_model(), spec.routing.config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::CoreId;

    #[test]
    fn juno_spec_reproduces_the_hardcoded_platform() {
        let from_spec = Platform::from_profile(&PlatformSpec::juno_r1());
        let hard = Platform::new(
            Topology::juno_r1(),
            TimingModel::paper_calibrated(),
            RoutingConfig::satin(),
        );
        assert_eq!(from_spec.topology(), hard.topology());
        // TimingModel carries distributions without PartialEq; its Debug
        // form prints every calibration constant losslessly, so equal debug
        // strings mean field-for-field equality.
        assert_eq!(
            format!("{:?}", from_spec.timing()),
            format!("{:?}", hard.timing())
        );
        assert_eq!(from_spec.gic().config(), hard.gic().config());
    }

    #[test]
    fn nth_core_of_kind_picks_in_id_order() {
        let spec = PlatformSpec::juno_r1();
        assert_eq!(spec.nth_core_of_kind(CoreKind::A57, 0), Some(0));
        assert_eq!(spec.nth_core_of_kind(CoreKind::A57, 1), Some(1));
        assert_eq!(spec.nth_core_of_kind(CoreKind::A57, 2), None);
        assert_eq!(spec.nth_core_of_kind(CoreKind::A53, 0), Some(2));
        assert_eq!(spec.nth_core_of_kind(CoreKind::A53, 2), Some(4));
    }

    #[test]
    fn kinds_present_and_label() {
        let spec = PlatformSpec::juno_r1();
        assert_eq!(spec.kinds_present(), vec![CoreKind::A53, CoreKind::A57]);
        assert_eq!(spec.topology_label(), "2xA57+4xA53");
        let little = PlatformSpec {
            name: "all-little".into(),
            cores: vec![CoreKind::A53; 4],
            ..PlatformSpec::juno_r1()
        };
        assert_eq!(little.kinds_present(), vec![CoreKind::A53]);
        assert_eq!(little.topology_label(), "4xA53");
    }

    #[test]
    fn custom_spec_overrides_switch_cost() {
        let slow = PlatformSpec {
            ts_switch_secs: (5.0e-5, 1.0e-4),
            ..PlatformSpec::juno_r1()
        };
        let t = slow.timing_model();
        assert_eq!(t.ts_switch.lo(), 5.0e-5);
        assert_eq!(t.max_ts_switch_secs(), 1.0e-4);
        // Per-kind calibration still the paper's.
        assert_eq!(t.fastest_hash_rate().secs_per_byte(), 6.67e-9);
    }

    #[test]
    fn routing_kind_round_trips() {
        for k in RoutingKind::ALL {
            assert_eq!(RoutingKind::from_name(k.name()), Some(k));
        }
        assert_eq!(RoutingKind::from_name("nope"), None);
        assert!(!RoutingKind::Satin.config().irq_to_el3);
        assert!(RoutingKind::Preemptive.config().irq_to_el3);
    }

    #[test]
    fn profile_platform_is_usable() {
        let spec = PlatformSpec {
            name: "mini".into(),
            cores: vec![CoreKind::A57, CoreKind::A53],
            ..PlatformSpec::juno_r1()
        };
        let p = Platform::from_profile(&spec);
        assert_eq!(p.core_kind(CoreId::new(0)), CoreKind::A57);
        assert_eq!(p.core_kind(CoreId::new(1)), CoreKind::A53);
        assert_eq!(p.timing().relative_speed(CoreKind::A53), 0.63);
    }
}
