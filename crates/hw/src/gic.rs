//! Generic Interrupt Controller model: secure/non-secure grouping and routing.
//!
//! Paper §II-B: the ARM interrupt management framework guarantees (1) secure
//! interrupts are always handled by the secure world, even when execution is
//! in the normal world, and (2) non-secure interrupts can be routed to the
//! normal world or, while the secure world runs, either preempt it or wait
//! (non-preemptive secure mode). SATIN configures `SCR_EL3.IRQ = 0` and runs
//! its integrity checking inside the secure timer handler so normal-world
//! interrupts cannot preempt a round (§V-B).

use std::fmt;

/// Interrupt group — TrustZone's security classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterruptGroup {
    /// Group 0: secure interrupts (e.g. the per-core secure timer).
    Secure,
    /// Group 1: non-secure interrupts (rich OS timer tick, devices).
    NonSecure,
}

/// A platform interrupt line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interrupt {
    /// Interrupt id.
    pub id: u32,
    /// Security group.
    pub group: InterruptGroup,
}

impl Interrupt {
    /// The per-core secure physical timer interrupt (id 29 on the Juno GIC).
    pub const SECURE_TIMER: Interrupt = Interrupt {
        id: 29,
        group: InterruptGroup::Secure,
    };

    /// The non-secure per-core timer tick (id 30).
    pub const NS_TIMER: Interrupt = Interrupt {
        id: 30,
        group: InterruptGroup::NonSecure,
    };
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = match self.group {
            InterruptGroup::Secure => "S",
            InterruptGroup::NonSecure => "NS",
        };
        write!(f, "irq{}({g})", self.id)
    }
}

/// Where the interrupt controller delivers an interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingDecision {
    /// Deliver to the normal-world handler (EL1 vector table).
    ToNormalWorld,
    /// Deliver to the secure world (secure timer handler at S-EL1).
    ToSecureWorld,
    /// Hold pending until the secure world finishes its current task
    /// (non-preemptive secure mode — SATIN's configuration).
    PendUntilSecureExit,
}

/// The routing configuration bits the paper manipulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingConfig {
    /// `SCR_EL3.IRQ`: when set, non-secure interrupts trap to EL3 even while
    /// the secure world runs (preemptive secure world). SATIN sets this to
    /// `false` so a round of introspection cannot be preempted (§V-B).
    pub irq_to_el3: bool,
}

impl RoutingConfig {
    /// SATIN's configuration: non-preemptive secure world.
    pub const fn satin() -> Self {
        RoutingConfig { irq_to_el3: false }
    }

    /// A preemptive secure world (OP-TEE-style, §II-B).
    pub const fn preemptive() -> Self {
        RoutingConfig { irq_to_el3: true }
    }
}

impl Default for RoutingConfig {
    fn default() -> Self {
        Self::satin()
    }
}

/// The distributor: decides where an interrupt goes given the current world
/// of the target core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gic {
    config: RoutingConfig,
}

impl Gic {
    /// Creates a GIC with the given routing configuration.
    pub const fn new(config: RoutingConfig) -> Self {
        Gic { config }
    }

    /// Current routing configuration.
    pub const fn config(&self) -> RoutingConfig {
        self.config
    }

    /// Routes `interrupt` arriving while the target core is (or is not) in
    /// the secure world.
    ///
    /// Requirement 1 of §II-B: secure interrupts always reach the secure
    /// world. Requirement 2: non-secure interrupts reach the normal world,
    /// except that with `SCR_EL3.IRQ = 0` they pend while the core is in the
    /// secure world.
    pub fn route(&self, interrupt: Interrupt, core_in_secure_world: bool) -> RoutingDecision {
        match interrupt.group {
            InterruptGroup::Secure => RoutingDecision::ToSecureWorld,
            InterruptGroup::NonSecure => {
                if core_in_secure_world && !self.config.irq_to_el3 {
                    RoutingDecision::PendUntilSecureExit
                } else {
                    RoutingDecision::ToNormalWorld
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secure_interrupts_always_reach_secure_world() {
        for cfg in [RoutingConfig::satin(), RoutingConfig::preemptive()] {
            let gic = Gic::new(cfg);
            for in_secure in [false, true] {
                assert_eq!(
                    gic.route(Interrupt::SECURE_TIMER, in_secure),
                    RoutingDecision::ToSecureWorld
                );
            }
        }
    }

    #[test]
    fn satin_config_pends_ns_interrupts_during_introspection() {
        let gic = Gic::new(RoutingConfig::satin());
        assert_eq!(
            gic.route(Interrupt::NS_TIMER, true),
            RoutingDecision::PendUntilSecureExit
        );
        assert_eq!(
            gic.route(Interrupt::NS_TIMER, false),
            RoutingDecision::ToNormalWorld
        );
    }

    #[test]
    fn preemptive_config_delivers_ns_interrupts_immediately() {
        let gic = Gic::new(RoutingConfig::preemptive());
        assert_eq!(
            gic.route(Interrupt::NS_TIMER, true),
            RoutingDecision::ToNormalWorld
        );
    }

    #[test]
    fn default_is_satin_nonpreemptive() {
        assert_eq!(Gic::default().config(), RoutingConfig::satin());
        assert!(!RoutingConfig::default().irq_to_el3);
    }

    #[test]
    fn display() {
        assert_eq!(Interrupt::SECURE_TIMER.to_string(), "irq29(S)");
        assert_eq!(Interrupt::NS_TIMER.to_string(), "irq30(NS)");
    }
}
