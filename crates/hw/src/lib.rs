#![warn(missing_docs)]
//! Simulated ARM big.LITTLE TrustZone platform.
//!
//! Models the hardware the SATIN paper's prototype ran on — the ARM Juno r1
//! development board — at the level of detail the paper's race condition
//! requires:
//!
//! - [`topology`]: 2× Cortex-A57 ("big") + 4× Cortex-A53 ("LITTLE") cores;
//! - [`timing`]: per-core-kind timing distributions calibrated to the paper's
//!   Table I and §IV-B measurements;
//! - [`world`]: the TrustZone two-world model and ARMv8-A exception levels;
//! - [`timers`]: the shared physical counter `CNTPCT_EL0` and per-core secure
//!   timers `CNTPS_CTL_EL1`/`CNTPS_CVAL_EL1`, writable only from the secure
//!   world;
//! - [`gic`]: secure/non-secure interrupt grouping and routing, including the
//!   `SCR_EL3.IRQ` configuration SATIN uses to stay non-preemptible;
//! - [`monitor`]: the EL3 secure monitor's world-switch state machine;
//! - [`platform`]: the assembled machine.
//!
//! Everything here is a *passive state machine*: the `satin-system` crate owns
//! the event loop and drives these models with simulated time.

pub mod error;
pub mod gic;
pub mod monitor;
pub mod platform;
pub mod profile;
pub mod timers;
pub mod timing;
pub mod topology;
pub mod world;

pub use error::HwError;
pub use platform::Platform;
pub use profile::{CoreCalibration, PlatformSpec, RoutingKind, TriSpec};
pub use timing::TimingModel;
pub use topology::{CoreId, CoreKind, Topology};
pub use world::{ExceptionLevel, World};
