//! The assembled hardware platform.

use crate::gic::{Gic, RoutingConfig};
use crate::monitor::SecureMonitor;
use crate::timers::{PhysicalCounter, SecureTimer};
use crate::timing::TimingModel;
use crate::topology::{CoreId, CoreKind, Topology};
use crate::world::World;
use crate::HwError;

/// The simulated ARM Juno r1-like machine: topology + timing + monitor +
/// GIC + timers.
///
/// # Example
///
/// ```
/// use satin_hw::{Platform, CoreId, World};
/// use satin_sim::SimTime;
///
/// let mut p = Platform::juno_r1();
/// assert_eq!(p.topology().num_cores(), 6);
/// // Arm core 0's secure timer from the secure world.
/// p.secure_timer_mut(CoreId::new(0))
///     .write_cval(World::Secure, SimTime::from_secs(8))
///     .unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    topology: Topology,
    timing: TimingModel,
    monitor: SecureMonitor,
    gic: Gic,
    secure_timers: Vec<SecureTimer>,
    counter: PhysicalCounter,
}

impl Platform {
    /// The paper's evaluation platform: Juno r1 with the calibrated timing
    /// model and SATIN's non-preemptive interrupt routing. Equivalent to
    /// `Platform::from_profile(&PlatformSpec::juno_r1())` — the built-in
    /// profile is the single source of truth for this platform.
    pub fn juno_r1() -> Self {
        Self::from_profile(&crate::profile::PlatformSpec::juno_r1())
    }

    /// A custom platform.
    pub fn new(topology: Topology, timing: TimingModel, routing: RoutingConfig) -> Self {
        let n = topology.num_cores();
        Platform {
            topology,
            timing,
            monitor: SecureMonitor::new(n),
            gic: Gic::new(routing),
            secure_timers: vec![SecureTimer::new(); n],
            counter: PhysicalCounter,
        }
    }

    /// The core topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The kind of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_kind(&self, core: CoreId) -> CoreKind {
        self.topology.kind(core)
    }

    /// The calibrated timing model.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Mutable access to the timing model (for ablation experiments).
    pub fn timing_mut(&mut self) -> &mut TimingModel {
        &mut self.timing
    }

    /// The secure monitor.
    pub fn monitor(&self) -> &SecureMonitor {
        &self.monitor
    }

    /// Mutable access to the secure monitor.
    pub fn monitor_mut(&mut self) -> &mut SecureMonitor {
        &mut self.monitor
    }

    /// The interrupt controller.
    pub fn gic(&self) -> &Gic {
        &self.gic
    }

    /// The shared physical counter.
    pub fn counter(&self) -> PhysicalCounter {
        self.counter
    }

    /// The world `core` currently executes in.
    pub fn world(&self, core: CoreId) -> World {
        self.monitor.world(core)
    }

    /// `core`'s secure timer.
    ///
    /// # Errors
    ///
    /// [`HwError::NoSuchCore`] if `core` is out of range.
    pub fn secure_timer(&self, core: CoreId) -> Result<&SecureTimer, HwError> {
        self.secure_timers
            .get(core.index())
            .ok_or(HwError::NoSuchCore { core })
    }

    /// Mutable access to `core`'s secure timer.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range (use [`Platform::secure_timer`] for a
    /// fallible lookup first if the id is untrusted).
    pub fn secure_timer_mut(&mut self, core: CoreId) -> &mut SecureTimer {
        &mut self.secure_timers[core.index()]
    }

    /// The earliest pending secure-timer fire across all cores, if any.
    pub fn next_secure_timer_fire(&self) -> Option<(CoreId, satin_sim::SimTime)> {
        self.secure_timers
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.next_fire().map(|at| (CoreId::new(i), at)))
            .min_by_key(|(_, at)| *at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_sim::SimTime;

    #[test]
    fn juno_construction() {
        let p = Platform::juno_r1();
        assert_eq!(p.topology().num_cores(), 6);
        assert_eq!(p.core_kind(CoreId::new(0)), CoreKind::A57);
        assert_eq!(p.core_kind(CoreId::new(5)), CoreKind::A53);
        assert!(!p.gic().config().irq_to_el3);
        assert_eq!(p.world(CoreId::new(0)), World::Normal);
    }

    #[test]
    fn secure_timer_per_core() {
        let mut p = Platform::juno_r1();
        p.secure_timer_mut(CoreId::new(1))
            .write_cval(World::Secure, SimTime::from_secs(2))
            .unwrap();
        p.secure_timer_mut(CoreId::new(1))
            .set_enabled(World::Secure, true)
            .unwrap();
        // Other cores unaffected.
        assert!(p
            .secure_timer(CoreId::new(0))
            .unwrap()
            .next_fire()
            .is_none());
        let (core, at) = p.next_secure_timer_fire().unwrap();
        assert_eq!(core, CoreId::new(1));
        assert_eq!(at, SimTime::from_secs(2));
    }

    #[test]
    fn next_fire_picks_earliest() {
        let mut p = Platform::juno_r1();
        for (i, secs) in [(0usize, 9u64), (3, 4), (5, 7)] {
            let t = p.secure_timer_mut(CoreId::new(i));
            t.write_cval(World::Secure, SimTime::from_secs(secs))
                .unwrap();
            t.set_enabled(World::Secure, true).unwrap();
        }
        let (core, at) = p.next_secure_timer_fire().unwrap();
        assert_eq!(core, CoreId::new(3));
        assert_eq!(at, SimTime::from_secs(4));
    }

    #[test]
    fn bad_core_lookup() {
        let p = Platform::juno_r1();
        assert!(p.secure_timer(CoreId::new(99)).is_err());
    }
}
