//! Hardware-model error types.

use crate::topology::CoreId;
use crate::world::World;
use std::error::Error;
use std::fmt;

/// Errors raised by the hardware models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// An access to secure-only state was attempted from the wrong world.
    ///
    /// This is how the simulation enforces the TrustZone privilege asymmetry:
    /// e.g. the normal world writing `CNTPS_CVAL_EL1` or reading the wake-up
    /// time queue yields this error instead of data.
    SecureAccessDenied {
        /// The world the access came from.
        from: World,
        /// What was accessed.
        resource: &'static str,
    },
    /// A core id outside the platform topology.
    NoSuchCore {
        /// The offending id.
        core: CoreId,
    },
    /// A world transition that the monitor state machine forbids
    /// (e.g. entering secure world on a core already in secure world).
    InvalidWorldSwitch {
        /// The core being switched.
        core: CoreId,
        /// The world the core is currently in.
        current: World,
        /// The world requested.
        requested: World,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::SecureAccessDenied { from, resource } => {
                write!(f, "access to {resource} denied from {from} world")
            }
            HwError::NoSuchCore { core } => write!(f, "no such core: {core}"),
            HwError::InvalidWorldSwitch {
                core,
                current,
                requested,
            } => write!(
                f,
                "invalid world switch on {core}: {current} -> {requested}"
            ),
        }
    }
}

impl Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = HwError::SecureAccessDenied {
            from: World::Normal,
            resource: "CNTPS_CVAL_EL1",
        };
        assert!(e.to_string().contains("CNTPS_CVAL_EL1"));
        assert!(e.to_string().contains("normal"));
        let e = HwError::NoSuchCore {
            core: CoreId::new(9),
        };
        assert!(e.to_string().contains("core9"));
        let e = HwError::InvalidWorldSwitch {
            core: CoreId::new(1),
            current: World::Secure,
            requested: World::Secure,
        };
        assert!(e.to_string().contains("secure -> secure"));
    }

    #[test]
    fn is_error_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<HwError>();
    }
}
