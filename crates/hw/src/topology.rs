//! Core identifiers and the big.LITTLE topology.

use std::fmt;

/// Index of a CPU core within the platform.
///
/// # Example
///
/// ```
/// use satin_hw::CoreId;
/// let c = CoreId::new(3);
/// assert_eq!(c.index(), 3);
/// assert_eq!(c.to_string(), "core3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(usize);

impl CoreId {
    /// Wraps a raw core index.
    pub const fn new(index: usize) -> Self {
        CoreId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(index: usize) -> Self {
        CoreId(index)
    }
}

/// The microarchitecture of a core, which determines its timing profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Cortex-A53 "LITTLE": power-efficient, slower per-byte rates.
    A53,
    /// Cortex-A57 "big": performant, faster per-byte rates.
    A57,
}

impl CoreKind {
    /// Both kinds, in LITTLE-to-big order.
    pub const ALL: [CoreKind; 2] = [CoreKind::A53, CoreKind::A57];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            CoreKind::A53 => "A53",
            CoreKind::A57 => "A57",
        }
    }

    /// Parses a display name (case-insensitive, so scenario files may write
    /// `a53` or `A53`).
    pub fn from_name(name: &str) -> Option<Self> {
        CoreKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }
}

// NOTE: `CoreKind::relative_speed()` used to live here as a pair of magic
// constants (A53 → 0.63, A57 → 1.0, derived from Table I's per-byte hash
// rates: 6.71e-9 / 1.07e-8 ≈ 0.63). Relative throughput is a *calibration*,
// not an architectural fact, so it now lives in the timing model
// (`TimingModel::relative_speed` / `CoreProfile::relative_speed`) where
// platform profiles can override it.

impl fmt::Display for CoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The set of cores on the platform and their kinds.
///
/// # Example
///
/// ```
/// use satin_hw::{Topology, CoreKind};
/// let t = Topology::juno_r1();
/// assert_eq!(t.num_cores(), 6);
/// assert_eq!(t.cores_of_kind(CoreKind::A57).count(), 2);
/// assert_eq!(t.cores_of_kind(CoreKind::A53).count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    kinds: Vec<CoreKind>,
}

impl Topology {
    /// The ARM Juno r1 board the paper used: a 2-core Cortex-A57 "big"
    /// cluster (cores 0–1 here) and a 4-core Cortex-A53 "LITTLE" cluster
    /// (cores 2–5).
    pub fn juno_r1() -> Self {
        Topology {
            kinds: vec![
                CoreKind::A57,
                CoreKind::A57,
                CoreKind::A53,
                CoreKind::A53,
                CoreKind::A53,
                CoreKind::A53,
            ],
        }
    }

    /// A custom topology.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty — a platform needs at least one core.
    pub fn new(kinds: Vec<CoreKind>) -> Self {
        assert!(!kinds.is_empty(), "topology needs at least one core");
        Topology { kinds }
    }

    /// A homogeneous topology of `n` cores of one kind (for unit tests and
    /// single-core baseline experiments).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn homogeneous(kind: CoreKind, n: usize) -> Self {
        assert!(n > 0, "topology needs at least one core");
        Topology {
            kinds: vec![kind; n],
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.kinds.len()
    }

    /// The kind of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn kind(&self, core: CoreId) -> CoreKind {
        self.kinds[core.index()]
    }

    /// `true` if `core` exists on this platform.
    pub fn contains(&self, core: CoreId) -> bool {
        core.index() < self.kinds.len()
    }

    /// Iterates over all core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.kinds.len()).map(CoreId::new)
    }

    /// Iterates over the ids of cores with the given kind.
    pub fn cores_of_kind(&self, kind: CoreKind) -> impl Iterator<Item = CoreId> + '_ {
        self.kinds
            .iter()
            .enumerate()
            .filter(move |(_, k)| **k == kind)
            .map(|(i, _)| CoreId::new(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn juno_layout() {
        let t = Topology::juno_r1();
        assert_eq!(t.num_cores(), 6);
        assert_eq!(t.kind(CoreId::new(0)), CoreKind::A57);
        assert_eq!(t.kind(CoreId::new(1)), CoreKind::A57);
        for i in 2..6 {
            assert_eq!(t.kind(CoreId::new(i)), CoreKind::A53);
        }
    }

    #[test]
    fn contains_bounds() {
        let t = Topology::juno_r1();
        assert!(t.contains(CoreId::new(5)));
        assert!(!t.contains(CoreId::new(6)));
    }

    #[test]
    fn homogeneous_topology() {
        let t = Topology::homogeneous(CoreKind::A53, 4);
        assert_eq!(t.num_cores(), 4);
        assert!(t.cores().all(|c| t.kind(c) == CoreKind::A53));
        assert_eq!(t.cores_of_kind(CoreKind::A57).count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_topology_rejected() {
        Topology::new(vec![]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(CoreId::new(2).to_string(), "core2");
        assert_eq!(CoreKind::A57.to_string(), "A57");
        assert_eq!(CoreId::from(4).index(), 4);
    }
}
