//! The EL3 secure monitor: per-core world switching.
//!
//! Paper §IV-B1 measures the dispatcher latency — saving the normal-world
//! context and jumping to the secure timer handler — at 2.38–3.60 µs
//! (`Ts_switch`), similar on A53 and A57 cores. The monitor here is a pure
//! state machine: the caller (the system event loop) samples the switch cost
//! from [`crate::TimingModel`] and passes it in, and the monitor returns the
//! instant the target world starts executing.

use crate::error::HwError;
use crate::topology::CoreId;
use crate::world::World;
use satin_sim::{SimDuration, SimTime};

/// Per-core world-switch state machine.
///
/// # Example
///
/// ```
/// use satin_hw::monitor::SecureMonitor;
/// use satin_hw::{CoreId, World};
/// use satin_sim::{SimDuration, SimTime};
///
/// let mut mon = SecureMonitor::new(6);
/// let c = CoreId::new(2);
/// assert_eq!(mon.world(c), World::Normal);
/// let t0 = SimTime::from_millis(1);
/// let entered = mon.enter_secure(c, t0, SimDuration::from_micros(3)).unwrap();
/// assert_eq!(entered, t0 + SimDuration::from_micros(3));
/// assert_eq!(mon.world(c), World::Secure);
/// ```
#[derive(Debug, Clone)]
pub struct SecureMonitor {
    worlds: Vec<World>,
    /// Count of world round-trips per core, for overhead accounting.
    entries: Vec<u64>,
}

impl SecureMonitor {
    /// A monitor for `num_cores` cores, all starting in the normal world.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores == 0`.
    pub fn new(num_cores: usize) -> Self {
        assert!(num_cores > 0, "monitor needs at least one core");
        SecureMonitor {
            worlds: vec![World::Normal; num_cores],
            entries: vec![0; num_cores],
        }
    }

    /// The world `core` currently executes in.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn world(&self, core: CoreId) -> World {
        self.worlds[core.index()]
    }

    /// Number of secure-world entries `core` has performed.
    pub fn entry_count(&self, core: CoreId) -> u64 {
        self.entries[core.index()]
    }

    /// Switches `core` into the secure world: saves the normal-world context
    /// and jumps to the secure handler. Returns the instant the secure
    /// payload begins executing (`now + switch_cost`).
    ///
    /// # Errors
    ///
    /// [`HwError::NoSuchCore`] for an out-of-range core;
    /// [`HwError::InvalidWorldSwitch`] if the core is already secure.
    pub fn enter_secure(
        &mut self,
        core: CoreId,
        now: SimTime,
        switch_cost: SimDuration,
    ) -> Result<SimTime, HwError> {
        let w = self.world_checked(core)?;
        if w.is_secure() {
            return Err(HwError::InvalidWorldSwitch {
                core,
                current: w,
                requested: World::Secure,
            });
        }
        self.worlds[core.index()] = World::Secure;
        self.entries[core.index()] += 1;
        Ok(now + switch_cost)
    }

    /// Switches `core` back to the normal world: restores the saved context.
    /// Returns the instant normal-world execution resumes.
    ///
    /// # Errors
    ///
    /// [`HwError::NoSuchCore`] for an out-of-range core;
    /// [`HwError::InvalidWorldSwitch`] if the core is not in the secure world.
    pub fn exit_secure(
        &mut self,
        core: CoreId,
        now: SimTime,
        switch_cost: SimDuration,
    ) -> Result<SimTime, HwError> {
        let w = self.world_checked(core)?;
        if !w.is_secure() {
            return Err(HwError::InvalidWorldSwitch {
                core,
                current: w,
                requested: World::Normal,
            });
        }
        self.worlds[core.index()] = World::Normal;
        Ok(now + switch_cost)
    }

    /// Ids of cores currently in the secure world.
    pub fn cores_in_secure(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.worlds
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_secure())
            .map(|(i, _)| CoreId::new(i))
    }

    /// Number of cores this monitor manages.
    pub fn num_cores(&self) -> usize {
        self.worlds.len()
    }

    fn world_checked(&self, core: CoreId) -> Result<World, HwError> {
        self.worlds
            .get(core.index())
            .copied()
            .ok_or(HwError::NoSuchCore { core })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut mon = SecureMonitor::new(2);
        let c = CoreId::new(0);
        let t0 = SimTime::from_micros(100);
        let cost = SimDuration::from_micros(3);
        let enter_done = mon.enter_secure(c, t0, cost).unwrap();
        assert_eq!(enter_done, SimTime::from_micros(103));
        assert_eq!(mon.world(c), World::Secure);
        assert_eq!(mon.entry_count(c), 1);
        let exit_done = mon.exit_secure(c, enter_done, cost).unwrap();
        assert_eq!(exit_done, SimTime::from_micros(106));
        assert_eq!(mon.world(c), World::Normal);
    }

    #[test]
    fn double_entry_rejected() {
        let mut mon = SecureMonitor::new(1);
        let c = CoreId::new(0);
        mon.enter_secure(c, SimTime::ZERO, SimDuration::ZERO)
            .unwrap();
        let err = mon
            .enter_secure(c, SimTime::ZERO, SimDuration::ZERO)
            .unwrap_err();
        assert!(matches!(err, HwError::InvalidWorldSwitch { .. }));
    }

    #[test]
    fn exit_without_entry_rejected() {
        let mut mon = SecureMonitor::new(1);
        let err = mon
            .exit_secure(CoreId::new(0), SimTime::ZERO, SimDuration::ZERO)
            .unwrap_err();
        assert!(matches!(err, HwError::InvalidWorldSwitch { .. }));
    }

    #[test]
    fn bad_core_rejected() {
        let mut mon = SecureMonitor::new(2);
        let err = mon
            .enter_secure(CoreId::new(5), SimTime::ZERO, SimDuration::ZERO)
            .unwrap_err();
        assert!(matches!(err, HwError::NoSuchCore { .. }));
    }

    #[test]
    fn independent_cores() {
        // The heart of the paper's multi-core observation: one core entering
        // the secure world leaves the others running the normal world.
        let mut mon = SecureMonitor::new(6);
        mon.enter_secure(CoreId::new(3), SimTime::ZERO, SimDuration::ZERO)
            .unwrap();
        let secure: Vec<_> = mon.cores_in_secure().collect();
        assert_eq!(secure, vec![CoreId::new(3)]);
        for i in [0usize, 1, 2, 4, 5] {
            assert_eq!(mon.world(CoreId::new(i)), World::Normal);
        }
    }
}
