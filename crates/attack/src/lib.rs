#![warn(missing_docs)]
//! TZ-Evader: the paper's normal-world evasion attack (§III–IV).
//!
//! TZ-Evader combines a *prober* that detects, via the CPU-availability side
//! channel, that some core entered the secure world, with a *rootkit* that
//! removes its attacking traces before the introspection can read them:
//!
//! - [`prober`]: the Time Reporter / Time Comparer machinery (Figure 2) and
//!   the probing-threshold measurement campaign behind Table II and Figure 4;
//! - [`kprober`]: the two kernel-level prober deployments — KProber-I
//!   (timer-interrupt hijack) and KProber-II (`SCHED_FIFO` real-time
//!   scheduling) — plus the user-level CFS prober;
//! - [`rootkit`]: the GETTID syscall-table hijack with trace recovery
//!   (§IV-A2);
//! - [`channel`]: the in-normal-world coordination between prober and
//!   rootkit;
//! - [`evader`]: full TZ-Evader deployment onto a [`satin_system::System`];
//! - [`predictor`]: the schedule-predicting evader that random wake-up
//!   (§V-C) defends against;
//! - [`race`]: the paper's Equation 1/2 race-condition analytics (§IV-C);
//! - [`threshold`]: threshold learning (§VII-B).

pub mod channel;
pub mod evader;
pub mod kprober;
pub mod predictor;
pub mod prober;
pub mod race;
pub mod rootkit;
pub mod threshold;

pub use channel::EvaderChannel;
pub use evader::{TzEvader, TzEvaderConfig};
pub use prober::{ProbeTargets, ProberConfig, ProberShared};
pub use race::RaceParams;
