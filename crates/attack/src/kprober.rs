//! The three prober deployments the paper evaluates.
//!
//! - **User-level prober** (§III-B1): one CFS thread per core — stealthy (no
//!   kernel modification) but its accuracy degrades under CPU contention.
//! - **KProber-I** (§III-C1): the Time Reporter/Comparer injected into the
//!   timer-interrupt handler, found via the exception vector table. Runs at
//!   HZ on every non-idle core — so it keeps a spinner on each core — and
//!   leaves the hijacked vector entry as an extra detectable trace.
//! - **KProber-II** (§III-C2): `SCHED_FIFO` threads at
//!   `sched_get_priority_max(SCHED_FIFO)` — no kernel-text modification and
//!   reliable scheduling under load.

use crate::prober::{deploy_prober_threads, ProberConfig, ProberShared};
use satin_hw::CoreId;
use satin_kernel::vector::{VectorSlot, VectorTable};
use satin_kernel::{Affinity, SchedClass, TaskId};
use satin_sim::{MarkTag, SimDuration, SimTime, TraceCategory};
use satin_system::{RunCtx, RunOutcome, System, TickHook};

/// Which prober implementation to deploy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProberVariant {
    /// User-level CFS prober.
    UserLevel,
    /// Timer-interrupt injection (vector-table hijack + tick hook).
    KProberI,
    /// Real-time scheduler prober.
    KProberII,
}

/// Deploys the user-level prober (CFS threads).
pub fn deploy_user_prober(
    sys: &mut System,
    config: ProberConfig,
    shared: &ProberShared,
    start: SimTime,
) -> Vec<TaskId> {
    deploy_prober_threads(sys, SchedClass::cfs(), config, shared, start)
}

/// Deploys KProber-II (`SCHED_FIFO` priority 99 threads).
pub fn deploy_kprober_ii(
    sys: &mut System,
    config: ProberConfig,
    shared: &ProberShared,
    start: SimTime,
) -> Vec<TaskId> {
    deploy_prober_threads(sys, SchedClass::rt_max(), config, shared, start)
}

/// The KProber-I tick hook: reporter + comparer in IRQ context.
pub struct KProberIHook {
    shared: ProberShared,
    config: ProberConfig,
    num_cores: usize,
}

impl TickHook for KProberIHook {
    fn on_tick(&mut self, ctx: &mut RunCtx<'_>) {
        let now = ctx.now();
        let me = ctx.core();
        ctx.publish_time_report();
        for i in 0..self.num_cores {
            let x = CoreId::new(i);
            if x == me {
                continue;
            }
            if let Some(tx) = ctx.read_time_report(x) {
                let diff = now.saturating_since(tx);
                if self.shared.record(now, x, diff, self.config.threshold) {
                    ctx.mark_args(MarkTag::AttackObserve, x.index() as u64, 0);
                }
            }
        }
    }
}

/// Deploys KProber-I: hijacks the IRQ exception vector (leaving modified
/// bytes in the monitored kernel image — the extra trace §III-C1 warns
/// about), installs the tick hook, and spawns one low-priority spinner per
/// core so `NO_HZ_IDLE` never silences the tick.
///
/// Returns the spinner task ids.
///
/// # Panics
///
/// Panics if the kernel layout has no vector table.
pub fn deploy_kprober_i(
    sys: &mut System,
    mut config: ProberConfig,
    shared: &ProberShared,
    start: SimTime,
) -> Vec<TaskId> {
    let n = sys.num_cores();

    // KProber-I observes at tick granularity: reports from other cores are
    // up to one tick (1/HZ) old even in quiet operation, so the staleness
    // threshold must absorb the tick period or it would misfire on every
    // comparison (the paper's prototype pairs a KProber-I reporter with a
    // KProber-II comparer for exactly this reason, §IV-A1).
    let tick = sys.sched().config().tick_period();
    config.threshold = config.threshold.map(|t| t + tick);

    // Hijack the timer IRQ vector entry: a setup task exploits the AP bits
    // and overwrites the entry with redirect code.
    let vt = VectorTable::new(sys.layout()).expect("kernel layout has a vector table");
    let entry = vt.entry_range(VectorSlot::IrqCurrentElSpx);
    let setup = sys.spawn(
        "kprober1-setup",
        SchedClass::rt_max(),
        Affinity::pinned(CoreId::new(0)),
        move |ctx: &mut RunCtx<'_>| {
            ctx.exploit_ap_bits(entry.start());
            // 32 bytes of redirect stub in place of the original handler.
            let stub = [0x14u8; 32];
            ctx.write_kernel(entry.start(), &stub)
                .expect("vector table inside memory");
            ctx.trace(TraceCategory::AttackKprober, "IRQ vector hijacked");
            RunOutcome::exit_after(SimDuration::from_micros(10))
        },
    );
    sys.wake_at(setup, start);

    sys.install_tick_hook(KProberIHook {
        shared: shared.clone(),
        config,
        num_cores: n,
    });

    // Spinners keep every core out of NO_HZ idle.
    let mut spinners = Vec::new();
    for i in 0..n {
        let t = sys.spawn(
            format!("spinner-{i}"),
            SchedClass::Cfs { nice: 19 },
            Affinity::pinned(CoreId::new(i)),
            |_: &mut RunCtx<'_>| RunOutcome::yield_after(SimDuration::from_millis(1)),
        );
        sys.wake_at(t, start);
        spinners.push(t);
    }
    spinners
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prober::ProbeTargets;
    use satin_system::SystemBuilder;

    #[test]
    fn kprober_i_reports_at_tick_rate() {
        let mut sys = SystemBuilder::new().seed(3).trace(false).build();
        let shared = ProberShared::new();
        let cfg = ProberConfig::measurement(SimDuration::from_micros(200), ProbeTargets::AllCores);
        deploy_kprober_i(&mut sys, cfg, &shared, SimTime::ZERO);
        sys.run_until(SimTime::from_secs(1));
        // 6 cores × HZ=250 ≈ 1500 ticks/s; each publishes a report.
        let reports = sys.stats().time_reports;
        assert!(
            (1200..2000).contains(&reports),
            "tick-rate reports: {reports}"
        );
        assert!(shared.observations() > 0);
        // The hijack left a trace in the kernel image.
        let vt = VectorTable::new(sys.layout()).unwrap();
        let entry = vt.entry_range(VectorSlot::IrqCurrentElSpx);
        let bytes = sys.mem().read(entry).unwrap();
        assert_eq!(&bytes[..32], &[0x14u8; 32]);
    }

    #[test]
    fn kprober_i_vs_ii_probing_granularity() {
        // KProber-II probes every 200µs; KProber-I only at the 4ms tick.
        // Over the same second, KProber-II must make far more observations.
        let run = |variant: ProberVariant| {
            let mut sys = SystemBuilder::new().seed(4).trace(false).build();
            let shared = ProberShared::new();
            let cfg =
                ProberConfig::measurement(SimDuration::from_micros(200), ProbeTargets::AllCores);
            match variant {
                ProberVariant::KProberI => {
                    deploy_kprober_i(&mut sys, cfg, &shared, SimTime::ZERO);
                }
                ProberVariant::KProberII => {
                    deploy_kprober_ii(&mut sys, cfg, &shared, SimTime::ZERO);
                }
                ProberVariant::UserLevel => {
                    deploy_user_prober(&mut sys, cfg, &shared, SimTime::ZERO);
                }
            }
            sys.run_until(SimTime::from_millis(500));
            shared.observations()
        };
        let i = run(ProberVariant::KProberI);
        let ii = run(ProberVariant::KProberII);
        assert!(ii > 5 * i, "KProber-II {ii} vs KProber-I {i}");
    }

    #[test]
    fn user_prober_works_without_kernel_changes() {
        let mut sys = SystemBuilder::new().seed(6).trace(false).build();
        let shared = ProberShared::new();
        let cfg = ProberConfig::measurement(SimDuration::from_micros(200), ProbeTargets::AllCores);
        deploy_user_prober(&mut sys, cfg, &shared, SimTime::ZERO);
        sys.run_until(SimTime::from_millis(100));
        assert!(shared.observations() > 0);
        // No kernel writes: stealthy.
        assert_eq!(sys.stats().kernel_writes, 0);
    }
}
