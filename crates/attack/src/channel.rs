//! Normal-world coordination between the prober and the attack module.
//!
//! In the paper TZ-Evader is one kernel module: "Once the prober module
//! reports that one core may be switched to the secure world, TZ-Evader
//! begins to remove its attacking trace" (§III-C). The channel is shared
//! normal-world state (an `Rc<RefCell<…>>`, since the simulation is single
//! threaded) through which the prober raises the hide signal and the rootkit
//! reports its own lifecycle.

use satin_hw::CoreId;
use satin_sim::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// One prober detection event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Detection {
    /// When the prober concluded a core was gone.
    pub at: SimTime,
    /// Which core it believes entered the secure world.
    pub core: CoreId,
    /// The observed staleness that triggered the detection.
    pub staleness: SimDuration,
}

#[derive(Debug, Default)]
struct ChannelState {
    hide_requested: bool,
    detections: Vec<Detection>,
    last_detection: Option<SimTime>,
    hides_started: u64,
    hides_completed: u64,
    reinstalls: u64,
}

/// Shared prober↔rootkit channel.
///
/// Cloning clones the handle, not the state.
#[derive(Debug, Clone, Default)]
pub struct EvaderChannel {
    state: Rc<RefCell<ChannelState>>,
}

impl EvaderChannel {
    /// A fresh channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prober side: report that `core` looks frozen with the given
    /// staleness at time `at`. Sets the hide signal.
    pub fn report_detection(&self, at: SimTime, core: CoreId, staleness: SimDuration) {
        let mut s = self.state.borrow_mut();
        s.hide_requested = true;
        s.last_detection = Some(at);
        s.detections.push(Detection {
            at,
            core,
            staleness,
        });
    }

    /// Rootkit side: is a hide currently requested?
    pub fn hide_requested(&self) -> bool {
        self.state.borrow().hide_requested
    }

    /// Rootkit side: acknowledge the hide request and start recovering.
    pub fn begin_hide(&self) {
        let mut s = self.state.borrow_mut();
        s.hide_requested = false;
        s.hides_started += 1;
    }

    /// Rootkit side: the traces are clean.
    pub fn hide_completed(&self) {
        self.state.borrow_mut().hides_completed += 1;
    }

    /// Rootkit side: the attack was reinstalled.
    pub fn record_reinstall(&self) {
        self.state.borrow_mut().reinstalls += 1;
    }

    /// Rootkit side: drop a pending hide request without counting a hide
    /// (used when reinstalling after a stale detection burst).
    pub fn clear_hide_request(&self) {
        self.state.borrow_mut().hide_requested = false;
    }

    /// `true` if no detection has fired in the last `quiet` before `now` —
    /// the rootkit's signal that the introspection round is over and it is
    /// safe to resume attacking.
    pub fn all_clear(&self, now: SimTime, quiet: SimDuration) -> bool {
        match self.state.borrow().last_detection {
            None => true,
            Some(t) => now.saturating_since(t) >= quiet,
        }
    }

    /// All detections so far.
    pub fn detections(&self) -> Vec<Detection> {
        self.state.borrow().detections.clone()
    }

    /// Number of detections so far.
    pub fn detection_count(&self) -> usize {
        self.state.borrow().detections.len()
    }

    /// (hides started, hides completed, reinstalls).
    pub fn lifecycle_counts(&self) -> (u64, u64, u64) {
        let s = self.state.borrow();
        (s.hides_started, s.hides_completed, s.reinstalls)
    }

    /// Groups raw detections into distinct introspection sessions: events
    /// separated by less than `gap` count as one session. Returns the first
    /// detection time of each session.
    pub fn distinct_sessions(&self, gap: SimDuration) -> Vec<SimTime> {
        let s = self.state.borrow();
        let mut out: Vec<SimTime> = Vec::new();
        for d in &s.detections {
            match out.last() {
                Some(last) if d.at.saturating_since(*last) < gap => {
                    // same session; keep first timestamp but remember nothing
                }
                _ => out.push(d.at),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn hide_signal_round_trip() {
        let ch = EvaderChannel::new();
        assert!(!ch.hide_requested());
        ch.report_detection(t(5), CoreId::new(2), SimDuration::from_millis(2));
        assert!(ch.hide_requested());
        ch.begin_hide();
        assert!(!ch.hide_requested());
        ch.hide_completed();
        assert_eq!(ch.lifecycle_counts(), (1, 1, 0));
    }

    #[test]
    fn all_clear_respects_quiet_period() {
        let ch = EvaderChannel::new();
        assert!(ch.all_clear(t(0), SimDuration::from_millis(10)));
        ch.report_detection(t(100), CoreId::new(0), SimDuration::ZERO);
        assert!(!ch.all_clear(t(105), SimDuration::from_millis(10)));
        assert!(ch.all_clear(t(110), SimDuration::from_millis(10)));
    }

    #[test]
    fn session_grouping() {
        let ch = EvaderChannel::new();
        // A burst of detections for one introspection, then another later.
        for ms in [100u64, 101, 102, 103] {
            ch.report_detection(t(ms), CoreId::new(1), SimDuration::ZERO);
        }
        ch.report_detection(t(500), CoreId::new(4), SimDuration::ZERO);
        let sessions = ch.distinct_sessions(SimDuration::from_millis(50));
        assert_eq!(sessions, vec![t(100), t(500)]);
        assert_eq!(ch.detection_count(), 5);
    }

    #[test]
    fn sessions_gap_inclusive_behaviour() {
        let ch = EvaderChannel::new();
        ch.report_detection(t(0), CoreId::new(0), SimDuration::ZERO);
        ch.report_detection(t(50), CoreId::new(0), SimDuration::ZERO);
        // Exactly at the gap counts as a new session.
        let sessions = ch.distinct_sessions(SimDuration::from_millis(50));
        assert_eq!(sessions.len(), 2);
    }

    #[test]
    fn clones_share_state() {
        let a = EvaderChannel::new();
        let b = a.clone();
        a.report_detection(t(1), CoreId::new(0), SimDuration::ZERO);
        assert!(b.hide_requested());
        assert_eq!(b.detection_count(), 1);
    }
}
