//! The paper's race-condition analytics (Equations 1 and 2, §IV-C).
//!
//! Equation 1 — the attacker escapes iff
//! `Ts_switch + S·Ts_1byte > Tns_delay + Tns_recover`, where `S` is the
//! number of bytes the introspection reads before touching a malicious byte
//! and `Tns_delay = Tns_sched + Tns_threshold`.
//!
//! Equation 2 — solving for the *protected prefix*: the introspection only
//! wins while `S ≤ (Tns_sched + Tns_threshold + Tns_recover − Ts_switch) /
//! Ts_1byte`. With the paper's worst-case constants this is 1,218,351 bytes,
//! i.e. ≈90% of the 11,916,240-byte kernel is unprotected by a naive
//! full-kernel introspection — the motivation for SATIN's area division.

use satin_hw::TimingModel;

/// Worst-case constants of the two-world race.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceParams {
    /// World-switch cost `Ts_switch`, seconds.
    pub ts_switch: f64,
    /// Fastest per-byte introspection rate `Ts_1byte`, seconds/byte.
    pub ts_1byte: f64,
    /// Prober scheduling period `Tns_sched`, seconds.
    pub tns_sched: f64,
    /// Probing threshold `Tns_threshold`, seconds.
    pub tns_threshold: f64,
    /// Trace-recovery time `Tns_recover`, seconds.
    pub tns_recover: f64,
}

impl RaceParams {
    /// The worst case for TZ-Evader the paper analyzes in §IV-C:
    /// introspection on an A57 core at its fastest rate; recovery on an A53
    /// core at its slowest.
    pub fn paper_worst_case() -> Self {
        RaceParams {
            ts_switch: 3.60e-6,
            ts_1byte: 6.67e-9,
            tns_sched: 2e-4,
            tns_threshold: 1.80e-3,
            tns_recover: 6.13e-3,
        }
    }

    /// Derives the worst-case parameters from a timing model (same numbers
    /// as [`RaceParams::paper_worst_case`] for the calibrated model).
    pub fn from_timing(timing: &TimingModel, tns_threshold: f64) -> Self {
        RaceParams {
            ts_switch: timing.max_ts_switch_secs(),
            ts_1byte: timing.fastest_hash_rate().secs_per_byte(),
            tns_sched: 2e-4,
            tns_threshold,
            tns_recover: timing.slowest_recover_secs(),
        }
    }

    /// The *defender-guaranteed* parameters — a reproduction finding.
    ///
    /// The paper's §IV-C/§V-B bound divides by the **fastest** per-byte rate
    /// (A57, 6.67e-9) and assumes the **slowest** recovery (A53, 6.13e-3).
    /// That is the worst case *for the attacker*; on a big.LITTLE platform
    /// where a random core scans each round, the defense's own worst case
    /// is the opposite corner: the slowest scanner (A53 max, 1.14e-8 s/B)
    /// racing the fastest recovery (A57 min, ≈4.4e-3 s). An area sized to
    /// the paper's bound is therefore only *expected* to win, not
    /// guaranteed — empirically ≈30% of worst-placed bytes survive rounds
    /// scanned by A53 cores. Use this variant to size areas for a true
    /// guarantee (≈544 KB on the calibrated model).
    pub fn defender_guaranteed(timing: &TimingModel) -> Self {
        let slowest_scan = timing.a53.hash_1byte.max().max(timing.a57.hash_1byte.max());
        let fastest_recover = timing.a53.recover.min().min(timing.a57.recover.min());
        RaceParams {
            // Attacker reacts as early as possible: minimal switch cost…
            ts_switch: timing.ts_switch.lo(),
            ts_1byte: slowest_scan,
            // …no scheduling slack beyond the threshold itself…
            tns_sched: 0.0,
            tns_threshold: 1.8e-3,
            // …and the fastest possible recovery.
            tns_recover: fastest_recover,
        }
    }

    /// The attacker's total evasion latency `Tns_delay + Tns_recover`.
    pub fn evasion_latency(&self) -> f64 {
        self.tns_sched + self.tns_threshold + self.tns_recover
    }

    /// Equation 2: the largest scanned prefix `S` (bytes) within which the
    /// introspection still beats the attacker's recovery.
    pub fn protected_prefix_bytes(&self) -> u64 {
        let s = (self.evasion_latency() - self.ts_switch) / self.ts_1byte;
        if s <= 0.0 {
            0
        } else {
            s.floor() as u64
        }
    }

    /// Equation 1: does the attacker escape when the malicious byte sits
    /// after `s` scanned bytes?
    pub fn attacker_escapes(&self, s: u64) -> bool {
        self.ts_switch + s as f64 * self.ts_1byte > self.evasion_latency()
    }

    /// Fraction of a `kernel_size`-byte kernel left unprotected by a naive
    /// single-pass introspection (§IV-C's ≈90%).
    pub fn unprotected_fraction(&self, kernel_size: u64) -> f64 {
        assert!(kernel_size > 0, "empty kernel");
        let s = self.protected_prefix_bytes().min(kernel_size);
        1.0 - s as f64 / kernel_size as f64
    }

    /// The maximum safe SATIN area size (§V-B): an area no larger than this
    /// is always fully scanned before the attacker can finish recovering,
    /// so the race is unwinnable for the attacker *within an area*.
    pub fn max_safe_area_bytes(&self) -> u64 {
        self.protected_prefix_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_mem::PAPER_KERNEL_SIZE;

    #[test]
    fn paper_prefix_bound_reproduced() {
        // §IV-C: "we have S ≤ 1218351 bytes".
        let p = RaceParams::paper_worst_case();
        let s = p.protected_prefix_bytes();
        assert!(
            (1_218_000..=1_218_700).contains(&s),
            "S = {s}, expected ≈1,218,351"
        );
    }

    #[test]
    fn paper_unprotected_fraction_about_90_percent() {
        // §IV-C: "nearly 1 − 1218351/11916240 ≈ 90% of the kernel space is
        // not protected".
        let p = RaceParams::paper_worst_case();
        let f = p.unprotected_fraction(PAPER_KERNEL_SIZE);
        assert!((0.89..0.91).contains(&f), "unprotected fraction {f}");
    }

    #[test]
    fn equation_boundary_consistency() {
        let p = RaceParams::paper_worst_case();
        let s = p.protected_prefix_bytes();
        assert!(!p.attacker_escapes(s));
        assert!(p.attacker_escapes(s + 1));
        assert!(!p.attacker_escapes(0));
    }

    #[test]
    fn from_timing_matches_paper() {
        let t = TimingModel::paper_calibrated();
        let p = RaceParams::from_timing(&t, 1.80e-3);
        let q = RaceParams::paper_worst_case();
        assert!((p.ts_switch - q.ts_switch).abs() < 1e-12);
        assert!((p.ts_1byte - q.ts_1byte).abs() < 1e-15);
        assert!((p.tns_recover - q.tns_recover).abs() < 1e-9);
        assert_eq!(
            p.protected_prefix_bytes() / 1000,
            q.protected_prefix_bytes() / 1000
        );
    }

    #[test]
    fn paper_areas_fit_the_safe_bound() {
        // §VI-A2: every one of the 19 areas must be under the bound;
        // the largest is 876,616 bytes.
        let p = RaceParams::paper_worst_case();
        assert!(satin_mem::PAPER_LARGEST_AREA < p.max_safe_area_bytes());
    }

    #[test]
    fn defender_guarantee_is_tighter_than_the_paper_bound() {
        let t = TimingModel::paper_calibrated();
        let paper = RaceParams::paper_worst_case().protected_prefix_bytes();
        let guaranteed = RaceParams::defender_guaranteed(&t).protected_prefix_bytes();
        assert!(
            guaranteed < paper / 2,
            "guaranteed {guaranteed} should be well below the paper's {paper}"
        );
        // The paper's own largest area (876,616 B) exceeds the guarantee —
        // the finding: §V-B's bound is expected-case on big.LITTLE.
        assert!(satin_mem::PAPER_LARGEST_AREA > guaranteed);
        // But a plan sized to the guarantee is feasible (it only needs to
        // be above the largest indivisible section, 811,080 B)… it is not:
        // the guarantee (~472 KB) is below .text, so a guaranteed plan
        // requires splitting sections — a deployment trade-off the
        // reproduction surfaces.
        assert!(guaranteed < 811_080);
    }

    #[test]
    fn faster_recovery_shrinks_protection() {
        let mut p = RaceParams::paper_worst_case();
        let base = p.protected_prefix_bytes();
        p.tns_recover /= 2.0;
        assert!(p.protected_prefix_bytes() < base);
    }

    #[test]
    fn degenerate_negative_prefix() {
        let p = RaceParams {
            ts_switch: 1.0,
            ts_1byte: 1e-9,
            tns_sched: 0.0,
            tns_threshold: 0.0,
            tns_recover: 0.0,
        };
        assert_eq!(p.protected_prefix_bytes(), 0);
        assert!(p.attacker_escapes(1));
    }
}
