//! The Time Reporter / Time Comparer prober (Figure 2) and the
//! probing-threshold measurement campaign (Table II, Figure 4).
//!
//! Each probed core gets a thread pinned to it (so the OS cannot migrate it
//! off a frozen core) that *reports* its current counter value into the
//! shared buffer and *compares* every other core's freshest visible report
//! against its own time. When a core enters the secure world its thread
//! stops reporting, its buffered value goes stale, and every other comparer
//! sees the staleness exceed the learned threshold.

use crate::channel::EvaderChannel;
use satin_hw::CoreId;
use satin_kernel::{Affinity, SchedClass, TaskId};
use satin_sim::{MarkTag, SimDuration, SimTime};
use satin_system::{RunCtx, RunOutcome, System, ThreadBody};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Which cores the prober watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeTargets {
    /// Watch every core (each core runs a reporter+comparer thread).
    AllCores,
    /// Watch one specific core from one observer core — the paper's
    /// fixed-affinity probing mode (§IV-A1), which achieves ~4× smaller
    /// thresholds (§IV-B2).
    Single {
        /// The core being watched (runs a reporter-only thread).
        target: CoreId,
        /// The core running the reporter+comparer thread.
        observer: CoreId,
    },
}

/// Prober configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProberConfig {
    /// Reporting cadence (`Tsleep = Tns_sched = 2e-4 s` in §IV-A1).
    pub sleep: SimDuration,
    /// Staleness threshold above which a core is reported as gone;
    /// `None` runs in measurement-only mode (Table II calibration).
    pub threshold: Option<SimDuration>,
    /// Which cores to watch.
    pub targets: ProbeTargets,
}

impl ProberConfig {
    /// The paper's KProber configuration: 200 µs cadence, 1.8 ms threshold,
    /// all cores.
    pub fn paper_kprober() -> Self {
        ProberConfig {
            sleep: SimDuration::from_micros(200),
            threshold: Some(SimDuration::from_secs_f64(1.8e-3)),
            targets: ProbeTargets::AllCores,
        }
    }

    /// Measurement-only mode (no detections reported).
    pub fn measurement(sleep: SimDuration, targets: ProbeTargets) -> Self {
        ProberConfig {
            sleep,
            threshold: None,
            targets,
        }
    }
}

#[derive(Debug, Default)]
struct SharedState {
    round_max: SimDuration,
    observations: u64,
    detections_suppressed_until: BTreeMap<usize, SimTime>,
}

/// State shared by all prober threads (and read by experiments).
#[derive(Debug, Clone, Default)]
pub struct ProberShared {
    state: Rc<RefCell<SharedState>>,
    channel: Option<EvaderChannel>,
}

impl ProberShared {
    /// Measurement-only shared state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared state that reports detections into `channel`.
    pub fn with_channel(channel: EvaderChannel) -> Self {
        ProberShared {
            state: Rc::default(),
            channel: Some(channel),
        }
    }

    /// The largest staleness observed since the last reset.
    pub fn round_max(&self) -> SimDuration {
        self.state.borrow().round_max
    }

    /// Number of comparer observations since construction.
    pub fn observations(&self) -> u64 {
        self.state.borrow().observations
    }

    /// Resets the per-round maximum (used between measurement rounds).
    pub fn reset_round(&self) {
        self.state.borrow_mut().round_max = SimDuration::ZERO;
    }

    /// Returns `true` when an over-threshold staleness was reported into the
    /// evader channel (i.e. a detection survived the debounce window).
    pub(crate) fn record(
        &self,
        now: SimTime,
        core: CoreId,
        diff: SimDuration,
        threshold: Option<SimDuration>,
    ) -> bool {
        let mut s = self.state.borrow_mut();
        s.observations += 1;
        if diff > s.round_max {
            s.round_max = diff;
        }
        if let (Some(th), Some(ch)) = (threshold, &self.channel) {
            if diff > th {
                // Debounce: one detection per core per 5 ms window, so one
                // introspection round produces one burst, not thousands.
                let until = s
                    .detections_suppressed_until
                    .get(&core.index())
                    .copied()
                    .unwrap_or(SimTime::ZERO);
                if now >= until {
                    s.detections_suppressed_until
                        .insert(core.index(), now + SimDuration::from_millis(5));
                    ch.report_detection(now, core, diff);
                    return true;
                }
            }
        }
        false
    }
}

/// A reporter+comparer thread body, pinned to one core.
pub struct ReporterComparerBody {
    my_core: CoreId,
    watched: Vec<CoreId>,
    shared: ProberShared,
    config: ProberConfig,
    /// Phase offset past each cadence boundary. The single-core probing
    /// mode (§IV-A1) deliberately lags the observer ~65 µs behind the
    /// reporter so the target's report has drained through the cache
    /// hierarchy by read time — which is what makes fixed-target probing
    /// ≈4× more precise than all-core probing (§IV-B2).
    phase_offset: SimDuration,
}

impl ThreadBody for ReporterComparerBody {
    fn on_run(&mut self, ctx: &mut RunCtx<'_>) -> RunOutcome {
        let now = ctx.now();
        // Time Reporter: publish this core's current time.
        let mut busy = ctx.publish_time_report();
        // Time Comparer: read every watched core's freshest visible report.
        for &x in &self.watched {
            if x == self.my_core {
                continue;
            }
            if let Some(tx) = ctx.read_time_report(x) {
                let diff = now.saturating_since(tx);
                if self.shared.record(now, x, diff, self.config.threshold) {
                    ctx.mark_args(MarkTag::AttackObserve, x.index() as u64, 0);
                }
            }
        }
        busy += ctx.compare_exec_cost(self.watched.len());
        if self.phase_offset.is_zero() {
            RunOutcome::sleep_aligned(busy, self.config.sleep)
        } else {
            RunOutcome::sleep_aligned_offset(busy, self.config.sleep, self.phase_offset)
        }
    }
}

/// A reporter-only thread body (the target thread of single-core probing).
pub struct ReporterOnlyBody {
    sleep: SimDuration,
}

impl ThreadBody for ReporterOnlyBody {
    fn on_run(&mut self, ctx: &mut RunCtx<'_>) -> RunOutcome {
        let busy = ctx.publish_time_report();
        RunOutcome::sleep_aligned(busy, self.sleep)
    }
}

/// Deploys prober threads onto `sys` with the given scheduling class
/// (RT = KProber-II, CFS = the user-level prober) and wakes them at `start`.
///
/// Returns the spawned task ids.
pub fn deploy_prober_threads(
    sys: &mut System,
    class: SchedClass,
    config: ProberConfig,
    shared: &ProberShared,
    start: SimTime,
) -> Vec<TaskId> {
    let n = sys.num_cores();
    let mut tasks = Vec::new();
    match config.targets {
        ProbeTargets::AllCores => {
            let all: Vec<CoreId> = (0..n).map(CoreId::new).collect();
            for &core in &all {
                let body = ReporterComparerBody {
                    my_core: core,
                    watched: all.clone(),
                    shared: shared.clone(),
                    config,
                    phase_offset: SimDuration::ZERO,
                };
                let t = sys.spawn(
                    format!("prober-{core}"),
                    class,
                    Affinity::pinned(core),
                    body,
                );
                tasks.push(t);
            }
        }
        ProbeTargets::Single { target, observer } => {
            assert!(target != observer, "observer must differ from target");
            let rep = sys.spawn(
                format!("reporter-{target}"),
                class,
                Affinity::pinned(target),
                ReporterOnlyBody {
                    sleep: config.sleep,
                },
            );
            let cmp = sys.spawn(
                format!("comparer-{observer}"),
                class,
                Affinity::pinned(observer),
                ReporterComparerBody {
                    my_core: observer,
                    watched: vec![target],
                    shared: shared.clone(),
                    config,
                    phase_offset: SimDuration::from_micros(60),
                },
            );
            tasks.push(rep);
            tasks.push(cmp);
        }
    }
    for &t in &tasks {
        sys.wake_at(t, start);
    }
    tasks
}

/// One round of the Table II measurement: run the prober alone (no secure
/// world activity) for `period` and return the largest observed staleness,
/// in seconds.
pub fn measure_round(seed: u64, period: SimDuration, targets: ProbeTargets) -> f64 {
    let mut sys = satin_system::SystemBuilder::new()
        .seed(seed)
        .trace(false)
        .build();
    let shared = ProberShared::new();
    let config = ProberConfig::measurement(SimDuration::from_micros(200), targets);
    deploy_prober_threads(
        &mut sys,
        SchedClass::rt_max(),
        config,
        &shared,
        SimTime::ZERO,
    );
    // Warm up so every core has published at least once, then measure.
    let warmup = SimDuration::from_millis(5);
    sys.run_for(warmup);
    shared.reset_round();
    sys.run_for(period);
    shared.round_max().as_secs_f64()
}

/// The full Table II campaign: `rounds` independent rounds of `period` each.
/// Returns the per-round maxima, in seconds.
pub fn probing_threshold_campaign(
    base_seed: u64,
    period: SimDuration,
    rounds: usize,
    targets: ProbeTargets,
) -> Vec<f64> {
    (0..rounds)
        .map(|r| measure_round(base_seed.wrapping_add(r as u64 * 7919), period, targets))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_max_tracks_largest_diff() {
        let shared = ProberShared::new();
        let now = SimTime::from_millis(1);
        shared.record(now, CoreId::new(0), SimDuration::from_micros(50), None);
        shared.record(now, CoreId::new(1), SimDuration::from_micros(300), None);
        shared.record(now, CoreId::new(2), SimDuration::from_micros(100), None);
        assert_eq!(shared.round_max(), SimDuration::from_micros(300));
        assert_eq!(shared.observations(), 3);
        shared.reset_round();
        assert_eq!(shared.round_max(), SimDuration::ZERO);
    }

    #[test]
    fn detection_debounced_per_core() {
        let ch = EvaderChannel::new();
        let shared = ProberShared::with_channel(ch.clone());
        let th = Some(SimDuration::from_micros(100));
        let t0 = SimTime::from_millis(10);
        for i in 0..10u64 {
            shared.record(
                t0 + SimDuration::from_micros(i * 10),
                CoreId::new(3),
                SimDuration::from_micros(500),
                th,
            );
        }
        // Ten over-threshold observations in 100µs → one detection.
        assert_eq!(ch.detection_count(), 1);
        // After the 5ms debounce window another detection is allowed.
        shared.record(
            t0 + SimDuration::from_millis(6),
            CoreId::new(3),
            SimDuration::from_micros(500),
            th,
        );
        assert_eq!(ch.detection_count(), 2);
    }

    #[test]
    fn measurement_round_produces_plausible_threshold() {
        // One short round: the baseline staleness must be around the
        // reporting cadence (2e-4) — not zero, not milliseconds.
        let max = measure_round(42, SimDuration::from_millis(200), ProbeTargets::AllCores);
        assert!(max > 5e-5, "threshold {max} implausibly small");
        assert!(max < 3e-3, "threshold {max} implausibly large");
    }

    #[test]
    fn single_core_probing_smaller_threshold() {
        // §IV-B2: probing a single fixed core yields ~1/4 the threshold of
        // probing all cores. Check the direction (ratio checked in benches).
        let period = SimDuration::from_millis(300);
        let all: f64 = probing_threshold_campaign(7, period, 3, ProbeTargets::AllCores)
            .iter()
            .sum::<f64>()
            / 3.0;
        let single: f64 = probing_threshold_campaign(
            7,
            period,
            3,
            ProbeTargets::Single {
                target: CoreId::new(2),
                observer: CoreId::new(0),
            },
        )
        .iter()
        .sum::<f64>()
            / 3.0;
        assert!(
            single < all,
            "single-core threshold {single} should be below all-core {all}"
        );
    }

    #[test]
    fn prober_detects_secure_entry() {
        use satin_hw::timing::ScanStrategy;
        use satin_mem::MemRange;
        use satin_system::{BootCtx, ScanRequest, SecureCtx, SecureService};

        struct OneScan;
        impl SecureService for OneScan {
            fn on_boot(&mut self, ctx: &mut BootCtx<'_>) -> Result<(), satin_system::SatinError> {
                ctx.arm_core(CoreId::new(4), SimTime::from_millis(20))
                    .unwrap();
                Ok(())
            }
            fn on_secure_timer(
                &mut self,
                _core: CoreId,
                _ctx: &mut SecureCtx<'_>,
            ) -> Option<ScanRequest> {
                Some(ScanRequest {
                    area_id: 0,
                    range: MemRange::new(satin_mem::PhysAddr::new(0x8008_0000), 800_000),
                    strategy: ScanStrategy::DirectHash,
                })
            }
            fn on_scan_result(
                &mut self,
                _core: CoreId,
                _request: &ScanRequest,
                _observed: &[u8],
                _ctx: &mut SecureCtx<'_>,
            ) {
            }
        }

        let mut sys = satin_system::SystemBuilder::new()
            .seed(5)
            .trace(false)
            .build();
        let ch = EvaderChannel::new();
        let shared = ProberShared::with_channel(ch.clone());
        deploy_prober_threads(
            &mut sys,
            SchedClass::rt_max(),
            ProberConfig::paper_kprober(),
            &shared,
            SimTime::ZERO,
        );
        sys.install_secure_service(OneScan);
        sys.run_until(SimTime::from_millis(60));
        // The 800 KB scan freezes core 4 for ~5-9 ms; the prober must see it.
        let det = ch.detections();
        assert!(!det.is_empty(), "prober missed the secure-world entry");
        assert!(det.iter().all(|d| d.core == CoreId::new(4)));
        // Detection latency from the 20ms fire must be under Tns_delay ≈ 2ms.
        let first = det[0].at;
        let latency = first
            .saturating_since(SimTime::from_millis(20))
            .as_secs_f64();
        assert!(latency < 2.5e-3, "detection latency {latency}s too large");
    }
}
