//! The schedule-predicting evader: what random wake-up (§V-C) defends
//! against.
//!
//! "Evasion attacks target at defeating asynchronous introspection by
//! predicting precisely the time of next security check and thus removing
//! all attacking evidence to avoid detection" (§I). Against a *fixed*
//! period the attacker needs no side channel at all: once the phase is
//! known, it hides shortly before each grid point and re-installs after.
//! SATIN's `td ∈ [−tp, tp]` deviation destroys the grid — "at any moment
//! the introspection could start" — and forces the attacker back to
//! probing, where the §V-B area bound wins the race.
//!
//! The predictor here is the *oracle-strength* version: it is handed the
//! exact period and phase (the best any schedule-learning attacker could
//! achieve), so the ablation measures the defense, not the attacker's
//! learning ability.

use crate::channel::EvaderChannel;
use crate::rootkit::{deploy_rootkit, RootkitConfig, RootkitHandle};
use satin_hw::CoreId;
use satin_kernel::{Affinity, SchedClass, TaskId};
use satin_sim::{SimDuration, SimTime, TraceCategory};
use satin_system::{RunCtx, RunOutcome, System, ThreadBody};

/// Configuration of the schedule predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// The believed introspection period (grid spacing).
    pub period: SimDuration,
    /// The believed phase: first expected wake at `phase`, then every
    /// `period`.
    pub phase: SimTime,
    /// How long before each predicted wake to be hidden. Must cover
    /// `Tns_recover` plus scheduling slack.
    pub hide_margin: SimDuration,
    /// How long after each predicted wake to stay hidden (covers the scan).
    pub reappear_after: SimDuration,
}

impl PredictorConfig {
    /// Oracle defaults for a known `(period, phase)`: hide 8 ms early,
    /// reappear 160 ms after (longer than any single-area or full-kernel
    /// round at the paper's rates).
    pub fn oracle(period: SimDuration, phase: SimTime) -> Self {
        PredictorConfig {
            period,
            phase,
            hide_margin: SimDuration::from_millis(8),
            reappear_after: SimDuration::from_millis(160),
        }
    }
}

/// The predictor body: drives the hide/reinstall cycle on the grid. It uses
/// the shared [`EvaderChannel`] purely as a signalling device into the
/// rootkit threads (reusing their recovery machinery), injecting synthetic
/// "detections" at predicted times.
struct PredictorBody {
    config: PredictorConfig,
    channel: EvaderChannel,
    next_grid: u64,
}

impl ThreadBody for PredictorBody {
    fn on_run(&mut self, ctx: &mut RunCtx<'_>) -> RunOutcome {
        let now = ctx.now();
        // Next predicted wake on the grid.
        let wake_at = self.config.phase
            + SimDuration::from_nanos(self.next_grid * self.config.period.as_nanos());
        let hide_at = wake_at - self.config.hide_margin.min(wake_at.since(SimTime::ZERO));
        if now >= hide_at {
            // Time to disappear: raise the hide signal (the rootkit's
            // recovery threads do the actual cleaning within Tns_recover,
            // which is why the margin must exceed it).
            self.channel
                .report_detection(now, ctx.core(), SimDuration::ZERO);
            ctx.trace(
                TraceCategory::AttackPredict,
                format!("hiding for wake #{}", self.next_grid),
            );
            self.next_grid += 1;
            // Sleep past the predicted scan so the quiet-period logic
            // reinstalls afterwards.
            RunOutcome::sleep_after(
                SimDuration::from_micros(2),
                self.config.reappear_after + self.config.hide_margin,
            )
        } else {
            // Poll again shortly before the hide point.
            let wait = hide_at.since(now).min(SimDuration::from_millis(1));
            RunOutcome::sleep_after(SimDuration::from_micros(1), wait)
        }
    }
}

/// A deployed predictive evader.
#[derive(Debug, Clone)]
pub struct PredictiveEvader {
    /// The signalling channel (synthetic detections appear here).
    pub channel: EvaderChannel,
    /// The underlying rootkit lifecycle handle.
    pub rootkit: RootkitHandle,
}

/// Deploys the oracle predictor plus the standard rootkit (with multi-core
/// recovery) onto `sys`.
pub fn deploy_predictive_evader(
    sys: &mut System,
    config: PredictorConfig,
    start: SimTime,
) -> (PredictiveEvader, TaskId) {
    let channel = EvaderChannel::new();
    // Stay down for the whole predicted scan window: the rootkit's
    // autonomous reinstall must not fire mid-scan.
    let rk_cfg = RootkitConfig {
        quiet_before_reinstall: config.reappear_after,
        ..RootkitConfig::default()
    };
    let (_, rootkit) = deploy_rootkit(sys, CoreId::new(3), rk_cfg, &channel, start);
    let body = PredictorBody {
        config,
        channel: channel.clone(),
        next_grid: 1, // skip the boot wake at/near the phase itself
    };
    let t = sys.spawn(
        "predictor",
        SchedClass::RtFifo { priority: 97 },
        Affinity::pinned(CoreId::new(5)),
        body,
    );
    sys.wake_at(t, start);
    (PredictiveEvader { channel, rootkit }, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_core::{CorePolicy, Satin, SatinConfig};
    use satin_system::SystemBuilder;

    fn campaign(randomize_wake: bool, seed: u64) -> (u64, u64) {
        // SATIN at tp = 500 ms for a fast test; fixed core so the grid
        // prediction is exact in the non-randomized case.
        let mut cfg = SatinConfig::paper();
        cfg.tgoal = SimDuration::from_millis(500 * 19);
        cfg.randomize_wake = randomize_wake;
        cfg.core_policy = CorePolicy::Fixed(CoreId::new(0));
        let mut sys = SystemBuilder::new().seed(seed).trace(false).build();
        let (satin, handle) = Satin::new(cfg);
        sys.install_secure_service(satin);
        // Oracle: with randomize_wake=false the queue hands out exact
        // tp-spaced times from t=0.
        let predictor = PredictorConfig::oracle(SimDuration::from_millis(500), SimTime::ZERO);
        let (_evader, _) = deploy_predictive_evader(&mut sys, predictor, SimTime::ZERO);
        sys.run_until(SimTime::from_secs(25));
        let rounds = handle.rounds();
        let area = satin_mem::PAPER_SYSCALL_AREA;
        let checks = rounds.iter().filter(|r| r.area == area).count() as u64;
        let caught = rounds
            .iter()
            .filter(|r| r.area == area && r.tampered)
            .count() as u64;
        (checks, caught)
    }

    #[test]
    fn fixed_schedule_is_fully_evaded_by_prediction() {
        let (checks, caught) = campaign(false, 301);
        assert!(checks >= 1, "no area-14 checks happened");
        assert_eq!(
            caught, 0,
            "oracle predictor must fully evade a fixed schedule ({caught}/{checks})"
        );
    }

    #[test]
    fn random_wake_defeats_the_predictor() {
        // With td ∈ [−tp, tp] the grid is useless: some rounds land while
        // the hijack is live and get caught.
        let mut total_caught = 0;
        for seed in [302u64, 303, 304] {
            let (_, caught) = campaign(true, seed);
            total_caught += caught;
        }
        assert!(
            total_caught >= 1,
            "randomized wake-up should catch the predictor at least once"
        );
    }
}
