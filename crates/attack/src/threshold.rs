//! Threshold learning (§VII-B).
//!
//! "If the attacker is not able to evaluate the threshold on a fully
//! controlled device, then `Tns_threshold` needs to be learned from the
//! victim directly. The attacker needs to run multi-threads Time Reporter
//! and Time Comparer for a relatively long time (e.g., one hour) to study
//! how the threshold varies." The learned threshold is the largest observed
//! baseline staleness times a safety margin; too low causes false positives
//! (wasted hides), too high delays detection and loses the race.

use crate::prober::{probing_threshold_campaign, ProbeTargets};
use satin_sim::SimDuration;

/// Learns a detection threshold from observed per-round maxima: the largest
/// observation scaled by `safety_margin`.
///
/// Returns `None` for an empty sample.
///
/// # Panics
///
/// Panics if `safety_margin < 1.0` (a margin below 1 guarantees false
/// positives on the training data itself).
pub fn learn_threshold(round_maxima: &[f64], safety_margin: f64) -> Option<f64> {
    assert!(safety_margin >= 1.0, "safety margin must be >= 1.0");
    round_maxima
        .iter()
        .copied()
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        })
        .map(|m| m * safety_margin)
}

/// Runs a full on-victim learning campaign: `rounds` rounds of `period`
/// probing, then applies the safety margin. Returns the threshold in
/// seconds.
pub fn learn_on_victim(
    seed: u64,
    period: SimDuration,
    rounds: usize,
    safety_margin: f64,
) -> Option<f64> {
    let maxima = probing_threshold_campaign(seed, period, rounds, ProbeTargets::AllCores);
    learn_threshold(&maxima, safety_margin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_learns_nothing() {
        assert_eq!(learn_threshold(&[], 1.5), None);
    }

    #[test]
    fn learns_scaled_max() {
        let th = learn_threshold(&[1e-4, 3e-4, 2e-4], 2.0).unwrap();
        assert!((th - 6e-4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "safety margin")]
    fn rejects_sub_unity_margin() {
        learn_threshold(&[1e-4], 0.5);
    }

    #[test]
    fn victim_learning_produces_usable_threshold() {
        // Short campaign; the learned threshold must be in the plausible
        // band between the baseline cadence and the paper's 1.8e-3 regime.
        let th = learn_on_victim(11, SimDuration::from_millis(100), 3, 1.5).unwrap();
        assert!(th > 1e-4, "threshold {th} too small");
        assert!(th < 4e-3, "threshold {th} too large");
    }
}
