//! Full TZ-Evader deployment: prober + rootkit, wired through the channel.

use crate::channel::EvaderChannel;
use crate::kprober::{deploy_kprober_i, deploy_kprober_ii, deploy_user_prober, ProberVariant};
use crate::prober::{ProberConfig, ProberShared};
use crate::rootkit::{deploy_rootkit, RootkitConfig, RootkitHandle};
use satin_hw::CoreId;
use satin_sim::SimTime;
use satin_system::System;

/// TZ-Evader deployment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TzEvaderConfig {
    /// Which prober implementation carries the side channel.
    pub prober: ProberVariant,
    /// Prober cadence/threshold/targets.
    pub prober_config: ProberConfig,
    /// The core the rootkit's recovery thread is pinned to (§IV-C analyzes
    /// the worst case of recovering on an A53 core).
    pub recovery_core: CoreId,
    /// Rootkit behaviour.
    pub rootkit: RootkitConfig,
    /// When the attack goes live.
    pub start: SimTime,
}

impl TzEvaderConfig {
    /// The paper's strongest configuration: KProber-II at 200 µs with the
    /// 1.8 ms learned threshold, recovery on A53 core 3.
    pub fn paper_default() -> Self {
        TzEvaderConfig {
            prober: ProberVariant::KProberII,
            prober_config: ProberConfig::paper_kprober(),
            recovery_core: CoreId::new(3),
            rootkit: RootkitConfig::default(),
            start: SimTime::ZERO,
        }
    }

    /// The configuration a scenario's attack profile describes. All-cores
    /// probing and default rootkit behaviour, like the paper's evaluation;
    /// `from_profile(&Scenario::paper().attack)` equals
    /// [`TzEvaderConfig::paper_default`] exactly.
    pub fn from_profile(profile: &satin_scenario::AttackProfile) -> Self {
        use crate::prober::ProbeTargets;
        use satin_scenario::ProberKind;
        TzEvaderConfig {
            prober: match profile.prober {
                ProberKind::UserLevel => ProberVariant::UserLevel,
                ProberKind::KProberI => ProberVariant::KProberI,
                ProberKind::KProberII => ProberVariant::KProberII,
            },
            prober_config: ProberConfig {
                sleep: profile.sleep,
                threshold: profile.threshold,
                targets: ProbeTargets::AllCores,
            },
            recovery_core: CoreId::new(profile.recovery_core),
            rootkit: RootkitConfig::default(),
            start: SimTime::ZERO,
        }
    }
}

/// Handles to a deployed TZ-Evader.
#[derive(Debug, Clone)]
pub struct TzEvader {
    /// The prober↔rootkit channel (detections, lifecycle counts).
    pub channel: EvaderChannel,
    /// The prober's shared observation state.
    pub prober: ProberShared,
    /// The rootkit lifecycle handle.
    pub rootkit: RootkitHandle,
}

impl TzEvader {
    /// Deploys TZ-Evader onto `sys`.
    pub fn deploy(sys: &mut System, config: TzEvaderConfig) -> TzEvader {
        let channel = EvaderChannel::new();
        let prober = ProberShared::with_channel(channel.clone());
        match config.prober {
            ProberVariant::UserLevel => {
                deploy_user_prober(sys, config.prober_config, &prober, config.start);
            }
            ProberVariant::KProberI => {
                deploy_kprober_i(sys, config.prober_config, &prober, config.start);
            }
            ProberVariant::KProberII => {
                deploy_kprober_ii(sys, config.prober_config, &prober, config.start);
            }
        }
        let (_, rootkit) = deploy_rootkit(
            sys,
            config.recovery_core,
            config.rootkit,
            &channel,
            config.start,
        );
        TzEvader {
            channel,
            prober,
            rootkit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_hw::timing::ScanStrategy;
    use satin_kernel::syscall::SyscallTable;
    use satin_mem::layout::GETTID_NR;
    use satin_mem::MemRange;
    use satin_sim::SimDuration;
    use satin_system::{BootCtx, ScanRequest, SecureCtx, SecureService, SystemBuilder};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn paper_profile_equals_paper_default() {
        // The juno-r1 scenario's attack profile must describe the exact
        // paper configuration — down to the nanosecond, since golden traces
        // depend on it (`SimDuration::from_secs_f64` rounds up, so the
        // profile stores durations, not float seconds).
        let from_profile = TzEvaderConfig::from_profile(&satin_scenario::Scenario::paper().attack);
        assert_eq!(from_profile, TzEvaderConfig::paper_default());
    }

    #[test]
    fn profile_variants_map_through() {
        use satin_scenario::ProberKind;
        let mut profile = satin_scenario::Scenario::paper().attack;
        profile.prober = ProberKind::UserLevel;
        profile.threshold = None;
        profile.recovery_core = 5;
        let cfg = TzEvaderConfig::from_profile(&profile);
        assert_eq!(cfg.prober, ProberVariant::UserLevel);
        assert_eq!(cfg.prober_config.threshold, None);
        assert_eq!(cfg.recovery_core, CoreId::new(5));
    }

    /// A naive full-kernel asynchronous introspection: fixed period, random
    /// core, one monolithic scan — the baseline TZ-Evader defeats (§IV-C).
    struct NaiveIntrospection {
        period: SimDuration,
        tampered_rounds: Rc<RefCell<u64>>,
        rounds: Rc<RefCell<u64>>,
        table: Option<satin_hash::AuthorizedHashTable>,
    }

    impl SecureService for NaiveIntrospection {
        fn on_boot(&mut self, ctx: &mut BootCtx<'_>) -> Result<(), satin_system::SatinError> {
            let mem = ctx.mem();
            let range = ctx.layout().range();
            let mut table = satin_hash::AuthorizedHashTable::new(satin_hash::HashAlgorithm::Djb2);
            table.enroll(
                0,
                satin_hash::hash_bytes(satin_hash::HashAlgorithm::Djb2, mem.read(range).unwrap()),
            );
            self.table = Some(table);
            // Random core for the first round.
            let n = ctx.num_cores() as u64;
            let core = CoreId::new(ctx.rng().below(n) as usize);
            ctx.arm_core(core, SimTime::ZERO + self.period).unwrap();
            Ok(())
        }

        fn on_secure_timer(
            &mut self,
            _core: CoreId,
            ctx: &mut SecureCtx<'_>,
        ) -> Option<ScanRequest> {
            let range = MemRange::new(satin_mem::KernelLayout::paper().base(), {
                satin_mem::PAPER_KERNEL_SIZE
            });
            let _ = ctx;
            Some(ScanRequest {
                area_id: 0,
                range,
                strategy: ScanStrategy::DirectHash,
            })
        }

        fn on_scan_result(
            &mut self,
            _core: CoreId,
            request: &ScanRequest,
            observed: &[u8],
            ctx: &mut SecureCtx<'_>,
        ) {
            let digest = satin_hash::hash_bytes(satin_hash::HashAlgorithm::Djb2, observed);
            let table = self.table.as_ref().expect("booted");
            *self.rounds.borrow_mut() += 1;
            if table.verify(request.area_id, digest).is_tampered() {
                *self.tampered_rounds.borrow_mut() += 1;
            }
            let next = ctx.now() + self.period;
            ctx.arm_self(next);
        }
    }

    #[test]
    fn tz_evader_defeats_naive_introspection() {
        // The headline attack result: with a monolithic full-kernel scan the
        // rootkit hides its syscall hijack before the scanner reaches area 14
        // (~7.4 MB into an 11.9 MB kernel; the scanner needs ~50-80 ms to get
        // there while the evader cleans up within ~8 ms of the world switch).
        let mut sys = SystemBuilder::new().seed(77).trace(false).build();
        let tampered = Rc::new(RefCell::new(0u64));
        let rounds = Rc::new(RefCell::new(0u64));
        sys.install_secure_service(NaiveIntrospection {
            period: SimDuration::from_millis(300),
            tampered_rounds: tampered.clone(),
            rounds: rounds.clone(),
            table: None,
        });
        let evader = TzEvader::deploy(&mut sys, TzEvaderConfig::paper_default());
        sys.run_until(SimTime::from_millis(1400));

        assert!(
            *rounds.borrow() >= 3,
            "introspection ran {} rounds",
            *rounds.borrow()
        );
        assert_eq!(
            *tampered.borrow(),
            0,
            "naive introspection caught the rootkit — evasion failed"
        );
        // The prober detected every round…
        assert!(evader.channel.detection_count() > 0);
        // …and the attack was active most of the time.
        let active = evader.rootkit.active_time(sys.now()).as_secs_f64();
        assert!(active > 0.8, "attack active only {active}s of 1.4s");
        let (hides, completed, reinstalls) = evader.channel.lifecycle_counts();
        assert!(hides >= 3);
        assert_eq!(hides, completed);
        assert!(reinstalls >= 2);
    }

    #[test]
    fn evader_leaves_no_trace_when_hidden() {
        let mut sys = SystemBuilder::new().seed(78).trace(false).build();
        let evader = TzEvader::deploy(&mut sys, TzEvaderConfig::paper_default());
        sys.run_until(SimTime::from_millis(5));
        assert!(evader.rootkit.is_active());
        // Simulate a detection; after recovery the syscall table is pristine.
        evader
            .channel
            .report_detection(sys.now(), CoreId::new(0), SimDuration::from_millis(2));
        let quiet_cfg = RootkitConfig::default().quiet_before_reinstall;
        sys.run_for(SimDuration::from_millis(12));
        let table = SyscallTable::new(sys.layout());
        let ptr = sys.mem().read_u64(table.entry_addr(GETTID_NR)).unwrap();
        assert_eq!(Some(ptr), sys.stats().genuine_syscall(GETTID_NR));
        let _ = quiet_cfg;
    }
}
