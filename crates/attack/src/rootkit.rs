//! The persistent kernel rootkit: GETTID syscall-table hijack with trace
//! recovery (§IV-A2).
//!
//! The attack modifies one 8-byte entry of the system call table. It is an
//! Advanced Persistent Threat (§III-A): while no introspection is suspected
//! it stays in the attacking phase; when the prober raises the hide signal it
//! spends `Tns_recover` cleaning (restoring the genuine pointer), and once
//! the coast is clear it re-installs the hijack.

use crate::channel::EvaderChannel;
use satin_hw::CoreId;
use satin_kernel::{Affinity, SchedClass, TaskId};
use satin_mem::layout::GETTID_NR;
use satin_sim::{MarkTag, SimDuration, SimTime, TraceCategory};
use satin_system::{RunCtx, RunOutcome, System, ThreadBody};
use std::cell::RefCell;
use std::rc::Rc;

/// Rootkit configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootkitConfig {
    /// Syscall entry to hijack (GETTID in the paper).
    pub syscall_nr: u64,
    /// Polling cadence of the recovery thread.
    pub poll: SimDuration,
    /// Quiet time after the last detection before re-installing.
    pub quiet_before_reinstall: SimDuration,
    /// Whether to re-install after hiding (APT behaviour). Disable to study
    /// a single hide race in isolation.
    pub auto_reinstall: bool,
    /// Spawn a recovery helper on every core (a kernel module reacts from
    /// whichever core is still running — crucial when the introspection
    /// happens to land on the leader's own core and freezes it). Disable to
    /// pin recovery to one core for per-core-kind measurements.
    pub multi_core_recovery: bool,
}

impl Default for RootkitConfig {
    fn default() -> Self {
        RootkitConfig {
            syscall_nr: GETTID_NR,
            poll: SimDuration::from_micros(50),
            quiet_before_reinstall: SimDuration::from_millis(20),
            auto_reinstall: true,
            multi_core_recovery: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    NotInstalled,
    Active,
    Recovering,
    Hidden,
}

/// One lifecycle event of the rootkit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// The hijack was written at this instant.
    Installed(SimTime),
    /// The traces were restored at this instant.
    Restored(SimTime),
}

#[derive(Debug, Default)]
struct Inner {
    installs: u64,
    restores: u64,
    active_since: Option<SimTime>,
    active_total: SimDuration,
    genuine: Option<[u8; 8]>,
    last_restore_at: Option<SimTime>,
    events: Vec<LifecycleEvent>,
    /// A recovery has been claimed and is in flight (prevents two helper
    /// threads from double-recovering one hide).
    recovery_in_progress: bool,
}

/// Handle for inspecting the rootkit's lifecycle from experiment code.
#[derive(Debug, Clone, Default)]
pub struct RootkitHandle {
    inner: Rc<RefCell<Inner>>,
}

impl RootkitHandle {
    /// Times the hijack was (re-)installed.
    pub fn installs(&self) -> u64 {
        self.inner.borrow().installs
    }

    /// Times the traces were fully restored.
    pub fn restores(&self) -> u64 {
        self.inner.borrow().restores
    }

    /// `true` while the hijack is in place.
    pub fn is_active(&self) -> bool {
        self.inner.borrow().active_since.is_some()
    }

    /// Total time the hijack has been in place up to `now`.
    pub fn active_time(&self, now: SimTime) -> SimDuration {
        let i = self.inner.borrow();
        let mut total = i.active_total;
        if let Some(since) = i.active_since {
            total += now.saturating_since(since);
        }
        total
    }

    /// When the traces were last fully restored.
    pub fn last_restore_at(&self) -> Option<SimTime> {
        self.inner.borrow().last_restore_at
    }

    /// The full install/restore history, in time order.
    pub fn events(&self) -> Vec<LifecycleEvent> {
        self.inner.borrow().events.clone()
    }

    /// `true` if the hijack was in place at instant `t` (the bytes written
    /// at an install remain malicious until the matching restore).
    pub fn was_active_at(&self, t: SimTime) -> bool {
        let mut active = false;
        for e in self.inner.borrow().events.iter() {
            match e {
                LifecycleEvent::Installed(at) if *at <= t => active = true,
                LifecycleEvent::Restored(at) if *at <= t => active = false,
                _ => break,
            }
        }
        active
    }
}

/// The thread's role in the rootkit's distributed recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RootkitRole {
    /// Installs/reinstalls the hijack and participates in recovery.
    Leader,
    /// Only participates in recovery (reacts when the leader's core is the
    /// one frozen in the secure world).
    Helper,
}

/// The rootkit's recovery thread body.
pub struct RootkitBody {
    config: RootkitConfig,
    channel: EvaderChannel,
    handle: RootkitHandle,
    phase: Phase,
    role: RootkitRole,
}

impl RootkitBody {
    /// Creates the body (the leader installs on its first activation).
    pub fn new(
        config: RootkitConfig,
        channel: EvaderChannel,
        handle: RootkitHandle,
        role: RootkitRole,
    ) -> Self {
        RootkitBody {
            config,
            channel,
            handle,
            phase: match role {
                RootkitRole::Leader => Phase::NotInstalled,
                RootkitRole::Helper => Phase::Hidden,
            },
            role,
        }
    }

    fn install(&mut self, ctx: &mut RunCtx<'_>) {
        let addr = ctx.layout().syscall_entry_addr(self.config.syscall_nr);
        // Undo any synchronous-introspection page protection first (§VII-A).
        ctx.exploit_ap_bits(addr);
        let evil = satin_mem::image::hijacked_entry_bytes(ctx.layout(), 0xE711_u64);
        let rec = ctx.write_kernel(addr, &evil).expect("table inside memory");
        let mut i = self.handle.inner.borrow_mut();
        if i.genuine.is_none() {
            i.genuine = Some(rec.old.as_slice().try_into().expect("8 bytes"));
        }
        i.installs += 1;
        i.active_since = Some(ctx.now());
        i.events.push(LifecycleEvent::Installed(ctx.now()));
        drop(i);
        ctx.mark_args(MarkTag::AttackInstall, addr.value(), 0);
        ctx.trace(
            TraceCategory::AttackInstall,
            format!("hijacked syscall {}", self.config.syscall_nr),
        );
    }

    fn restore(&mut self, ctx: &mut RunCtx<'_>) {
        let addr = ctx.layout().syscall_entry_addr(self.config.syscall_nr);
        let genuine = self
            .handle
            .inner
            .borrow()
            .genuine
            .expect("restore before install");
        ctx.write_kernel(addr, &genuine)
            .expect("table inside memory");
        let now = ctx.now();
        let mut i = self.handle.inner.borrow_mut();
        if let Some(since) = i.active_since.take() {
            i.active_total += now.saturating_since(since);
        }
        i.restores += 1;
        i.last_restore_at = Some(now);
        i.events.push(LifecycleEvent::Restored(now));
        drop(i);
        ctx.mark_args(MarkTag::AttackRestore, addr.value(), 0);
        ctx.trace(TraceCategory::AttackRestore, "traces cleaned");
    }
}

impl RootkitBody {
    /// Claims a pending hide if the hijack is live and nobody else is
    /// already recovering.
    fn try_claim_recovery(&mut self, ctx: &mut RunCtx<'_>) -> Option<RunOutcome> {
        if !self.channel.hide_requested() {
            return None;
        }
        {
            let mut i = self.handle.inner.borrow_mut();
            if i.active_since.is_none() || i.recovery_in_progress {
                return None;
            }
            i.recovery_in_progress = true;
        }
        self.channel.begin_hide();
        self.phase = Phase::Recovering;
        ctx.mark(MarkTag::RecoveryBegin);
        ctx.trace(
            TraceCategory::AttackHide,
            format!("recovery started on {}", ctx.core()),
        );
        // The recovery work occupies the CPU for Tns_recover; the actual
        // restore write lands when it completes.
        let recover = ctx.recovery_cost();
        Some(RunOutcome::yield_after(recover))
    }
}

impl ThreadBody for RootkitBody {
    fn on_run(&mut self, ctx: &mut RunCtx<'_>) -> RunOutcome {
        match self.phase {
            Phase::NotInstalled => {
                self.install(ctx);
                self.phase = Phase::Active;
                RunOutcome::sleep_aligned(SimDuration::from_micros(5), self.config.poll)
            }
            Phase::Active => {
                if !self.handle.is_active() {
                    // Another thread already recovered this hide.
                    self.phase = Phase::Hidden;
                    return RunOutcome::sleep_aligned(
                        SimDuration::from_micros(2),
                        self.config.poll,
                    );
                }
                self.try_claim_recovery(ctx).unwrap_or_else(|| {
                    RunOutcome::sleep_aligned(SimDuration::from_micros(2), self.config.poll)
                })
            }
            Phase::Recovering => {
                self.restore(ctx);
                self.handle.inner.borrow_mut().recovery_in_progress = false;
                self.channel.hide_completed();
                self.phase = Phase::Hidden;
                RunOutcome::sleep_aligned(SimDuration::from_micros(2), self.config.poll)
            }
            Phase::Hidden => {
                // Helpers may claim a recovery from here too (the hijack can
                // be live while *this* thread has never recovered anything).
                if let Some(out) = self.try_claim_recovery(ctx) {
                    return out;
                }
                if self.role == RootkitRole::Leader
                    && self.config.auto_reinstall
                    && !self.handle.is_active()
                    && self
                        .channel
                        .all_clear(ctx.now(), self.config.quiet_before_reinstall)
                {
                    self.channel.clear_hide_request();
                    self.install(ctx);
                    self.channel.record_reinstall();
                    self.phase = Phase::Active;
                }
                RunOutcome::sleep_aligned(SimDuration::from_micros(2), self.config.poll)
            }
        }
    }
}

/// Deploys the rootkit onto `sys`: the leader thread on `core` plus (with
/// [`RootkitConfig::multi_core_recovery`]) a helper on every other core, all
/// waking at `start`.
///
/// Uses RT priority 98 — right below the probers — so recovery starts within
/// one poll period of the hide signal regardless of CFS load.
pub fn deploy_rootkit(
    sys: &mut System,
    core: CoreId,
    config: RootkitConfig,
    channel: &EvaderChannel,
    start: SimTime,
) -> (TaskId, RootkitHandle) {
    let handle = RootkitHandle::default();
    let leader = RootkitBody::new(config, channel.clone(), handle.clone(), RootkitRole::Leader);
    let t = sys.spawn(
        "rootkit",
        SchedClass::RtFifo { priority: 98 },
        Affinity::pinned(core),
        leader,
    );
    sys.wake_at(t, start);
    if config.multi_core_recovery {
        for i in 0..sys.num_cores() {
            let c = CoreId::new(i);
            if c == core {
                continue;
            }
            let helper =
                RootkitBody::new(config, channel.clone(), handle.clone(), RootkitRole::Helper);
            let h = sys.spawn(
                format!("rootkit-helper-{i}"),
                SchedClass::RtFifo { priority: 98 },
                Affinity::pinned(c),
                helper,
            );
            sys.wake_at(h, start);
        }
    }
    (t, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use satin_kernel::syscall::SyscallTable;
    use satin_system::SystemBuilder;

    fn sys() -> System {
        SystemBuilder::new().seed(21).trace(false).build()
    }

    #[test]
    fn installs_on_first_run() {
        let mut s = sys();
        let ch = EvaderChannel::new();
        let (_, handle) = deploy_rootkit(
            &mut s,
            CoreId::new(3),
            RootkitConfig::default(),
            &ch,
            SimTime::from_millis(1),
        );
        s.run_until(SimTime::from_millis(2));
        assert_eq!(handle.installs(), 1);
        assert!(handle.is_active());
        // The table entry now differs from the genuine pointer.
        let table = SyscallTable::new(s.layout());
        let ptr = s.mem().read_u64(table.entry_addr(GETTID_NR)).unwrap();
        assert_ne!(Some(ptr), s.stats().genuine_syscall(GETTID_NR));
    }

    #[test]
    fn hide_restores_after_recovery_time() {
        let mut s = sys();
        let ch = EvaderChannel::new();
        let cfg = RootkitConfig {
            auto_reinstall: false,
            // Pin recovery to the A53 leader so the latency is per-kind.
            multi_core_recovery: false,
            ..RootkitConfig::default()
        };
        let (_, handle) = deploy_rootkit(&mut s, CoreId::new(3), cfg, &ch, SimTime::ZERO);
        s.run_until(SimTime::from_millis(5));
        assert!(handle.is_active());
        // The prober "detects" an introspection at t=5ms.
        let detect_at = s.now();
        ch.report_detection(detect_at, CoreId::new(0), SimDuration::from_millis(2));
        s.run_until(SimTime::from_millis(30));
        assert_eq!(handle.restores(), 1);
        assert!(!handle.is_active());
        // Restore happened ≈ Tns_recover (A53 ≈ 5.2–6.13 ms) after detection,
        // plus at most one 50µs poll.
        let restored = handle.last_restore_at().unwrap();
        let latency = restored.since(detect_at).as_secs_f64();
        assert!(
            (5.0e-3..6.6e-3).contains(&latency),
            "recovery latency {latency}s"
        );
        // Memory is byte-identical to the genuine entry again.
        let table = SyscallTable::new(s.layout());
        let ptr = s.mem().read_u64(table.entry_addr(GETTID_NR)).unwrap();
        assert_eq!(Some(ptr), s.stats().genuine_syscall(GETTID_NR));
    }

    #[test]
    fn reinstalls_after_quiet_period() {
        let mut s = sys();
        let ch = EvaderChannel::new();
        let (_, handle) = deploy_rootkit(
            &mut s,
            CoreId::new(2),
            RootkitConfig::default(),
            &ch,
            SimTime::ZERO,
        );
        s.run_until(SimTime::from_millis(2));
        ch.report_detection(s.now(), CoreId::new(0), SimDuration::from_millis(2));
        // Recovery (~5-6ms) + quiet period (20ms) + margin.
        s.run_until(SimTime::from_millis(60));
        assert_eq!(handle.installs(), 2, "expected a reinstall");
        assert!(handle.is_active());
        let (started, completed, reinstalls) = ch.lifecycle_counts();
        assert_eq!((started, completed, reinstalls), (1, 1, 1));
    }

    #[test]
    fn active_time_accumulates() {
        let mut s = sys();
        let ch = EvaderChannel::new();
        let cfg = RootkitConfig {
            auto_reinstall: false,
            ..RootkitConfig::default()
        };
        let (_, handle) = deploy_rootkit(&mut s, CoreId::new(3), cfg, &ch, SimTime::ZERO);
        s.run_until(SimTime::from_millis(10));
        let t1 = handle.active_time(s.now());
        assert!(t1 > SimDuration::from_millis(9));
        ch.report_detection(s.now(), CoreId::new(1), SimDuration::ZERO);
        s.run_until(SimTime::from_millis(40));
        let t2 = handle.active_time(s.now());
        // Active time stops growing once hidden.
        assert!(t2 < SimDuration::from_millis(17), "active {t2}");
    }
}
