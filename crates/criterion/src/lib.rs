//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crate registry, so this crate
//! provides the subset of the criterion API the workspace's benches use —
//! [`Criterion::bench_function`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`] and [`criterion_main!`] —
//! backed by a simple wall-clock timer. Each benchmark runs a short warm-up
//! followed by `sample_size` timed samples and prints the median per-iteration
//! time. It reports no statistics beyond that and performs no outlier
//! analysis; it exists so `cargo bench` keeps working offline.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` call sites keep working.
pub use std::hint::black_box;

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The measurement driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `routine`, running it once per sample after one warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

/// Top-level benchmark registry.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Creates a driver with the default sample size (20).
    pub fn new() -> Self {
        Criterion { sample_size: 20 }
    }

    /// Reads configuration from the command line (accepted, not acted on).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: R,
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates the group's throughput (accepted, not acted on).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: R,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.into()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<R: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut R) {
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    match b.median() {
        Some(d) => println!("bench {id:<50} median {d:>12.3?} ({sample_size} samples)"),
        None => println!("bench {id:<50} no samples recorded"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::new();
        c.sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut b = Bencher::new(2);
        let mut setups = 0u32;
        b.iter_batched(
            || {
                setups += 1;
            },
            |()| (),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 3);
        assert_eq!(b.samples.len(), 2);
    }
}
