//! Streaming summary statistics (Welford's algorithm).

use std::fmt;

/// Incremental mean/min/max/variance accumulator.
///
/// Uses Welford's online algorithm so long experiment streams never need to be
/// buffered.
///
/// # Example
///
/// ```
/// use satin_stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.push(v);
/// }
/// let summary = s.summary().unwrap();
/// assert_eq!(summary.mean, 2.5);
/// assert_eq!(summary.min, 1.0);
/// assert_eq!(summary.max, 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN observation is always an upstream bug.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation");
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Finalizes into a [`Summary`], or `None` if no observations were added.
    pub fn summary(&self) -> Option<Summary> {
        if self.n == 0 {
            return None;
        }
        let var = if self.n > 1 {
            self.m2 / (self.n - 1) as f64
        } else {
            0.0
        };
        Some(Summary {
            count: self.n,
            mean: self.mean,
            min: self.min,
            max: self.max,
            stddev: var.sqrt(),
        })
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Finalized summary statistics over a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample standard deviation (0 for a single observation).
    pub stddev: f64,
}

impl Summary {
    /// Summarizes a slice.
    ///
    /// Returns `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        values.iter().copied().collect::<OnlineStats>().summary()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={} sd={}",
            self.count,
            crate::fmt_sci(self.mean, 2),
            crate::fmt_sci(self.min, 2),
            crate::fmt_sci(self.max, 2),
            crate::fmt_sci(self.stddev, 2)
        )
    }
}

/// Geometric mean of strictly positive values (UnixBench-style index).
///
/// Returns `None` if `values` is empty or any value is not strictly positive.
///
/// # Example
///
/// ```
/// let g = satin_stats::summary::geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_has_no_summary() {
        assert!(OnlineStats::new().summary().is_none());
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn known_variance() {
        // Sample variance of [2,4,4,4,5,5,7,9] is 32/7.
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.summary().unwrap().mean, 2.0);
    }

    #[test]
    fn display_contains_fields() {
        let s = Summary::of(&[1e-4, 3e-4]).unwrap();
        let out = s.to_string();
        assert!(out.contains("n=2"));
        assert!(out.contains("2.00e-4"));
    }

    #[test]
    fn geometric_mean_rejects_nonpositive() {
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, 0.0]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
    }

    proptest! {
        #[test]
        fn prop_welford_matches_naive(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&values).unwrap();
            let n = values.len() as f64;
            let naive_mean: f64 = values.iter().sum::<f64>() / n;
            prop_assert!((s.mean - naive_mean).abs() < 1e-6 * (1.0 + naive_mean.abs()));
            let mn = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let mx = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(s.min, mn);
            prop_assert_eq!(s.max, mx);
            if values.len() > 1 {
                let naive_var: f64 = values.iter().map(|v| (v - naive_mean).powi(2)).sum::<f64>() / (n - 1.0);
                prop_assert!((s.stddev.powi(2) - naive_var).abs() < 1e-3 * (1.0 + naive_var.abs()));
            }
        }

        #[test]
        fn prop_mean_within_min_max(values in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
            let s = Summary::of(&values).unwrap();
            prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        }
    }
}
