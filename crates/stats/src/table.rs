//! Aligned plain-text tables for experiment reports.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (default).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple aligned text table, used by the `repro` binaries to print the
/// paper's tables.
///
/// # Example
///
/// ```
/// use satin_stats::table::{Table, Align};
/// let mut t = Table::new(vec!["Core-Time".into(), "Hash 1-Byte".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["A53-Average".into(), "1.07e-8".into()]);
/// let out = t.render();
/// assert!(out.contains("A53-Average"));
/// assert!(out.lines().count() >= 3); // header, rule, one row
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        let n = headers.len();
        Table {
            headers,
            aligns: vec![Align::Left; n],
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets an optional title printed above the table.
    pub fn title(&mut self, title: impl Into<String>) -> &mut Self {
        self.title = Some(title.into());
        self
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        self.aligns[col] = align;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let render_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i].saturating_sub(cell.chars().count());
                match aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        line.extend(std::iter::repeat(' ').take(pad));
                    }
                    Align::Right => {
                        line.extend(std::iter::repeat(' ').take(pad));
                        line.push_str(cell);
                    }
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(
            &self.headers,
            &widths,
            &vec![Align::Left; cols],
        ));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat('-').take(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.align(1, Align::Right);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        t
    }

    #[test]
    fn renders_aligned_columns() {
        let out = sample().render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numeric column: "1" should be padded to width 5.
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn title_rendered_first() {
        let mut t = sample();
        t.title("TABLE I");
        assert!(t.render().starts_with("TABLE I\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn display_matches_render() {
        let t = sample();
        assert_eq!(t.to_string(), t.render());
        assert_eq!(t.row_count(), 2);
    }
}
