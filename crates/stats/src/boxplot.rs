//! Five-number summaries and Tukey boxplot statistics (Figure 4 of the paper).

/// Boxplot statistics for one sample: quartiles, Tukey whiskers, outliers.
///
/// Quartiles use linear interpolation between order statistics (R type-7 /
/// NumPy default). Whiskers extend to the most extreme data points within
/// 1.5 × IQR of the quartiles; everything beyond is an outlier — the same
/// convention Figure 4 of the paper uses (its caption discusses "upper
/// whiskers" and "extreme large outliers").
///
/// # Example
///
/// ```
/// use satin_stats::FiveNumber;
/// let fv = FiveNumber::of(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
/// assert_eq!(fv.median, 3.0);
/// assert_eq!(fv.outliers, vec![100.0]);
/// assert_eq!(fv.whisker_high, 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FiveNumber {
    /// Smallest observation (including outliers).
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation (including outliers).
    pub max: f64,
    /// Lowest observation within `q1 - 1.5*IQR`.
    pub whisker_low: f64,
    /// Highest observation within `q3 + 1.5*IQR`.
    pub whisker_high: f64,
    /// Observations outside the whiskers, ascending.
    pub outliers: Vec<f64>,
}

impl FiveNumber {
    /// Computes boxplot statistics for `values`.
    ///
    /// Returns `None` if `values` is empty.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN.
    pub fn of(values: &[f64]) -> Option<FiveNumber> {
        if values.is_empty() {
            return None;
        }
        assert!(values.iter().all(|v| !v.is_nan()), "NaN observation");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN checked above"));
        let q1 = quantile_sorted(&sorted, 0.25);
        let median = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_low = sorted
            .iter()
            .copied()
            .find(|v| *v >= lo_fence)
            .unwrap_or(sorted[0]);
        let whisker_high = sorted
            .iter()
            .rev()
            .copied()
            .find(|v| *v <= hi_fence)
            .unwrap_or(*sorted.last().expect("nonempty"));
        let outliers = sorted
            .iter()
            .copied()
            .filter(|v| *v < lo_fence || *v > hi_fence)
            .collect();
        Some(FiveNumber {
            min: sorted[0],
            q1,
            median,
            q3,
            max: *sorted.last().expect("nonempty"),
            whisker_low,
            whisker_high,
            outliers,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Quantile of a **sorted** slice with linear interpolation (R type-7).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantiles_of_known_sample() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 4.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 2.5);
        assert!((quantile_sorted(&sorted, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn empty_returns_none() {
        assert!(FiveNumber::of(&[]).is_none());
    }

    #[test]
    fn single_value_collapses() {
        let fv = FiveNumber::of(&[7.0]).unwrap();
        assert_eq!(fv.min, 7.0);
        assert_eq!(fv.q1, 7.0);
        assert_eq!(fv.median, 7.0);
        assert_eq!(fv.q3, 7.0);
        assert_eq!(fv.max, 7.0);
        assert!(fv.outliers.is_empty());
    }

    #[test]
    fn outlier_detection() {
        let mut vals: Vec<f64> = (1..=20).map(f64::from).collect();
        vals.push(1000.0);
        let fv = FiveNumber::of(&vals).unwrap();
        assert_eq!(fv.outliers, vec![1000.0]);
        assert_eq!(fv.max, 1000.0);
        assert_eq!(fv.whisker_high, 20.0);
    }

    #[test]
    fn unsorted_input_handled() {
        let fv = FiveNumber::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(fv.median, 3.0);
        assert_eq!(fv.min, 1.0);
        assert_eq!(fv.max, 5.0);
    }

    proptest! {
        #[test]
        fn prop_ordering_invariants(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let fv = FiveNumber::of(&values).unwrap();
            prop_assert!(fv.min <= fv.q1);
            prop_assert!(fv.q1 <= fv.median);
            prop_assert!(fv.median <= fv.q3);
            prop_assert!(fv.q3 <= fv.max);
            prop_assert!(fv.whisker_low >= fv.min);
            prop_assert!(fv.whisker_high <= fv.max);
            prop_assert!(fv.whisker_low <= fv.whisker_high);
        }

        #[test]
        fn prop_outliers_outside_fences(values in proptest::collection::vec(-1e6f64..1e6, 4..200)) {
            let fv = FiveNumber::of(&values).unwrap();
            let lo = fv.q1 - 1.5 * fv.iqr();
            let hi = fv.q3 + 1.5 * fv.iqr();
            for o in &fv.outliers {
                prop_assert!(*o < lo || *o > hi);
            }
            // Non-outliers count + outliers count == total.
            let inside = values.iter().filter(|v| **v >= lo && **v <= hi).count();
            prop_assert_eq!(inside + fv.outliers.len(), values.len());
        }
    }
}
