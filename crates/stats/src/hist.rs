//! Fixed-width histogram for distribution sanity checks.

/// A histogram over `[lo, hi)` with equal-width bins plus underflow/overflow
/// counters.
///
/// # Example
///
/// ```
/// use satin_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.add(1.0);
/// h.add(9.9);
/// h.add(-5.0);
/// assert_eq!(h.counts(), &[1, 0, 0, 0, 1]);
/// assert_eq!(h.underflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// Returns `None` if `bins == 0`, bounds are non-finite, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Histogram> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn add(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation");
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `[lo, hi)` edges of bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn bin_edges(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + idx as f64 * w, self.lo + (idx + 1) as f64 * w)
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn invalid_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn binning_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.add(0.0);
        h.add(0.25);
        h.add(0.5);
        h.add(0.75);
        h.add(0.999);
        assert_eq!(h.counts(), &[1, 1, 1, 2]);
        assert_eq!(h.bin_edges(0), (0.0, 0.25));
        assert_eq!(h.bin_edges(3), (0.75, 1.0));
    }

    #[test]
    fn upper_bound_is_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(1.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn extend_counts_total() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend((0..100).map(|i| i as f64 / 10.0));
        assert_eq!(h.total(), 100);
    }

    proptest! {
        #[test]
        fn prop_total_conserved(values in proptest::collection::vec(-10.0f64..20.0, 0..300)) {
            let mut h = Histogram::new(0.0, 10.0, 7).unwrap();
            h.extend(values.iter().copied());
            prop_assert_eq!(h.total(), values.len() as u64);
        }
    }
}
