//! Fixed-width histogram for distribution sanity checks.

/// A histogram over `[lo, hi)` with equal-width bins plus underflow/overflow
/// counters.
///
/// # Example
///
/// ```
/// use satin_stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.add(1.0);
/// h.add(9.9);
/// h.add(-5.0);
/// assert_eq!(h.counts(), &[1, 0, 0, 0, 1]);
/// assert_eq!(h.underflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// Returns `None` if `bins == 0`, bounds are non-finite, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Histogram> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn add(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation");
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `[lo, hi)` edges of bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn bin_edges(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.counts.len(), "bin index out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + idx as f64 * w, self.lo + (idx + 1) as f64 * w)
    }

    /// Renders the histogram as labelled count rows (one per nonempty bin,
    /// plus underflow/overflow rows when nonzero), bars scaled to `width`.
    pub fn render(&self, width: usize) -> String {
        let mut rows = Vec::new();
        if self.underflow > 0 {
            rows.push((format!("< {:.3}", self.lo), self.underflow));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                let (lo, hi) = self.bin_edges(i);
                rows.push((format!("[{lo:.3}, {hi:.3})"), c));
            }
        }
        if self.overflow > 0 {
            rows.push((format!(">= {:.3}", self.hi), self.overflow));
        }
        render_count_rows(&rows, width)
    }
}

/// Renders labelled counts as an ASCII histogram: one row per label, bars
/// scaled so the largest count spans `width` characters. The shared renderer
/// behind [`Histogram::render`] and the telemetry layer's log-bucket
/// duration histograms.
///
/// # Example
///
/// ```
/// let out = satin_stats::hist::render_count_rows(
///     &[("[1us, 2us)".to_string(), 30), ("[2us, 4us)".to_string(), 10)],
///     20,
/// );
/// assert!(out.contains("[1us, 2us)"));
/// assert!(out.lines().count() == 2);
/// ```
pub fn render_count_rows(rows: &[(String, u64)], width: usize) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let max = rows.iter().map(|(_, c)| *c).max().unwrap_or(0);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let count_w = rows
        .iter()
        .map(|(_, c)| c.to_string().len())
        .max()
        .unwrap_or(1);
    let mut out = String::new();
    for (label, count) in rows {
        let bar_len = if max > 0 {
            ((*count as f64 / max as f64) * width as f64).round() as usize
        } else {
            0
        };
        let pad = label_w - label.chars().count();
        out.push_str(label);
        out.extend(std::iter::repeat(' ').take(pad));
        out.push_str(&format!(" | {count:>count_w$} "));
        out.extend(std::iter::repeat('#').take(bar_len));
        out.push('\n');
    }
    out
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn invalid_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
    }

    #[test]
    fn binning_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.add(0.0);
        h.add(0.25);
        h.add(0.5);
        h.add(0.75);
        h.add(0.999);
        assert_eq!(h.counts(), &[1, 1, 1, 2]);
        assert_eq!(h.bin_edges(0), (0.0, 0.25));
        assert_eq!(h.bin_edges(3), (0.75, 1.0));
    }

    #[test]
    fn upper_bound_is_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(1.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn extend_counts_total() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend((0..100).map(|i| i as f64 / 10.0));
        assert_eq!(h.total(), 100);
    }

    #[test]
    fn render_shows_nonempty_bins_and_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.add(1.0);
        h.add(1.5);
        h.add(9.0);
        h.add(-1.0);
        h.add(42.0);
        let out = h.render(10);
        assert_eq!(out.lines().count(), 4); // 2 bins + underflow + overflow
        assert!(out.contains("[0.000, 2.000)"));
        assert!(out.contains("< 0.000"));
        assert!(out.contains(">= 10.000"));
        assert!(out.contains('#'));
    }

    #[test]
    fn render_count_rows_scales_bars() {
        let rows = vec![("a".to_string(), 4), ("bb".to_string(), 2)];
        let out = render_count_rows(&rows, 8);
        let lines: Vec<_> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].matches('#').count(), 8);
        assert_eq!(lines[1].matches('#').count(), 4);
        assert!(render_count_rows(&[], 8).is_empty());
    }

    proptest! {
        #[test]
        fn prop_total_conserved(values in proptest::collection::vec(-10.0f64..20.0, 0..300)) {
            let mut h = Histogram::new(0.0, 10.0, 7).unwrap();
            h.extend(values.iter().copied());
            prop_assert_eq!(h.total(), values.len() as u64);
        }
    }
}
