#![warn(missing_docs)]
//! Statistics and plain-text reporting utilities for SATIN experiments.
//!
//! The SATIN paper reports its measurements as average/max/min triples
//! (Tables I and II), boxplots (Figure 4), and normalized bar charts
//! (Figure 7). This crate provides the corresponding machinery:
//!
//! - [`Summary`] / [`OnlineStats`] — streaming mean/min/max/stddev;
//! - [`FiveNumber`] — boxplot five-number summaries with Tukey whiskers and
//!   outlier extraction (Figure 4);
//! - [`Histogram`] — fixed-width binning for distribution sanity checks;
//! - [`table::Table`] — aligned plain-text tables matching the paper's rows;
//! - [`chart`] — ASCII bar charts and boxplot strips for terminal reports;
//! - [`fmt_sci`] — the paper's `x.xx e-y s` scientific time formatting.

pub mod boxplot;
pub mod chart;
pub mod hist;
pub mod summary;
pub mod table;

pub use boxplot::FiveNumber;
pub use hist::Histogram;
pub use summary::{OnlineStats, Summary};

/// Formats a number in the paper's scientific notation, e.g. `2.61e-4`.
///
/// # Example
///
/// ```
/// assert_eq!(satin_stats::fmt_sci(2.61e-4, 2), "2.61e-4");
/// assert_eq!(satin_stats::fmt_sci(0.0, 2), "0.00e0");
/// assert_eq!(satin_stats::fmt_sci(-6.67e-9, 2), "-6.67e-9");
/// ```
pub fn fmt_sci(value: f64, decimals: usize) -> String {
    if value == 0.0 {
        return format!("{:.*}e0", decimals, 0.0);
    }
    let sign = if value < 0.0 { "-" } else { "" };
    let v = value.abs();
    let mut exp = v.log10().floor() as i32;
    let mut mantissa = v / 10f64.powi(exp);
    // Guard against rounding like 9.9995 -> "10.00e-5".
    if format!("{mantissa:.*}", decimals)
        .parse::<f64>()
        .unwrap_or(mantissa)
        >= 10.0
    {
        mantissa /= 10.0;
        exp += 1;
    }
    format!("{sign}{mantissa:.*}e{exp}", decimals)
}

/// Formats a fraction as a percentage with the given precision, e.g. `0.711%`.
///
/// # Example
///
/// ```
/// assert_eq!(satin_stats::fmt_percent(0.00711, 3), "0.711%");
/// ```
pub fn fmt_percent(fraction: f64, decimals: usize) -> String {
    format!("{:.*}%", decimals, fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_matches_paper_style() {
        assert_eq!(fmt_sci(6.71e-9, 2), "6.71e-9");
        assert_eq!(fmt_sci(1.8e-3, 2), "1.80e-3");
        assert_eq!(fmt_sci(8.04e-2, 2), "8.04e-2");
        assert_eq!(fmt_sci(1.07e-4, 2), "1.07e-4");
        assert_eq!(fmt_sci(152.0, 1), "1.5e2");
    }

    #[test]
    fn sci_rounding_carry() {
        // 9.999e-4 at 2 decimals must carry to 1.00e-3, not 10.00e-4.
        assert_eq!(fmt_sci(9.999e-4, 2), "1.00e-3");
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(fmt_percent(0.03556, 3), "3.556%");
        assert_eq!(fmt_percent(0.0, 1), "0.0%");
        assert_eq!(fmt_percent(1.0, 0), "100%");
    }
}
