//! ASCII charts: horizontal bar charts (Figure 7) and boxplot strips
//! (Figure 4) for terminal experiment reports.

use crate::boxplot::FiveNumber;

/// Renders a horizontal bar chart of labelled values.
///
/// Bars are scaled so the largest value spans `width` characters. Values must
/// be nonnegative.
///
/// # Example
///
/// ```
/// let out = satin_stats::chart::bar_chart(
///     &[("file copy 256B".to_string(), 3.556), ("dhrystone".to_string(), 0.2)],
///     20,
///     "%",
/// );
/// assert!(out.contains("file copy 256B"));
/// assert!(out.contains('#'));
/// ```
pub fn bar_chart(items: &[(String, f64)], width: usize, unit: &str) -> String {
    if items.is_empty() {
        return String::new();
    }
    let max = items.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = items
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        let pad = label_w - label.chars().count();
        out.push_str(label);
        out.extend(std::iter::repeat(' ').take(pad));
        out.push_str(" | ");
        out.extend(std::iter::repeat('#').take(bar_len));
        out.push_str(&format!(" {value:.3}{unit}\n"));
    }
    out
}

/// Renders one boxplot as a single text strip over `[lo, hi]`.
///
/// Layout: `-` whisker span, `=` box (Q1..Q3), `|` median, `o` outliers.
///
/// # Example
///
/// ```
/// use satin_stats::FiveNumber;
/// let fv = FiveNumber::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// let strip = satin_stats::chart::boxplot_strip(&fv, 0.0, 6.0, 30);
/// assert_eq!(strip.chars().count(), 30);
/// assert!(strip.contains('|'));
/// ```
pub fn boxplot_strip(fv: &FiveNumber, lo: f64, hi: f64, width: usize) -> String {
    assert!(width >= 3, "strip too narrow");
    assert!(lo < hi, "invalid strip range");
    let pos = |v: f64| -> usize {
        let frac = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((frac * (width - 1) as f64).round() as usize).min(width - 1)
    };
    let mut strip = vec![' '; width];
    strip[pos(fv.whisker_low)..=pos(fv.whisker_high)].fill('-');
    strip[pos(fv.q1)..=pos(fv.q3)].fill('=');
    strip[pos(fv.median)] = '|';
    for o in &fv.outliers {
        strip[pos(*o)] = 'o';
    }
    strip.into_iter().collect()
}

/// Renders labelled boxplots on a shared scale, one strip per row.
pub fn boxplot_chart(rows: &[(String, FiveNumber)], width: usize) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let lo = rows
        .iter()
        .map(|(_, f)| f.min)
        .fold(f64::INFINITY, f64::min);
    let hi = rows
        .iter()
        .map(|(_, f)| f.max)
        .fold(f64::NEG_INFINITY, f64::max);
    let (lo, hi) = if lo < hi {
        (lo, hi)
    } else {
        (lo - 0.5, hi + 0.5)
    };
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, fv) in rows {
        let pad = label_w - label.chars().count();
        out.push_str(label);
        out.extend(std::iter::repeat(' ').take(pad));
        out.push_str(" [");
        out.push_str(&boxplot_strip(fv, lo, hi, width));
        out.push_str("]\n");
    }
    out.push_str(&format!(
        "{:label_w$} scale: {} .. {}\n",
        "",
        crate::fmt_sci(lo, 2),
        crate::fmt_sci(hi, 2),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let out = bar_chart(
            &[("big".to_string(), 10.0), ("small".to_string(), 5.0)],
            10,
            "",
        );
        let lines: Vec<&str> = out.lines().collect();
        let hashes = |s: &str| s.chars().filter(|c| *c == '#').count();
        assert_eq!(hashes(lines[0]), 10);
        assert_eq!(hashes(lines[1]), 5);
    }

    #[test]
    fn bar_chart_handles_empty_and_zero() {
        assert_eq!(bar_chart(&[], 10, ""), "");
        let out = bar_chart(&[("z".to_string(), 0.0)], 10, "%");
        assert!(!out.contains('#'));
    }

    #[test]
    fn strip_marks_components() {
        let fv = FiveNumber::of(&[1.0, 2.0, 3.0, 4.0, 50.0]).unwrap();
        let s = boxplot_strip(&fv, 0.0, 55.0, 56);
        assert!(s.contains('='));
        assert!(s.contains('|'));
        assert!(s.contains('o'));
    }

    #[test]
    fn chart_shares_scale() {
        let a = FiveNumber::of(&[1.0, 2.0, 3.0]).unwrap();
        let b = FiveNumber::of(&[10.0, 20.0, 30.0]).unwrap();
        let out = boxplot_chart(&[("a".to_string(), a), ("b".to_string(), b)], 40);
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("scale:"));
    }

    #[test]
    fn chart_degenerate_range() {
        let a = FiveNumber::of(&[5.0, 5.0]).unwrap();
        let out = boxplot_chart(&[("a".to_string(), a)], 20);
        assert!(out.contains('['));
    }
}
