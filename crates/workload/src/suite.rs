//! The workload descriptors.

use satin_sim::SimDuration;

/// One UnixBench-like workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Benchmark name, matching the paper's Figure 7 labels.
    pub name: &'static str,
    /// Cache/interference sensitivity in `[0, 1]`: how strongly the
    /// workload's throughput suffers inside a post-introspection
    /// interference window. Small-working-set compute (Dhrystone) is nearly
    /// immune; small-buffer copies and context switching live and die by
    /// cache state.
    pub sensitivity: f64,
    /// CPU time per activation (between scheduler yields).
    pub quantum: SimDuration,
    /// Nominal operations per effective second (sets the score scale; has
    /// no effect on *relative* degradation).
    pub ops_per_sec: f64,
    /// Syscall invocations per activation (exercises the syscall table; the
    /// "System Call Overhead" benchmark is the extreme).
    pub syscalls_per_quantum: u32,
}

/// The twelve-benchmark suite mirroring the paper's Figure 7.
///
/// Sensitivities are the calibration that reproduces Figure 7's *shape*:
/// `pipe-based context switching` and `file copy 256B` at the top,
/// arithmetic kernels at the bottom.
pub fn unixbench_suite() -> Vec<Workload> {
    let q = SimDuration::from_millis(1);
    vec![
        Workload {
            name: "dhrystone 2",
            sensitivity: 0.01,
            quantum: q,
            ops_per_sec: 25_000_000.0,
            syscalls_per_quantum: 0,
        },
        Workload {
            name: "whetstone",
            sensitivity: 0.01,
            quantum: q,
            ops_per_sec: 4_000.0,
            syscalls_per_quantum: 0,
        },
        Workload {
            name: "execl throughput",
            sensitivity: 0.03,
            quantum: q,
            ops_per_sec: 900.0,
            syscalls_per_quantum: 4,
        },
        Workload {
            name: "file copy 256B",
            sensitivity: 0.91,
            quantum: q,
            ops_per_sec: 120_000.0,
            syscalls_per_quantum: 8,
        },
        Workload {
            name: "file copy 1024B",
            sensitivity: 0.06,
            quantum: q,
            ops_per_sec: 220_000.0,
            syscalls_per_quantum: 8,
        },
        Workload {
            name: "file copy 4096B",
            sensitivity: 0.03,
            quantum: q,
            ops_per_sec: 380_000.0,
            syscalls_per_quantum: 8,
        },
        Workload {
            name: "pipe throughput",
            sensitivity: 0.04,
            quantum: q,
            ops_per_sec: 500_000.0,
            syscalls_per_quantum: 6,
        },
        Workload {
            name: "pipe-based context switching",
            sensitivity: 1.0,
            quantum: SimDuration::from_micros(500),
            ops_per_sec: 90_000.0,
            syscalls_per_quantum: 6,
        },
        Workload {
            name: "process creation",
            sensitivity: 0.03,
            quantum: q,
            ops_per_sec: 2_500.0,
            syscalls_per_quantum: 4,
        },
        Workload {
            name: "shell scripts (1)",
            sensitivity: 0.02,
            quantum: q,
            ops_per_sec: 1_800.0,
            syscalls_per_quantum: 3,
        },
        Workload {
            name: "shell scripts (8)",
            sensitivity: 0.025,
            quantum: q,
            ops_per_sec: 240.0,
            syscalls_per_quantum: 3,
        },
        Workload {
            name: "system call overhead",
            sensitivity: 0.015,
            quantum: SimDuration::from_micros(500),
            ops_per_sec: 1_200_000.0,
            syscalls_per_quantum: 16,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_benchmarks() {
        assert_eq!(unixbench_suite().len(), 12);
    }

    #[test]
    fn sensitivities_valid_and_shaped() {
        let suite = unixbench_suite();
        for w in &suite {
            assert!((0.0..=1.0).contains(&w.sensitivity), "{}", w.name);
            assert!(w.ops_per_sec > 0.0);
            assert!(!w.quantum.is_zero());
        }
        // The paper's two worst offenders top the sensitivity ranking.
        let max = suite
            .iter()
            .max_by(|a, b| a.sensitivity.total_cmp(&b.sensitivity))
            .unwrap();
        assert_eq!(max.name, "pipe-based context switching");
        let copy256 = suite.iter().find(|w| w.name == "file copy 256B").unwrap();
        assert!(suite
            .iter()
            .filter(|w| w.name != max.name && w.name != copy256.name)
            .all(|w| w.sensitivity < copy256.sensitivity));
    }

    #[test]
    fn names_unique() {
        let suite = unixbench_suite();
        let mut names: Vec<_> = suite.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }
}
