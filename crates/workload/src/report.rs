//! Overhead-study results.

use satin_stats::summary::geometric_mean;

/// One workload's scores with SATIN off and on.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Workload name.
    pub name: String,
    /// Score without SATIN.
    pub score_off: f64,
    /// Score with SATIN.
    pub score_on: f64,
}

impl OverheadRow {
    /// Normalized degradation `1 − on/off` (the Figure 7 bar).
    pub fn degradation(&self) -> f64 {
        if self.score_off <= 0.0 {
            return 0.0;
        }
        1.0 - self.score_on / self.score_off
    }
}

/// The full study result for one task count.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    /// Parallel copies per benchmark (1 or 6 in the paper).
    pub tasks: usize,
    /// Per-workload rows.
    pub rows: Vec<OverheadRow>,
}

impl OverheadReport {
    /// Arithmetic mean degradation across workloads (the paper's "0.711%"
    /// and "0.848%" numbers).
    pub fn mean_degradation(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.degradation()).sum::<f64>() / self.rows.len() as f64
    }

    /// The worst-degraded workload.
    pub fn worst(&self) -> Option<&OverheadRow> {
        self.rows
            .iter()
            .max_by(|a, b| a.degradation().total_cmp(&b.degradation()))
    }

    /// UnixBench-style geometric-mean index of normalized scores
    /// (`on/off`), if computable.
    pub fn index(&self) -> Option<f64> {
        let ratios: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.score_off > 0.0)
            .map(|r| r.score_on / r.score_off)
            .collect();
        geometric_mean(&ratios)
    }

    /// `(label, degradation)` pairs for chart rendering.
    pub fn bars(&self) -> Vec<(String, f64)> {
        self.rows
            .iter()
            .map(|r| (r.name.clone(), r.degradation() * 100.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> OverheadReport {
        OverheadReport {
            tasks: 1,
            rows: vec![
                OverheadRow {
                    name: "a".into(),
                    score_off: 100.0,
                    score_on: 99.0,
                },
                OverheadRow {
                    name: "b".into(),
                    score_off: 200.0,
                    score_on: 192.0,
                },
            ],
        }
    }

    #[test]
    fn degradation_math() {
        let r = report();
        assert!((r.rows[0].degradation() - 0.01).abs() < 1e-12);
        assert!((r.rows[1].degradation() - 0.04).abs() < 1e-12);
        assert!((r.mean_degradation() - 0.025).abs() < 1e-12);
        assert_eq!(r.worst().unwrap().name, "b");
    }

    #[test]
    fn index_is_geometric_mean_of_ratios() {
        let r = report();
        let idx = r.index().unwrap();
        assert!((idx - (0.99f64 * 0.96).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_rows() {
        let r = OverheadReport {
            tasks: 1,
            rows: vec![],
        };
        assert_eq!(r.mean_degradation(), 0.0);
        assert!(r.worst().is_none());
        let z = OverheadRow {
            name: "z".into(),
            score_off: 0.0,
            score_on: 0.0,
        };
        assert_eq!(z.degradation(), 0.0);
    }

    #[test]
    fn bars_in_percent() {
        let r = report();
        let bars = r.bars();
        assert_eq!(bars.len(), 2);
        assert!((bars[1].1 - 4.0).abs() < 1e-9);
    }
}
