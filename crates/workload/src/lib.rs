#![warn(missing_docs)]
//! UnixBench-like simulated workload suite: the Figure 7 overhead study.
//!
//! The paper evaluates SATIN's overhead with UnixBench (§VI-B2), running
//! each benchmark once (1-task) and in six simultaneous copies (6-task),
//! with and without SATIN's self-activation enabled. The reported
//! degradations are 0.711% (1-task mean) and 0.848% (6-task mean), with
//! `file copy 256B` (3.556%) and `pipe-based context switching` (3.912%)
//! worst — the workloads most sensitive to cache disturbance.
//!
//! Here each benchmark is a CPU-occupying task whose *effective work* is
//! accounted by the system layer: work accrues at the core's speed, scaled
//! down inside post-introspection interference windows by the workload's
//! cache sensitivity. A workload's score is effective seconds × its nominal
//! operation rate, and the Figure 7 bar is `1 − score_on / score_off`.

pub mod report;
pub mod runner;
pub mod suite;

pub use report::{OverheadReport, OverheadRow};
pub use runner::{run_overhead_study, OverheadConfig};
pub use suite::{unixbench_suite, Workload};
