//! The overhead-study harness: each workload × {SATIN off, SATIN on}.

use crate::report::{OverheadReport, OverheadRow};
use crate::suite::Workload;
use satin_core::{Satin, SatinConfig};
use satin_kernel::{Affinity, SchedClass, TaskId};
use satin_mem::layout::GETTID_NR;
use satin_sim::{SimDuration, SimTime};
use satin_system::{RunCtx, RunOutcome, SystemBuilder, ThreadBody};

/// Overhead-study configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadConfig {
    /// Simulated duration of each benchmark run.
    pub duration: SimDuration,
    /// Parallel copies of the benchmark (1-task vs 6-task in the paper).
    pub tasks: usize,
    /// SATIN configuration used for the "on" runs.
    pub satin: SatinConfig,
    /// Master seed.
    pub seed: u64,
}

impl OverheadConfig {
    /// The paper-shaped study: 300 s per run (≈37 introspection rounds at
    /// tp = 8 s), with the paper's SATIN configuration.
    pub fn paper(tasks: usize, seed: u64) -> Self {
        OverheadConfig {
            duration: SimDuration::from_secs(300),
            tasks,
            satin: SatinConfig::paper(),
            seed,
        }
    }
}

/// A benchmark task body: occupy the CPU in quanta, occasionally exercising
/// the syscall table, forever.
struct BenchBody {
    quantum: SimDuration,
    syscalls: u32,
}

impl ThreadBody for BenchBody {
    fn on_run(&mut self, ctx: &mut RunCtx<'_>) -> RunOutcome {
        for _ in 0..self.syscalls {
            let _ = ctx.resolve_syscall(GETTID_NR);
        }
        RunOutcome::yield_after(self.quantum)
    }
}

/// Runs one benchmark once and returns its score (effective seconds summed
/// over copies × nominal rate).
pub fn run_single(
    workload: &Workload,
    tasks: usize,
    duration: SimDuration,
    satin: Option<SatinConfig>,
    seed: u64,
) -> f64 {
    assert!(tasks > 0, "at least one task");
    let mut sys = SystemBuilder::new().seed(seed).trace(false).build();
    let n = sys.num_cores();
    let mut tids: Vec<TaskId> = Vec::new();
    for i in 0..tasks {
        let t = sys.spawn(
            format!("{}-{i}", workload.name),
            SchedClass::cfs(),
            Affinity::any(n),
            BenchBody {
                quantum: workload.quantum,
                syscalls: workload.syscalls_per_quantum,
            },
        );
        sys.set_sensitivity(t, workload.sensitivity);
        sys.wake_at(t, SimTime::ZERO);
        tids.push(t);
    }
    if let Some(cfg) = satin {
        let (service, _handle) = Satin::new(cfg);
        sys.install_secure_service(service);
    }
    sys.run_until(SimTime::ZERO + duration);
    let effective: f64 = tids.iter().map(|t| sys.work_secs(*t)).sum();
    effective * workload.ops_per_sec
}

/// Runs the full study over `suite`, producing one row per workload.
pub fn run_overhead_study(suite: &[Workload], config: OverheadConfig) -> OverheadReport {
    let rows = suite
        .iter()
        .map(|w| {
            let off = run_single(w, config.tasks, config.duration, None, config.seed);
            let on = run_single(
                w,
                config.tasks,
                config.duration,
                Some(config.satin),
                config.seed,
            );
            OverheadRow {
                name: w.name.to_string(),
                score_off: off,
                score_on: on,
            }
        })
        .collect();
    OverheadReport {
        tasks: config.tasks,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::unixbench_suite;

    #[test]
    fn scores_scale_with_duration() {
        let w = &unixbench_suite()[0];
        let s1 = run_single(w, 1, SimDuration::from_secs(2), None, 9);
        let s2 = run_single(w, 1, SimDuration::from_secs(4), None, 9);
        assert!(s2 > 1.8 * s1, "{s1} vs {s2}");
    }

    #[test]
    fn six_tasks_score_more_than_one() {
        let w = &unixbench_suite()[0];
        let one = run_single(w, 1, SimDuration::from_secs(2), None, 9);
        let six = run_single(w, 6, SimDuration::from_secs(2), None, 9);
        // Six copies on six cores: close to 6× the aggregate (A53 cores are
        // slower, so not exactly 6×).
        let ratio = six / one;
        assert!((3.0..6.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn satin_costs_something_but_little() {
        // Shorter run with a faster tp so several rounds land.
        let mut satin = SatinConfig::paper();
        satin.tgoal = SimDuration::from_secs(19); // tp = 1s
        let w = crate::suite::unixbench_suite()
            .into_iter()
            .find(|w| w.name == "pipe-based context switching")
            .unwrap();
        let off = run_single(&w, 1, SimDuration::from_secs(30), None, 10);
        let on = run_single(&w, 1, SimDuration::from_secs(30), Some(satin), 10);
        let degradation = 1.0 - on / off;
        // tp = 1s means ~8x the paper's round rate, so the most sensitive
        // workload degrades several percent — but nowhere near freezing.
        assert!(degradation > 0.005, "degradation {degradation}");
        assert!(degradation < 0.6, "degradation {degradation}");
    }

    #[test]
    fn study_produces_all_rows() {
        let suite: Vec<_> = unixbench_suite().into_iter().take(3).collect();
        let mut cfg = OverheadConfig::paper(1, 5);
        cfg.duration = SimDuration::from_secs(10);
        let report = run_overhead_study(&suite, cfg);
        assert_eq!(report.rows.len(), 3);
        assert!(report.rows.iter().all(|r| r.score_off > 0.0));
    }
}
