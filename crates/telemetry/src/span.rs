//! Hierarchical sim-time spans and the [`Timeline`] recorder.
//!
//! A span is a named `[start, end)` interval on a *track* (one per core, by
//! convention), optionally linked to a parent span — so one introspection
//! session becomes a small tree: `secure.session` at the root, with
//! `world.switch_in`, `scan.window`, and `world.switch_out` children.
//! Instant events mark zero-width moments (a publication, an alarm).
//!
//! Recording is append-only and ids are assigned sequentially, so the same
//! simulation always produces the same timeline byte for byte.

use satin_sim::SimTime;
use std::collections::BTreeMap;

/// Identifier of a recorded span (an index into the timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u32);

impl SpanId {
    /// The id handed out by a disabled (or full) timeline; all operations
    /// on it are no-ops.
    pub const DETACHED: SpanId = SpanId(u32::MAX);

    /// `true` if this id refers to no recorded span.
    pub fn is_detached(self) -> bool {
        self == Self::DETACHED
    }

    /// The span's index in [`Timeline::spans`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A timeline track — one horizontal lane in the exported trace. By
/// convention the machine uses track *n* for core *n*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TrackId(pub u32);

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's id (its index in the timeline).
    pub id: SpanId,
    /// Stable span name, e.g. `"secure.session"`.
    pub name: &'static str,
    /// The track (core) the span lives on.
    pub track: TrackId,
    /// The enclosing span, if any.
    pub parent: Option<SpanId>,
    /// When the span opened.
    pub start: SimTime,
    /// When the span closed; `None` while still open.
    pub end: Option<SimTime>,
    /// Human-readable details (exported as trace args).
    pub detail: String,
}

/// A zero-width moment on a track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstantRecord {
    /// Stable event name, e.g. `"publish"`.
    pub name: &'static str,
    /// The track the event belongs to.
    pub track: TrackId,
    /// When it happened.
    pub at: SimTime,
    /// Human-readable details.
    pub detail: String,
}

/// An append-only recorder of spans and instants in sim-time.
///
/// A disabled timeline records nothing and hands out
/// [`SpanId::DETACHED`]; a full one stops accepting *new* spans (counting
/// them as dropped) but still closes already-open ones, so exported traces
/// never contain dangling intervals caused by the capacity bound.
///
/// # Example
///
/// ```
/// use satin_telemetry::{Timeline, TrackId};
/// use satin_sim::SimTime;
///
/// let mut tl = Timeline::new();
/// let s = tl.start("secure.session", TrackId(0), SimTime::from_nanos(10), None, "");
/// let c = tl.start("scan.window", TrackId(0), SimTime::from_nanos(12), Some(s), "area=14");
/// tl.end(c, SimTime::from_nanos(40));
/// tl.end(s, SimTime::from_nanos(45));
/// assert_eq!(tl.len(), 2);
/// assert_eq!(tl.count_by_name("secure.session"), 1);
/// assert_eq!(tl.spans()[c.index()].parent, Some(s));
/// ```
#[derive(Debug, Clone)]
pub struct Timeline {
    spans: Vec<SpanRecord>,
    instants: Vec<InstantRecord>,
    track_names: BTreeMap<u32, String>,
    enabled: bool,
    capacity: usize,
    dropped: u64,
}

impl Timeline {
    /// Default capacity (spans + instants each): enough for hours of
    /// simulated introspection sessions without unbounded growth.
    pub const DEFAULT_CAPACITY: usize = 262_144;

    /// An enabled timeline with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An enabled timeline with an explicit capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "timeline capacity must be nonzero");
        Timeline {
            spans: Vec::new(),
            instants: Vec::new(),
            track_names: BTreeMap::new(),
            enabled: true,
            capacity,
            dropped: 0,
        }
    }

    /// A timeline that records nothing (for hot benchmark paths). It keeps
    /// the default capacity so a later `set_enabled(true)` behaves like a
    /// fresh timeline rather than one that drops everything.
    pub fn disabled() -> Self {
        Timeline {
            enabled: false,
            ..Self::new()
        }
    }

    /// `true` if recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off without clearing existing records.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Names a track for display (`"core 0"`); exported as thread-name
    /// metadata so Perfetto shows labelled lanes.
    pub fn set_track_name(&mut self, track: TrackId, name: impl Into<String>) {
        self.track_names.insert(track.0, name.into());
    }

    /// The named tracks, in track order.
    pub fn track_names(&self) -> impl Iterator<Item = (TrackId, &str)> {
        self.track_names
            .iter()
            .map(|(id, name)| (TrackId(*id), name.as_str()))
    }

    /// Opens a span. Returns [`SpanId::DETACHED`] when disabled or full.
    pub fn start(
        &mut self,
        name: &'static str,
        track: TrackId,
        at: SimTime,
        parent: Option<SpanId>,
        detail: impl Into<String>,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::DETACHED;
        }
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            return SpanId::DETACHED;
        }
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(SpanRecord {
            id,
            name,
            track,
            parent: parent.filter(|p| !p.is_detached()),
            start: at,
            end: None,
            detail: detail.into(),
        });
        id
    }

    /// Closes a span. No-op for [`SpanId::DETACHED`] or already-closed
    /// spans.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the span's start.
    pub fn end(&mut self, id: SpanId, at: SimTime) {
        if id.is_detached() {
            return;
        }
        let span = &mut self.spans[id.index()];
        debug_assert!(at >= span.start, "span {} ends before it starts", span.name);
        if span.end.is_none() {
            span.end = Some(at);
        }
    }

    /// Records a complete `[start, end)` span in one call.
    pub fn complete(
        &mut self,
        name: &'static str,
        track: TrackId,
        start: SimTime,
        end: SimTime,
        parent: Option<SpanId>,
        detail: impl Into<String>,
    ) -> SpanId {
        let id = self.start(name, track, start, parent, detail);
        self.end(id, end);
        id
    }

    /// Records an instant event.
    pub fn instant(
        &mut self,
        name: &'static str,
        track: TrackId,
        at: SimTime,
        detail: impl Into<String>,
    ) {
        if !self.enabled {
            return;
        }
        if self.instants.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.instants.push(InstantRecord {
            name,
            track,
            at,
            detail: detail.into(),
        });
    }

    /// All recorded spans, in id order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// All recorded instants, in record order.
    pub fn instants(&self) -> &[InstantRecord] {
        &self.instants
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` if no spans are recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Records rejected because the timeline was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of spans still open.
    pub fn open_count(&self) -> usize {
        self.spans.iter().filter(|s| s.end.is_none()).count()
    }

    /// Number of spans with the given name.
    pub fn count_by_name(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| s.name == name).count() as u64
    }

    /// Span counts keyed by name, in name order (deterministic).
    pub fn span_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for s in &self.spans {
            *counts.entry(s.name).or_insert(0) += 1;
        }
        counts
    }

    /// Instant counts keyed by name, in name order (deterministic).
    pub fn instant_counts(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for i in &self.instants {
            *counts.entry(i.name).or_insert(0) += 1;
        }
        counts
    }

    /// The direct children of `parent`, in id order.
    pub fn children(&self, parent: SpanId) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == Some(parent))
    }

    /// The root spans (no parent), in id order.
    pub fn roots(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// Clears all records and the dropped counter.
    pub fn clear(&mut self) {
        self.spans.clear();
        self.instants.clear();
        self.dropped = 0;
    }
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_tree_links() {
        let mut tl = Timeline::new();
        let root = tl.start(
            "secure.session",
            TrackId(2),
            SimTime::from_nanos(5),
            None,
            "",
        );
        let a = tl.complete(
            "world.switch_in",
            TrackId(2),
            SimTime::from_nanos(5),
            SimTime::from_nanos(8),
            Some(root),
            "",
        );
        let b = tl.complete(
            "scan.window",
            TrackId(2),
            SimTime::from_nanos(8),
            SimTime::from_nanos(20),
            Some(root),
            "area=14",
        );
        tl.end(root, SimTime::from_nanos(25));
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.open_count(), 0);
        assert_eq!(tl.roots().count(), 1);
        let kids: Vec<_> = tl.children(root).map(|s| s.id).collect();
        assert_eq!(kids, vec![a, b]);
        assert_eq!(tl.spans()[b.index()].detail, "area=14");
    }

    #[test]
    fn disabled_records_nothing_and_keeps_capacity() {
        let mut tl = Timeline::disabled();
        let id = tl.start("x", TrackId(0), SimTime::ZERO, None, "");
        assert!(id.is_detached());
        tl.end(id, SimTime::from_nanos(1)); // no-op, no panic
        tl.instant("y", TrackId(0), SimTime::ZERO, "");
        assert!(tl.is_empty());
        assert_eq!(tl.dropped(), 0);
        // Re-enabling behaves like a fresh timeline.
        tl.set_enabled(true);
        for i in 0..100 {
            tl.start("s", TrackId(0), SimTime::from_nanos(i), None, "");
        }
        assert_eq!(tl.len(), 100);
        assert_eq!(tl.dropped(), 0);
    }

    #[test]
    fn capacity_drops_new_spans_but_closes_old() {
        let mut tl = Timeline::with_capacity(2);
        let a = tl.start("a", TrackId(0), SimTime::ZERO, None, "");
        let _b = tl.start("b", TrackId(0), SimTime::ZERO, None, "");
        let c = tl.start("c", TrackId(0), SimTime::ZERO, None, "");
        assert!(c.is_detached());
        assert_eq!(tl.dropped(), 1);
        tl.end(a, SimTime::from_nanos(9));
        assert_eq!(tl.spans()[a.index()].end, Some(SimTime::from_nanos(9)));
    }

    #[test]
    fn counts_and_track_names() {
        let mut tl = Timeline::new();
        tl.set_track_name(TrackId(0), "core 0");
        tl.set_track_name(TrackId(1), "core 1");
        tl.complete(
            "s",
            TrackId(0),
            SimTime::ZERO,
            SimTime::from_nanos(1),
            None,
            "",
        );
        tl.complete(
            "s",
            TrackId(1),
            SimTime::ZERO,
            SimTime::from_nanos(2),
            None,
            "",
        );
        tl.complete(
            "t",
            TrackId(0),
            SimTime::ZERO,
            SimTime::from_nanos(3),
            None,
            "",
        );
        assert_eq!(tl.count_by_name("s"), 2);
        let counts = tl.span_counts();
        assert_eq!(counts.get("s"), Some(&2));
        assert_eq!(counts.get("t"), Some(&1));
        let names: Vec<_> = tl.track_names().map(|(_, n)| n.to_string()).collect();
        assert_eq!(names, vec!["core 0", "core 1"]);
    }

    #[test]
    fn end_is_idempotent() {
        let mut tl = Timeline::new();
        let s = tl.start("s", TrackId(0), SimTime::ZERO, None, "");
        tl.end(s, SimTime::from_nanos(5));
        tl.end(s, SimTime::from_nanos(9)); // keeps the first close
        assert_eq!(tl.spans()[s.index()].end, Some(SimTime::from_nanos(5)));
    }
}
