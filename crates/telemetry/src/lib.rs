#![warn(missing_docs)]
//! Telemetry layer for the SATIN reproduction.
//!
//! The paper's entire argument is about *time* — world-switch latency,
//! per-byte hash rates, detection latency under the randomized scheduler —
//! yet end-of-run counters can't show *where inside a session* the time
//! went, or why a particular TZ-Evader race was won or lost. This crate
//! turns every simulated introspection race into an inspectable, exportable
//! timeline:
//!
//! - [`Timeline`] records hierarchical **spans** ([`SpanId`], enter/exit in
//!   sim-time, parent links) and instant events on per-core tracks;
//! - [`DurationHistogram`] and [`CounterSet`] are fixed-shape aggregates
//!   with **deterministic merge**: merging per-worker copies in any order
//!   yields bit-identical results, so parallel campaign runners aggregate
//!   identically for any `--jobs` count;
//! - [`export`] renders a timeline as Chrome `trace_event` JSON (loadable
//!   in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)) or as a
//!   line-delimited JSONL event stream;
//! - [`TelemetrySink`] is a [`satin_sim::SimObserver`] that aggregates the
//!   engine's schedule/dispatch points (event counters, inter-dispatch gap
//!   histogram, peak queue depth) without perturbing the simulation.
//!
//! Everything here is *pure observation*: recording consumes no randomness
//! and schedules no events, so enabling telemetry can never change an
//! experiment's outcome — the golden-trace snapshots pin this.

pub mod export;
pub mod hist;
pub mod sink;
pub mod span;

pub use export::{chrome_trace, json_escape, jsonl_events};
pub use hist::{CounterSet, DurationHistogram};
pub use sink::{SinkProbe, SinkState, TelemetrySink};
pub use span::{InstantRecord, SpanId, SpanRecord, Timeline, TrackId};
